//! Workspace umbrella crate for the OASYS reproduction.
//!
//! This crate carries no code of its own: it exists so the workspace root
//! can host the runnable [examples](https://github.com/) (`examples/`)
//! and the cross-crate integration tests (`tests/`) that exercise the
//! full behaviour-to-structure pipeline. The implementation lives in the
//! member crates; start at [`oasys`] for synthesis or [`oasys_sim`] for
//! the analog simulator.

pub use oasys;
pub use oasys_blocks;
pub use oasys_mos;
pub use oasys_netlist;
pub use oasys_plan;
pub use oasys_process;
pub use oasys_sim;
pub use oasys_units;
