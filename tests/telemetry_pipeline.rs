//! End-to-end telemetry pipeline tests: an instrumented synthesis +
//! verification run must produce a report whose counters exactly mirror
//! the plan traces, whose exporters validate against their own schemas,
//! and whose Chrome export covers every style attempt and step
//! execution.

use oasys::spec::test_cases;
use oasys::{synthesize_with, verify_with, StyleOutcome};
use oasys_plan::Trace;
use oasys_process::builtin;
use oasys_telemetry::{json, schema, ManualClock, Telemetry};
use std::rc::Rc;

#[test]
fn counters_exactly_match_trace_counts() {
    let process = builtin::cmos_5um();
    for spec in [
        test_cases::spec_a(),
        test_cases::spec_b(),
        test_cases::spec_c(),
    ] {
        let tel = Telemetry::new();
        let result = synthesize_with(&spec, &process, &tel).expect("paper cases synthesize");

        let traces: Vec<&Trace> = result
            .outcomes()
            .iter()
            .filter_map(StyleOutcome::trace)
            .collect();
        let steps: usize = traces.iter().map(|t| t.step_executions()).sum();
        let failures: usize = traces.iter().map(|t| t.step_failures()).sum();
        let firings: usize = traces.iter().map(|t| t.rule_firings()).sum();
        let restarts: usize = traces.iter().map(|t| t.restarts()).sum();

        assert_eq!(tel.counter("plan.step_executions"), steps as u64);
        assert_eq!(tel.counter("plan.step_failures"), failures as u64);
        assert_eq!(tel.counter("plan.rule_firings"), firings as u64);
        assert_eq!(tel.counter("plan.restarts"), restarts as u64);
        assert_eq!(result.restarts(), restarts);
        assert_eq!(
            tel.counter("synth.styles_attempted"),
            result.outcomes().len() as u64
        );
        assert_eq!(
            tel.counter("synth.styles_feasible"),
            result.feasible_count() as u64
        );
    }
}

#[test]
fn chrome_trace_covers_styles_and_steps() {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_a();
    let tel = Telemetry::new();
    let result = synthesize_with(&spec, &process, &tel).unwrap();

    let chrome = tel.report().render_chrome();
    schema::validate_chrome(&chrome).expect("chrome export validates");
    let doc = json::parse(&chrome).expect("chrome export parses");
    let events = doc.as_arr().unwrap();
    let complete_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(json::Json::as_str))
        .collect();

    // A span for every attempted style...
    for outcome in result.outcomes() {
        let name = format!("style:{}", outcome.style());
        assert!(
            complete_names.contains(&name.as_str()),
            "chrome trace missing {name}"
        );
    }
    // ...and one `step:` span per step execution across all traces.
    let steps: usize = result
        .outcomes()
        .iter()
        .filter_map(StyleOutcome::trace)
        .map(Trace::step_executions)
        .sum();
    let step_spans = complete_names
        .iter()
        .filter(|n| n.starts_with("step:"))
        .count();
    assert_eq!(step_spans, steps, "one chrome span per step execution");
}

#[test]
fn jsonl_export_validates_and_counts_spans() {
    let process = builtin::cmos_5um();
    let tel = Telemetry::new();
    synthesize_with(&test_cases::spec_a(), &process, &tel).unwrap();
    let report = tel.report();
    let jsonl = report.render_jsonl();
    let summary = schema::validate_jsonl(&jsonl).expect("jsonl validates");
    assert_eq!(summary.spans, report.spans().len());
    assert_eq!(summary.events, report.events().len());
}

#[test]
fn manual_clock_makes_runs_deterministic() {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_a();
    let render = || {
        let tel = Telemetry::with_clock(Rc::new(ManualClock::new()));
        synthesize_with(&spec, &process, &tel).unwrap();
        tel.report().render_jsonl()
    };
    let first = render();
    let second = render();
    assert_eq!(first, second, "frozen-clock runs render identically");
    // Every timestamp is the clock's fixed value: no wall-clock leaks.
    assert!(first.contains("\"start_ns\":0"));
    assert!(!first.contains("\"start_ns\":1"));
}

#[test]
fn verify_records_simulator_work() {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_a();
    let result = synthesize_with(&spec, &process, &Telemetry::disabled()).unwrap();

    let tel = Telemetry::new();
    verify_with(result.selected(), &process, spec.load().farads(), &tel).unwrap();

    assert!(tel.counter("sim.dc.solves") > 0);
    assert!(
        tel.counter("sim.dc.newton_iterations") > 0,
        "verification must record Newton iteration counts"
    );
    assert!(tel.counter("sim.ac.points") > 0);
    assert!(
        tel.counter("sim.tran.steps") > 0,
        "slew bench runs transient"
    );

    let names: Vec<String> = tel
        .report()
        .spans()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert_eq!(names[0], "verify");
    for phase in [
        "verify:erc",
        "verify:offset-null",
        "verify:dc",
        "verify:ac",
        "verify:swing",
        "verify:slew",
        "verify:cmrr",
        "verify:noise",
        "verify:psrr",
    ] {
        assert!(
            names.iter().any(|n| n == phase),
            "missing phase span {phase}"
        );
    }
    // Every span closed (durations defined) and nests under the root.
    let report = tel.report();
    for span in report.spans() {
        assert!(span.end_ns.is_some(), "span {} left open", span.name);
    }
}
