//! Thread-count determinism of telemetry exports: the fork/absorb
//! protocol re-bases worker recordings in declaration order, so a
//! parallel style sweep under an injected [`ManualClock`] must render
//! **byte-identical** reports at any worker count — spans, events,
//! counters, and latency histograms alike. This is the property that
//! makes `OASYS_STYLE_THREADS` invisible in `--trace-out` artifacts.

use oasys::spec::test_cases;
use oasys::{synthesize_with_options, SearchOptions};
use oasys_process::builtin;
use oasys_telemetry::{schema, ManualClock, Telemetry};
use std::rc::Rc;

/// One full traced synthesis at the given worker count, exported as
/// JSON-lines. The manual clock freezes every timestamp at zero, so any
/// difference between runs is structural, not temporal.
fn traced_jsonl(threads: usize) -> String {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_a();
    let tel = Telemetry::with_clock(Rc::new(ManualClock::new()));
    let options = SearchOptions::new().with_threads(threads);
    synthesize_with_options(&spec, &process, &options, &tel).expect("spec A synthesizes");
    let report = tel.report();
    let jsonl = report.render_jsonl();
    schema::validate_jsonl(&jsonl).expect("export validates");
    jsonl
}

#[test]
fn parallel_sweep_reports_are_byte_identical_to_sequential() {
    let sequential = traced_jsonl(1);
    for threads in [2, 3] {
        let parallel = traced_jsonl(threads);
        assert_eq!(
            sequential, parallel,
            "threads={threads} must render the exact bytes of threads=1"
        );
    }
}

#[test]
fn latency_histograms_are_thread_count_independent() {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_a();

    let collect = |threads: usize| {
        let tel = Telemetry::with_clock(Rc::new(ManualClock::new()));
        let options = SearchOptions::new().with_threads(threads);
        synthesize_with_options(&spec, &process, &options, &tel).expect("spec A synthesizes");
        let report = tel.report();
        report
            .metrics()
            .histograms()
            .map(|(name, h)| (name.to_owned(), h.count(), h.sum(), h.buckets().to_vec()))
            .collect::<Vec<_>>()
    };

    let sequential = collect(1);
    // Per-step spans exist, so the histogram set is non-trivial.
    assert!(
        sequential
            .iter()
            .any(|(name, ..)| name.starts_with("span:step:")),
        "per-step latency histograms are recorded"
    );
    assert_eq!(sequential, collect(3));
}
