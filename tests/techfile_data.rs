//! The shipped `data/*.tech` files stay in sync with the built-in process
//! definitions and parse into identical parameter sets.

use oasys_process::{builtin, techfile, Polarity};

#[test]
fn shipped_techfiles_match_builtins() {
    for process in builtin::all() {
        let path = format!("data/{}.tech", process.name());
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{path}: {e} (run `cargo run -p oasys-bench --bin gen_techfiles`)")
        });
        let parsed = techfile::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(parsed.name(), process.name());
        for pol in Polarity::ALL {
            let a = process.mos(pol);
            let b = parsed.mos(pol);
            assert!(
                (a.kprime() / b.kprime() - 1.0).abs() < 1e-9,
                "{path} {pol} kprime"
            );
            assert!(
                (a.vth().volts() - b.vth().volts()).abs() < 1e-9,
                "{path} {pol} vth"
            );
            assert!(
                (a.lambda_l() / b.lambda_l() - 1.0).abs() < 1e-9,
                "{path} {pol} lambda"
            );
        }
        assert!(
            (process.cox() / parsed.cox() - 1.0).abs() < 1e-9,
            "{path} cox"
        );
        assert!(
            (process.vdd().volts() - parsed.vdd().volts()).abs() < 1e-12,
            "{path} vdd"
        );
    }
}

#[test]
fn shipped_techfile_drives_synthesis() {
    let text = std::fs::read_to_string("data/generic-5um.tech").unwrap();
    let process = techfile::parse(&text).unwrap();
    let result = oasys::synthesize(&oasys::spec::test_cases::spec_a(), &process).unwrap();
    assert_eq!(result.selected().style(), oasys::OpAmpStyle::OneStageOta);
}
