//! Cross-crate checks of the simulator against hand-calculable circuits
//! built from the block designers — the "does sizing meet simulation"
//! property the paper validates with SPICE.

use oasys_blocks::diffpair::{DiffPair, DiffPairSpec};
use oasys_blocks::mirror::{CurrentMirror, MirrorSpec, MirrorStyle};
use oasys_netlist::{Circuit, SourceValue};
use oasys_process::{builtin, Polarity};
use oasys_sim::ac::AcSweepSpec;
use oasys_sim::metrics::{AcMetrics, Bode};
use oasys_sim::{ac, dc};

/// A designed diff pair with ideal tail and resistor loads measures the
/// transconductance it was designed for.
#[test]
fn designed_diffpair_gm_measures_back() {
    let process = builtin::cmos_5um();
    let spec = DiffPairSpec::new(Polarity::Nmos, 100e-6, 20e-6);
    let pair = DiffPair::design(&spec, &process).unwrap();

    let mut c = Circuit::new("gm check");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let outp = c.node("outp");
    let outn = c.node("outn");
    let tail = c.node("tail");
    let gnd = c.ground();
    c.add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0))
        .unwrap();
    c.add_vsource("VSS", vss, gnd, SourceValue::dc(-5.0))
        .unwrap();
    c.add_vsource("VIP", inp, gnd, SourceValue::new(0.0, 1.0))
        .unwrap();
    c.add_vsource("VIN", inn, gnd, SourceValue::dc(0.0))
        .unwrap();
    // Ideal tail.
    c.add_isource("ITAIL", tail, vss, SourceValue::dc(20e-6))
        .unwrap();
    // Resistor loads small enough that gm·RL is measurable but the pair
    // stays saturated.
    let rl = 20e3;
    c.add_resistor("RLP", vdd, outp, rl).unwrap();
    c.add_resistor("RLN", vdd, outn, rl).unwrap();
    pair.emit(&mut c, "DP_", inp, inn, outp, outn, tail, vss)
        .unwrap();

    let solution = dc::solve(&c, &process).unwrap();
    // Balanced: both sides carry half the tail current.
    let op1 = solution.device_op("DP_M1").unwrap();
    assert!((op1.id() - 10e-6).abs() / 10e-6 < 0.05, "id = {}", op1.id());

    // Differential gain at low frequency ≈ gm·RL/… per side: the single-
    // ended gain at outn is gm/2·RL… measure |v(outn)| with 1 V at inp.
    let sweep = AcSweepSpec::new(10.0, 1e3, 2).unwrap();
    let acs = ac::solve(&c, &process, &sweep).unwrap();
    let gain = acs.transfer(outn)[0].abs();
    let expected = pair.gm() / 2.0 * rl;
    assert!(
        (gain / expected - 1.0).abs() < 0.1,
        "measured {gain}, expected {expected}"
    );
}

/// A cascode mirror measured in simulation presents (at least) orders of
/// magnitude more output resistance than a simple one.
#[test]
fn mirror_rout_ordering_in_simulation() {
    let process = builtin::cmos_5um();
    let rout_of = |style: MirrorStyle| -> f64 {
        let spec = MirrorSpec::new(Polarity::Nmos, 20e-6)
            .with_headroom(2.5)
            .with_only_style(style);
        let m = CurrentMirror::design(&spec, &process).unwrap();
        let mut c = Circuit::new("rout");
        let vdd = c.node("vdd");
        let input = c.node("in");
        let output = c.node("out");
        let gnd = c.ground();
        c.add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0))
            .unwrap();
        c.add_isource("IIN", vdd, input, SourceValue::dc(20e-6))
            .unwrap();
        // AC probe current into the output at a fixed DC voltage.
        c.add_vsource("VOUT", output, gnd, SourceValue::new(3.0, 1.0))
            .unwrap();
        m.emit(&mut c, "M_", input, output, gnd, None).unwrap();
        let sweep = AcSweepSpec::new(1.0, 10.0, 1).unwrap();
        let dc_sol = dc::solve(&c, &process).unwrap();
        let acs = ac::solve_at(&c, &process, &dc_sol, &sweep).unwrap();
        // r_out = v/i with the 1 V AC stimulus: branch current of VOUT.
        // The AC solution exposes node voltages only, so instead drive
        // with the voltage source and infer current from a series sense
        // resistor — simpler: measure with a Norton equivalent below.
        drop(acs);
        // DC-based measurement: ΔV/ΔI around the bias point.
        let mut c2 = c.clone();
        c2.set_source_dc("VOUT", 3.1).unwrap();
        let sol2 = dc::solve(&c2, &process).unwrap();
        // Raising VOUT makes the NMOS mirror sink more current, which the
        // source supplies (its pos→neg branch current goes more negative),
        // so the device current change is −Δi_branch.
        let i1 = dc_sol.source_current("VOUT").unwrap();
        let i2 = sol2.source_current("VOUT").unwrap();
        0.1 / (i1 - i2)
    };
    let r_simple = rout_of(MirrorStyle::Simple);
    let r_cascode = rout_of(MirrorStyle::Cascode);
    assert!(r_simple > 1e5, "simple rout {r_simple}");
    assert!(
        r_cascode > 30.0 * r_simple,
        "cascode {r_cascode} vs simple {r_simple}"
    );
}

/// The square-law device model and the AC engine agree on a textbook
/// five-transistor OTA built directly from blocks: measured DC gain
/// matches gm1/(gds2+gds4) within modeling tolerance.
#[test]
fn hand_built_ota_gain_matches_hand_analysis() {
    let process = builtin::cmos_5um();
    let i_tail = 20e-6;
    let gm = 100e-6;
    let pair = DiffPair::design(
        &DiffPairSpec::new(Polarity::Nmos, gm, i_tail).with_length_um(10.0),
        &process,
    )
    .unwrap();
    let load = CurrentMirror::design(
        &MirrorSpec::new(Polarity::Pmos, i_tail / 2.0)
            .with_headroom(2.0)
            .with_only_style(MirrorStyle::Simple),
        &process,
    )
    .unwrap();

    let mut c = Circuit::new("5T OTA");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let out = c.node("out");
    let d1 = c.node("d1");
    let tail = c.node("tail");
    let gnd = c.ground();
    c.add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0))
        .unwrap();
    c.add_vsource("VSS", vss, gnd, SourceValue::dc(-5.0))
        .unwrap();
    c.add_vsource("VIP", inp, gnd, SourceValue::new(0.0, 1.0))
        .unwrap();
    c.add_vsource("VIN", inn, gnd, SourceValue::dc(0.0))
        .unwrap();
    c.add_isource("ITAIL", tail, vss, SourceValue::dc(i_tail))
        .unwrap();
    c.add_capacitor("CL", out, gnd, 5e-12).unwrap();
    pair.emit(&mut c, "DP_", inp, inn, out, d1, tail, vss)
        .unwrap();
    load.emit(&mut c, "LD_", d1, out, vdd, None).unwrap();

    // Null the offset first so the output is mid-range.
    let offset = oasys_sim::sweep::bisect_input(&c, &process, "VIP", out, 0.0, -0.5, 0.5).unwrap();
    c.set_source_dc("VIP", offset).unwrap();

    let sweep = AcSweepSpec::new(1.0, 1e8, 10).unwrap();
    let acs = ac::solve(&c, &process, &sweep).unwrap();
    let bode = Bode::from_ac(&acs, out);
    let metrics = AcMetrics::extract(&bode);

    // Hand analysis at the actual bias point.
    let dc_sol = {
        let mut c2 = c.clone();
        c2.set_source_dc("VIP", offset).unwrap();
        dc::solve(&c2, &process).unwrap()
    };
    let op2 = dc_sol.device_op("DP_M2").unwrap();
    let op4 = dc_sol.device_op("LD_MOUT").unwrap();
    let expected = op2.gm() / (op2.gds() + op4.gds());
    let expected_db = 20.0 * expected.log10();
    assert!(
        (metrics.dc_gain.db() - expected_db).abs() < 1.5,
        "measured {:.1} dB, hand analysis {expected_db:.1} dB",
        metrics.dc_gain.db()
    );

    // And the unity-gain frequency tracks gm/2πC within parasitics.
    let fu = metrics.unity_gain_freq.unwrap().hertz();
    let fu_expected = op2.gm() / (2.0 * std::f64::consts::PI * 5e-12);
    assert!(
        (fu / fu_expected - 1.0).abs() < 0.3,
        "fu {fu:.3e} vs gm/2πC {fu_expected:.3e}"
    );
}
