//! Golden-equivalence tests for the block-designer engine port.
//!
//! These fixtures snapshot the sized netlists and predicted performance
//! for the paper's three test cases on the builtin `cmos_5um` process,
//! captured from the pre-refactor monolithic style modules. The ported
//! engine must reproduce them exactly — device for device, bit for bit
//! on every `f64` (the renderer uses `{:?}`, Rust's shortest-roundtrip
//! float format, so any numeric drift fails the diff).
//!
//! Regenerate with `OASYS_BLESS=1 cargo test -p oasys-suite --test
//! golden_equivalence` (only legitimate when an intentional design-rule
//! change is being made; the whole point of the fixtures is to prove the
//! engine refactor changes nothing).

use oasys::spec::test_cases;
use oasys::{synthesize, OpAmpDesign, OpAmpSpec};
use oasys_netlist::Element;
use oasys_process::builtin;
use std::fmt::Write as _;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Renders one synthesized design as a stable, human-diffable snapshot:
/// the selected style, the area split, every element of the sized
/// netlist (in insertion order, with full-precision geometry), and all
/// ten predicted-performance figures.
fn render(spec: &OpAmpSpec, design: &OpAmpDesign) -> String {
    let mut out = String::new();
    let c = design.circuit();
    writeln!(out, "spec: {spec}").unwrap();
    writeln!(out, "style: {}", design.style()).unwrap();
    writeln!(
        out,
        "area_um2: active={:?} capacitor={:?}",
        design.area().active().square_micrometers(),
        design.area().capacitor().square_micrometers(),
    )
    .unwrap();
    for note in design.notes() {
        writeln!(out, "note: {note}").unwrap();
    }

    let ports: Vec<String> = c
        .ports()
        .iter()
        .map(|(label, node)| format!("{label}={}", c.node_name(*node)))
        .collect();
    writeln!(out, "ports: {}", ports.join(" ")).unwrap();

    writeln!(out, "elements:").unwrap();
    for element in c.elements() {
        match element {
            Element::Mos(m) => writeln!(
                out,
                "  mos {} {:?} d={} g={} s={} b={} w_um={:?} l_um={:?}",
                m.name,
                m.polarity,
                c.node_name(m.drain),
                c.node_name(m.gate),
                c.node_name(m.source),
                c.node_name(m.bulk),
                m.geometry.w_um(),
                m.geometry.l_um(),
            )
            .unwrap(),
            Element::Resistor(r) => writeln!(
                out,
                "  res {} a={} b={} ohms={:?}",
                r.name,
                c.node_name(r.a),
                c.node_name(r.b),
                r.ohms,
            )
            .unwrap(),
            Element::Capacitor(cap) => writeln!(
                out,
                "  cap {} a={} b={} farads={:?}",
                cap.name,
                c.node_name(cap.a),
                c.node_name(cap.b),
                cap.farads,
            )
            .unwrap(),
            Element::Vsource(v) => writeln!(
                out,
                "  vsrc {} pos={} neg={} dc={:?}",
                v.name,
                c.node_name(v.pos),
                c.node_name(v.neg),
                v.value.dc_value(),
            )
            .unwrap(),
            Element::Isource(i) => writeln!(
                out,
                "  isrc {} pos={} neg={} dc={:?}",
                i.name,
                c.node_name(i.pos),
                c.node_name(i.neg),
                i.value.dc_value(),
            )
            .unwrap(),
        }
    }

    let p = design.predicted();
    writeln!(out, "predicted:").unwrap();
    writeln!(out, "  dc_gain_db: {:?}", p.dc_gain_db).unwrap();
    writeln!(out, "  unity_gain_hz: {:?}", p.unity_gain_hz).unwrap();
    writeln!(out, "  phase_margin_deg: {:?}", p.phase_margin_deg).unwrap();
    writeln!(out, "  slew_v_per_s: {:?}", p.slew_v_per_s).unwrap();
    writeln!(out, "  swing_neg_v: {:?}", p.swing_neg_v).unwrap();
    writeln!(out, "  swing_pos_v: {:?}", p.swing_pos_v).unwrap();
    writeln!(out, "  offset_v: {:?}", p.offset_v).unwrap();
    writeln!(out, "  power_w: {:?}", p.power_w).unwrap();
    writeln!(out, "  cmrr_db: {:?}", p.cmrr_db).unwrap();
    writeln!(out, "  noise_v_rthz: {:?}", p.noise_v_rthz).unwrap();
    out
}

fn check_case(name: &str, spec: &OpAmpSpec) {
    let process = builtin::cmos_5um();
    let result = synthesize(spec, &process).expect("paper test cases must synthesize");
    let rendered = render(spec, result.selected());
    let path = fixture_path(name);

    if std::env::var_os("OASYS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with OASYS_BLESS=1 to create it",
            path.display()
        )
    });
    if rendered != golden {
        let diff: Vec<String> = golden
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .filter(|(_, (g, r))| g != r)
            .map(|(i, (g, r))| format!("line {}:\n  golden: {g}\n  actual: {r}", i + 1))
            .collect();
        panic!(
            "golden mismatch for {name} ({} vs {} lines):\n{}",
            golden.lines().count(),
            rendered.lines().count(),
            if diff.is_empty() {
                "(line counts differ)".to_owned()
            } else {
                diff.join("\n")
            }
        );
    }
}

#[test]
fn case_a_matches_golden() {
    check_case("case_a", &test_cases::spec_a());
}

#[test]
fn case_b_matches_golden() {
    check_case("case_b", &test_cases::spec_b());
}

#[test]
fn case_c_matches_golden() {
    check_case("case_c", &test_cases::spec_c());
}
