//! Cross-crate integration tests: the full behaviour-to-structure
//! pipeline from specification to simulator-verified schematic.

use oasys::spec::test_cases;
use oasys::{synthesize, verify, Datasheet, OpAmpSpec, OpAmpStyle};
use oasys_netlist::spice;
use oasys_process::{builtin, techfile};

/// The headline reproduction: all three paper cases synthesize, select
/// the paper's styles, and their simulated performance meets the specs.
#[test]
fn paper_cases_end_to_end() {
    let process = builtin::cmos_5um();
    let cases = [
        ("A", test_cases::spec_a(), OpAmpStyle::OneStageOta),
        ("B", test_cases::spec_b(), OpAmpStyle::TwoStage),
        ("C", test_cases::spec_c(), OpAmpStyle::TwoStage),
    ];
    for (label, spec, expected_style) in cases {
        let result = synthesize(&spec, &process).unwrap_or_else(|e| panic!("case {label}: {e}"));
        let design = result.selected();
        assert_eq!(design.style(), expected_style, "case {label} style");

        let verification = verify(design, &process, spec.load().farads())
            .unwrap_or_else(|e| panic!("case {label} verification: {e}"));
        let sheet = Datasheet::new(
            format!("case {label}"),
            &spec,
            design.predicted(),
            Some(&verification.measured),
        );
        assert!(
            sheet.all_measured_pass(),
            "case {label} failed: {:?}\n{sheet}",
            sheet.failures()
        );
    }
}

/// Every synthesized circuit passes netlist validation and exports a
/// SPICE deck with one card per device.
#[test]
fn synthesized_netlists_are_well_formed() {
    let process = builtin::cmos_5um();
    for (label, spec) in [
        ("A", test_cases::spec_a()),
        ("B", test_cases::spec_b()),
        ("C", test_cases::spec_c()),
    ] {
        let result = synthesize(&spec, &process).unwrap_or_else(|e| panic!("case {label}: {e}"));
        let circuit = result.selected().circuit();
        circuit.validate().unwrap();
        let deck = spice::to_spice(circuit, &process);
        let mos_cards = deck
            .lines()
            .filter(|l| {
                l.starts_with('M')
                    || l.starts_with("DP_")
                    || l.starts_with("LD_")
                    || l.starts_with("TL_")
                    || l.starts_with("ST2_")
                    || l.starts_with("SK_")
                    || l.starts_with("LS_")
                    || l.starts_with("LB_")
            })
            .count();
        assert!(
            mos_cards >= result.selected().device_count(),
            "case {label}: {mos_cards} cards for {} devices",
            result.selected().device_count()
        );
        assert!(deck.contains(".MODEL MODN NMOS"));
        assert!(deck.ends_with(".END\n"));
    }
}

/// Synthesis works against a process loaded from a technology file, not
/// just the built-in objects (the paper's process-independence claim).
#[test]
fn synthesis_from_technology_file() {
    let text = techfile::write(&builtin::cmos_5um());
    let process = techfile::parse(&text).unwrap();
    let result = synthesize(&test_cases::spec_a(), &process).unwrap();
    assert_eq!(result.selected().style(), OpAmpStyle::OneStageOta);
}

/// The same specification ports across all three bundled processes, and
/// scaling shrinks the design.
#[test]
fn process_migration_shrinks_designs() {
    let spec = OpAmpSpec::builder()
        .dc_gain_db(65.0)
        .unity_gain_mhz(0.5)
        .phase_margin_deg(50.0)
        .load_pf(5.0)
        .build()
        .unwrap();
    let areas: Vec<f64> = [
        builtin::cmos_5um(),
        builtin::cmos_3um(),
        builtin::cmos_1p2um(),
    ]
    .iter()
    .map(|p| {
        synthesize(&spec, p)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()))
            .selected()
            .area()
            .total_um2()
    })
    .collect();
    assert!(
        areas[1] < areas[0],
        "3 µm should shrink from 5 µm: {areas:?}"
    );
    assert!(
        areas[2] < areas[1],
        "1.2 µm should shrink from 3 µm: {areas:?}"
    );
}

/// Deterministic synthesis: identical inputs give identical designs.
#[test]
fn synthesis_is_deterministic() {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_c();
    let a = synthesize(&spec, &process).unwrap();
    let b = synthesize(&spec, &process).unwrap();
    assert_eq!(a.selected().circuit(), b.selected().circuit());
    assert_eq!(
        a.selected().area().total_um2(),
        b.selected().area().total_um2()
    );
}

/// Tightening a specification never makes the selected design smaller
/// (sanity of the area model along the paper's Figure 7 axis).
#[test]
fn harder_specs_cost_area_monotonically_enough() {
    let process = builtin::cmos_5um();
    let base = test_cases::spec_a();
    let mut prev_area = 0.0;
    for gain_db in [40.0, 50.0, 70.0, 90.0] {
        let spec = base.with_dc_gain_db(gain_db);
        let area = synthesize(&spec, &process)
            .unwrap_or_else(|e| panic!("{gain_db} dB: {e}"))
            .selected()
            .area()
            .total_um2();
        // Selection may hop styles, so allow small non-monotonic dips but
        // not large ones.
        assert!(
            area > prev_area * 0.7,
            "area collapsed from {prev_area} to {area} at {gain_db} dB"
        );
        prev_area = prev_area.max(area);
    }
}

/// An impossible spec fails with per-style diagnostics rather than a
/// panic or a bogus design.
#[test]
fn infeasible_specs_fail_cleanly() {
    let process = builtin::cmos_5um();
    let spec = test_cases::spec_a().with_dc_gain_db(139.0);
    let err = synthesize(&spec, &process).unwrap_err();
    assert_eq!(err.rejections().len(), 3);
    for (_, reason) in err.rejections() {
        assert!(!reason.is_empty());
    }
}
