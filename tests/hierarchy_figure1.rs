//! End-to-end test of the paper's Figure 1 decomposition: the
//! successive-approximation A/D converter hierarchy, linked block by
//! block to registered designers, with the op-amp subtree actually
//! synthesized through the shared `BlockDesigner` engine.

use oasys::hierarchy::{design_registry, successive_approximation_adc, Block};
use oasys::{spec::test_cases, synthesize_with_options, OpAmpStyle, SearchOptions};
use oasys_blocks::mirror::{MirrorDesigner, MirrorSpec};
use oasys_plan::{BlockDesigner, DesignContext};
use oasys_process::{builtin, Polarity};
use oasys_telemetry::Telemetry;

/// Figure 1's tree is deep (≥ 3 levels) and *not strict*: siblings at
/// the same level differ wildly in complexity.
#[test]
fn figure1_decomposition_shape() {
    let adc = successive_approximation_adc();
    assert!(adc.depth() >= 3, "depth {}", adc.depth());
    let siblings = adc.children();
    let depths: Vec<usize> = siblings.iter().map(Block::depth).collect();
    assert!(
        depths.iter().max() > depths.iter().min(),
        "siblings should be uneven: {depths:?}"
    );
    // The deepest branch runs ADC → sample-and-hold → op amp → sub-block.
    let sh = adc.find("sample-and-hold").unwrap();
    assert!(sh.depth() >= 3);
}

/// Every designer-linked block in the tree resolves against the full
/// registry — no dangling levels, and the sub-block levels under the op
/// amp are exactly the reusable designers the blocks crate exports.
#[test]
fn figure1_blocks_link_to_registered_designers() {
    let registry = design_registry();
    let adc = successive_approximation_adc();
    assert_eq!(
        adc.unresolved(&registry),
        Vec::new(),
        "every designer link must resolve"
    );

    let amp = adc.find("op amp").unwrap();
    for child in amp.children() {
        let descriptor = child
            .resolve(&registry)
            .unwrap_or_else(|| panic!("{} should link to a designer", child.name()));
        assert!(
            !descriptor.styles().is_empty(),
            "{} offers no styles",
            descriptor.level()
        );
    }
}

/// Designing the hierarchy's op-amp block end to end: the engine sweeps
/// the styles the registry advertises, and the telemetry shows the
/// recursion — `style:<name>` spans at the op-amp level with
/// `block:<level>` child spans for every sub-block invocation.
#[test]
fn figure1_op_amp_block_designs_end_to_end() {
    let registry = design_registry();
    let adc = successive_approximation_adc();
    let amp = adc.find("op amp").unwrap();
    let descriptor = amp.resolve(&registry).unwrap();

    let tel = Telemetry::new();
    let process = builtin::cmos_5um();
    let result =
        synthesize_with_options(&test_cases::spec_a(), &process, &SearchOptions::new(), &tel)
            .unwrap();

    // The winner is one of the styles the registry advertised.
    let winner = result.selected().style().to_string();
    assert!(
        descriptor.styles().iter().any(|s| *s == winner),
        "winner {winner:?} not in registry styles {:?}",
        descriptor.styles()
    );

    // Telemetry covers the whole recursion: one style span per
    // advertised style, and block spans for the sub-block designers the
    // hierarchy links under the op amp.
    let report = tel.report();
    let names: Vec<&str> = report.spans().iter().map(|s| s.name.as_str()).collect();
    for style in OpAmpStyle::ALL {
        let span = format!("style:{style}");
        assert!(names.contains(&span.as_str()), "missing {span}");
    }
    for level in ["diff pair", "mirror"] {
        let span = format!("block:{level}");
        assert!(names.contains(&span.as_str()), "missing {span}");
    }
}

/// A leaf-level designer from the registry works through the same
/// engine trait the op amp uses — the paper's reuse claim, mechanized.
#[test]
fn figure1_leaf_block_designs_through_the_same_trait() {
    let registry = design_registry();
    let adc = successive_approximation_adc();
    let mirror_block = adc.find("current mirror").unwrap();
    let descriptor = mirror_block.resolve(&registry).unwrap();
    assert_eq!(descriptor.level(), "mirror");

    let process = builtin::cmos_5um();
    let designer = MirrorDesigner::new(&process);
    let tel = Telemetry::disabled();
    let ctx = DesignContext::new(&tel);
    let spec = MirrorSpec::new(Polarity::Nmos, 20e-6).with_headroom(1.5);
    let selected = designer.design(&spec, &ctx).expect("mirror designs");
    assert!(
        descriptor.styles().iter().any(|s| *s == selected.style()),
        "selected style {:?} not advertised by the registry",
        selected.style()
    );
    assert!(selected.area_um2() > 0.0);
}
