//! Quickstart: synthesize a sized CMOS op-amp schematic from a
//! performance specification, exactly as OASYS does in the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use oasys::{synthesize, verify, Datasheet, OpAmpSpec};
use oasys_netlist::{report, spice};
use oasys_process::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. State the performance requirements (the paper's Table 2 inputs).
    let spec = OpAmpSpec::builder()
        .dc_gain_db(65.0)
        .unity_gain_mhz(1.0)
        .phase_margin_deg(55.0)
        .load_pf(10.0)
        .slew_rate_v_per_us(3.0)
        .build()?;
    println!("specification: {spec}\n");

    // 2. Pick a fabrication process (or parse one from a technology file).
    let process = builtin::cmos_5um();
    println!("process: {process}\n");

    // 3. Synthesize: every design style is attempted breadth-first and the
    //    smallest feasible design wins.
    let result = synthesize(&spec, &process)?;
    println!("{result}");
    let design = result.selected();
    println!("selected {design}");
    if !design.notes().is_empty() {
        println!("design decisions: {}", design.notes().join("; "));
    }

    // 4. Inspect the sized transistor schematic.
    println!("\n{}", report::device_table(design.circuit()));

    // 5. Verify end to end with the bundled analog simulator.
    let verification = verify(design, &process, spec.load().farads())?;
    let datasheet = Datasheet::new(
        "quickstart op amp",
        &spec,
        design.predicted(),
        Some(&verification.measured),
    );
    println!("{datasheet}");

    // 6. Export a SPICE deck for cross-checking elsewhere.
    let deck = spice::to_spice(design.circuit(), &process);
    println!(
        "SPICE deck ({} lines) ready for export",
        deck.lines().count()
    );
    Ok(())
}
