//! Designing the analog front end of a successive-approximation A/D
//! converter — the system-level scenario the paper's Figure 1 motivates.
//!
//! A SAR converter needs (at least) two different amplifiers:
//!
//! * a **sample-and-hold buffer** — modest gain, fast settling into the
//!   hold capacitor, low power;
//! * a **comparator preamplifier** — as much gain as possible so the
//!   latch sees a large overdrive, driving only gate capacitance.
//!
//! Both come from the *same* op-amp templates with different
//! specifications, demonstrating the paper's reuse argument: "an op amp
//! is a sub-block in many A/D converter topologies, but there need be
//! only one set of selectors/translators for op amps."
//!
//! Run with:
//!
//! ```text
//! cargo run --example adc_frontend
//! ```

use oasys::comparator::{design_comparator, ComparatorSpec};
use oasys::fully_differential::{design_fully_differential, FdSpec};
use oasys::hierarchy;
use oasys::{synthesize, verify, Datasheet, OpAmpSpec};
use oasys_process::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", hierarchy::successive_approximation_adc());

    let process = builtin::cmos_5um();

    // The hold capacitor of a 10-bit, 100 kS/s SAR: settle 10 pF within
    // half an LSB in half a conversion cycle → slew and bandwidth floors.
    let sample_hold = OpAmpSpec::builder()
        .dc_gain_db(55.0)
        .unity_gain_mhz(2.0)
        .phase_margin_deg(60.0)
        .load_pf(10.0)
        .slew_rate_v_per_us(5.0)
        .max_power_mw(2.0)
        .build()?;

    // The comparator preamp: gain is everything; the load is the latch's
    // gate capacitance.
    let comparator_preamp = OpAmpSpec::builder()
        .dc_gain_db(90.0)
        .unity_gain_mhz(1.0)
        .phase_margin_deg(50.0)
        .load_pf(2.0)
        .build()?;

    for (name, spec) in [
        ("sample-and-hold buffer", sample_hold),
        ("comparator preamplifier", comparator_preamp),
    ] {
        println!("──────────────────────────────────────────────");
        println!("designing the {name}\n  spec: {spec}\n");
        let result = synthesize(&spec, &process)?;
        println!("{result}");
        let design = result.selected();
        let verification = verify(design, &process, spec.load().farads())?;
        let sheet = Datasheet::new(
            name,
            &spec,
            design.predicted(),
            Some(&verification.measured),
        );
        println!("{sheet}");
        if !sheet.all_measured_pass() {
            println!("!! measured shortfalls: {:?}", sheet.failures());
        }
    }

    // The comparator itself is a different functional block, synthesized
    // from the same sub-block designers (the paper's named extension).
    // A 10-bit SAR at ±2 V full scale needs to resolve ~4 mV per decision.
    println!("──────────────────────────────────────────────");
    let comp_spec = ComparatorSpec::builder()
        .resolution_mv(4.0)
        .decision_time_us(1.0)
        .load_pf(0.5)
        .build()?;
    println!(
        "designing the comparator
  spec: {comp_spec}
"
    );
    let comp = design_comparator(&comp_spec, &process)?;
    println!(
        "comparator: {} gain stages + replica, {} devices, gain {:.0}, \
         predicted decision {:.2} µs, area {}",
        comp.stages(),
        comp.device_count(),
        comp.predicted_gain(),
        comp.predicted_decision_s() * 1e6,
        comp.area()
    );

    // The capacitor-array driver benefits from a fully-differential
    // signal path (charge-injection and supply-noise rejection) — the
    // paper's other named topology extension, with its common-mode
    // feedback loop closed in simulation.
    println!("──────────────────────────────────────────────");
    let fd_spec = FdSpec::builder()
        .diff_gain_db(45.0)
        .unity_gain_mhz(2.0)
        .load_pf_per_side(3.0)
        .build()?;
    println!(
        "designing the differential DAC driver
  spec: {fd_spec}
"
    );
    let fd = design_fully_differential(&fd_spec, &process)?;
    println!(
        "fully-differential amp: {} devices (incl. the CMFB error amp), \
         diff gain {:.0} dB, f_u {:.2} MHz, area {}",
        fd.device_count(),
        20.0 * fd.predicted_gain().log10(),
        fd.predicted_unity_hz() / 1e6,
        fd.area()
    );
    Ok(())
}
