//! Re-targeting one specification across fabrication processes.
//!
//! The paper stresses that analog synthesis must track process evolution:
//! *"To keep pace with the rapid evolution of process technology, OASYS
//! simply reads process parameters from a technology file."* This example
//! synthesizes the same op amp on the three bundled processes (5 µm, 3 µm
//! and 1.2 µm CMOS) — including one loaded through the technology-file
//! round trip — and compares what each process buys.
//!
//! Run with:
//!
//! ```text
//! cargo run --example process_migration
//! ```

use oasys::{synthesize, OpAmpSpec};
use oasys_process::{builtin, techfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = OpAmpSpec::builder()
        .dc_gain_db(70.0)
        .unity_gain_mhz(1.0)
        .phase_margin_deg(55.0)
        .load_pf(5.0)
        .slew_rate_v_per_us(2.0)
        .build()?;
    println!("specification: {spec}\n");

    // Demonstrate the technology-file path: serialize the 5 µm process
    // and read it back, exactly as a real kit file would be consumed.
    let five_um_file = techfile::write(&builtin::cmos_5um());
    let five_um = techfile::parse(&five_um_file)?;
    println!(
        "loaded `{}` from a {}-line technology file\n",
        five_um.name(),
        five_um_file.lines().count()
    );

    let processes = vec![five_um, builtin::cmos_3um(), builtin::cmos_1p2um()];

    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "process", "style", "devices", "area(µm²)", "f_u(MHz)", "power(µW)"
    );
    for process in &processes {
        match synthesize(&spec, process) {
            Ok(result) => {
                let d = result.selected();
                println!(
                    "{:<14} {:>12} {:>10} {:>12.0} {:>10.2} {:>10.0}",
                    process.name(),
                    d.style().to_string(),
                    d.device_count(),
                    d.area().total_um2(),
                    d.predicted().unity_gain_hz / 1e6,
                    d.predicted().power_w * 1e6,
                );
            }
            Err(e) => {
                println!("{:<14} infeasible: {e}", process.name());
            }
        }
    }

    println!(
        "\nthe scaled processes shrink the devices (higher K' buys the same\n\
         transconductance with less width) — and the style selection itself\n\
         can flip: on denser processes the folded cascode's many small\n\
         devices undercut the two-stage's compensation capacitor."
    );
    Ok(())
}
