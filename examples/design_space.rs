//! Exploring the continuous design space — the paper's Figure 7 argument
//! that a synthesis tool beats any cell library.
//!
//! *"An important advantage of a tool such as OASYS is its ability to
//! design with respect to a continuous range of performance parameters.
//! This is in sharp contrast to design styles based on a library of fixed
//! cells."* This example sweeps the gain requirement continuously, prints
//! the area/style frontier, and marks the automatic topology changes.
//!
//! The sweep itself is a **batch**: each gain step becomes one in-memory
//! job ([`Job::from_texts`] — no files involved), the worker pool runs
//! them with per-job isolation, and every record carries the full
//! per-style feasibility table the frontier is printed from.
//!
//! Run with:
//!
//! ```text
//! cargo run --example design_space
//! ```

use oasys::batch::{Batch, BatchOptions, Job, JobRecord, StyleEntry, SynthRunner};
use oasys_process::{builtin, techfile};
use oasys_telemetry::Telemetry;
use std::sync::Arc;

const GAINS_DB: std::ops::RangeInclusive<u32> = 30..=115;

/// The spec-A constraint set as specfile text, at one gain point.
fn spec_text(gain_db: f64) -> String {
    format!(
        "dc_gain_db         = {gain_db}\n\
         unity_gain_mhz     = 0.5\n\
         phase_margin_deg   = 45\n\
         load_pf            = 5\n\
         slew_rate_v_per_us = 2\n\
         output_swing_v     = 1.2\n"
    )
}

fn main() {
    let process = builtin::cmos_5um();
    let tech_text = techfile::write(&process);

    // One job per gain step, all sharing the same technology text — so
    // the whole sweep shares one memo cache inside the runner.
    let jobs: Vec<Job> = GAINS_DB
        .enumerate()
        .map(|(id, gain)| {
            Job::from_texts(
                id,
                format!("gain-{gain}dB"),
                spec_text(f64::from(gain)),
                process.name(),
                tech_text.clone(),
            )
        })
        .collect();

    let tel = Telemetry::new();
    let runner = Arc::new(SynthRunner::new().with_verify(false));
    let report = Batch::new(jobs, BatchOptions::default())
        .run(&runner, &tel, |_| {})
        .expect("no checkpoint attached, so the run cannot fail");

    println!("gain sweep on spec-A constraints (5 pF load), 1 dB steps:\n");
    println!(
        "{:>8}  {:>24}  {:>24}  {:>24}",
        "gain dB", "one-stage", "two-stage", "folded cascode"
    );

    let describe = |entry: Option<&StyleEntry>| match entry {
        Some(e) if e.feasible() => format!(
            "{:>7.0} µm² / {} dev{}",
            e.area_um2.unwrap_or(f64::NAN),
            e.devices.unwrap_or(0),
            if e.notes.is_empty() { "" } else { "*" }
        ),
        _ => "infeasible".to_owned(),
    };
    let style = |record: &JobRecord, name: &str| -> Option<StyleEntry> {
        record
            .styles
            .iter()
            .find(|e| e.style.contains(name))
            .cloned()
    };
    let sig = |entry: &Option<StyleEntry>| {
        entry
            .as_ref()
            .filter(|e| e.feasible())
            .map(|e| format!("{}{}", e.devices.unwrap_or(0), e.notes.join("")))
            .unwrap_or_default()
    };

    let mut last_signature = (String::new(), String::new(), String::new());
    for record in report.records() {
        let gain_db = f64::from(*GAINS_DB.start() + record.job as u32);
        let one = style(record, "one-stage");
        let two = style(record, "two-stage");
        let folded = style(record, "folded");

        let signature = (sig(&one), sig(&two), sig(&folded));
        // Print only rows where a topology changes, plus decade markers,
        // to keep the output readable.
        let topology_change = signature != last_signature;
        if topology_change || gain_db % 10.0 == 0.0 {
            println!(
                "{:>8.1}  {:>24}  {:>24}  {:>24}{}",
                gain_db,
                describe(one.as_ref()),
                describe(two.as_ref()),
                describe(folded.as_ref()),
                if topology_change && record.job != 0 {
                    "   ← topology change"
                } else {
                    ""
                }
            );
        }
        last_signature = signature;
    }
    println!(
        "\n(* = a patch rule modified the template: cascoding, partition skew, level shifter)"
    );
    println!(
        "batch: {} jobs, {} sub-block designs served from the shared cache",
        report.records().len(),
        tel.counter("engine.cache_hits")
    );
}
