//! Exploring the continuous design space — the paper's Figure 7 argument
//! that a synthesis tool beats any cell library.
//!
//! *"An important advantage of a tool such as OASYS is its ability to
//! design with respect to a continuous range of performance parameters.
//! This is in sharp contrast to design styles based on a library of fixed
//! cells."* This example sweeps the gain requirement continuously, prints
//! the area/style frontier, and marks the automatic topology changes.
//!
//! Run with:
//!
//! ```text
//! cargo run --example design_space
//! ```

use oasys::spec::test_cases;
use oasys::styles::{design_folded_cascode, design_one_stage, design_two_stage};
use oasys_process::builtin;

fn main() {
    let process = builtin::cmos_5um();
    let base = test_cases::spec_a();

    println!("gain sweep on spec-A constraints (5 pF load), 1 dB steps:\n");
    println!(
        "{:>8}  {:>24}  {:>24}  {:>24}",
        "gain dB", "one-stage", "two-stage", "folded cascode"
    );

    let mut last_signature = (String::new(), String::new(), String::new());
    for tenth in (30 * 10..=115 * 10).step_by(10) {
        let gain_db = f64::from(tenth) / 10.0;
        let spec = base.with_dc_gain_db(gain_db);
        let one = design_one_stage(&spec, &process).ok();
        let two = design_two_stage(&spec, &process).ok();
        let folded = design_folded_cascode(&spec, &process).ok();

        let describe = |d: &Option<oasys::OpAmpDesign>| match d {
            Some(d) => format!(
                "{:>7.0} µm² / {} dev{}",
                d.area().total_um2(),
                d.device_count(),
                if d.notes().is_empty() { "" } else { "*" }
            ),
            None => "infeasible".to_owned(),
        };
        let sig = |d: &Option<oasys::OpAmpDesign>| {
            d.as_ref()
                .map(|d| format!("{}{}", d.device_count(), d.notes().join("")))
                .unwrap_or_default()
        };
        let signature = (sig(&one), sig(&two), sig(&folded));
        // Print only rows where a topology changes, plus decade markers,
        // to keep the output readable.
        let topology_change = signature != last_signature;
        if topology_change || tenth % 100 == 0 {
            println!(
                "{:>8.1}  {:>24}  {:>24}  {:>24}{}",
                gain_db,
                describe(&one),
                describe(&two),
                describe(&folded),
                if topology_change && tenth != 300 {
                    "   ← topology change"
                } else {
                    ""
                }
            );
        }
        last_signature = signature;
    }
    println!(
        "\n(* = a patch rule modified the template: cascoding, partition skew, level shifter)"
    );
}
