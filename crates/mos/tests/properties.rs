//! Property-based tests on the device model: physical invariants of the
//! square law and consistency between forward evaluation and the inverse
//! sizing equations.

use oasys_mos::{sizing, Geometry, Mosfet};
use oasys_process::{builtin, Polarity};
use oasys_testutil::prelude::*;

fn device(w: f64, l: f64, polarity: Polarity) -> Mosfet {
    Mosfet::new(
        polarity,
        Geometry::new_um(w, l).expect("strategy stays in range"),
        &builtin::cmos_5um(),
    )
}

proptest! {
    /// Current is monotone in V_GS at fixed V_DS (NMOS frame).
    #[test]
    fn id_monotone_in_vgs(
        w in 5.0..500.0f64,
        l in 5.0..20.0f64,
        vgs in 0.0..4.0f64,
        dv in 0.01..1.0f64,
        vds in 0.05..5.0f64,
    ) {
        let m = device(w, l, Polarity::Nmos);
        let lo = m.operating_point(vgs, vds, 0.0).id();
        let hi = m.operating_point(vgs + dv, vds, 0.0).id();
        prop_assert!(hi >= lo);
    }

    /// Current is monotone in V_DS at fixed V_GS (λ > 0 keeps it strict
    /// in saturation too).
    #[test]
    fn id_monotone_in_vds(
        w in 5.0..500.0f64,
        vgs in 1.2..4.0f64,
        vds in 0.0..4.0f64,
        dv in 0.01..1.0f64,
    ) {
        let m = device(w, 5.0, Polarity::Nmos);
        let lo = m.operating_point(vgs, vds, 0.0).id();
        let hi = m.operating_point(vgs, vds + dv, 0.0).id();
        prop_assert!(hi >= lo);
    }

    /// Current scales exactly linearly with W at fixed L.
    #[test]
    fn id_linear_in_width(
        w in 5.0..200.0f64,
        k in 1.5..5.0f64,
        vgs in 1.2..4.0f64,
        vds in 0.1..5.0f64,
    ) {
        let narrow = device(w, 5.0, Polarity::Nmos);
        let wide = device(w * k, 5.0, Polarity::Nmos);
        let a = narrow.operating_point(vgs, vds, 0.0).id();
        let b = wide.operating_point(vgs, vds, 0.0).id();
        prop_assert!((b / a / k - 1.0).abs() < 1e-9);
    }

    /// Body bias never increases the current (it raises the threshold).
    #[test]
    fn body_effect_reduces_current(
        vgs in 1.2..4.0f64,
        vds in 0.5..4.0f64,
        vsb in 0.01..4.0f64,
    ) {
        let m = device(50.0, 5.0, Polarity::Nmos);
        let base = m.operating_point(vgs, vds, 0.0).id();
        let bodied = m.operating_point(vgs, vds, vsb).id();
        prop_assert!(bodied <= base);
    }

    /// PMOS mirrors NMOS: evaluating the PMOS at negated voltages gives
    /// minus the current the equivalent-K' NMOS equations would give, and
    /// identical conductances.
    #[test]
    fn pmos_sign_symmetry(
        vgs in 0.0..4.0f64,
        vds in 0.0..4.0f64,
        vsb in 0.0..2.0f64,
    ) {
        let p = device(50.0, 5.0, Polarity::Pmos);
        let fwd = p.operating_point(-vgs, -vds, -vsb);
        prop_assert!(fwd.id() <= 0.0);
        prop_assert!(fwd.gm() >= 0.0);
        prop_assert!(fwd.gds() >= 0.0);
    }

    /// Inverse sizing closes the loop: size a device for (gm, id), bias
    /// it at the implied overdrive, and the forward model returns the
    /// same current within the λ correction.
    #[test]
    fn sizing_forward_consistency(
        gm_ua in 10.0..1000.0f64,
        id_ua in 2.0..200.0f64,
    ) {
        let gm = gm_ua * 1e-6;
        let id = id_ua * 1e-6;
        let vov = sizing::vov_from_gm_id(gm, id);
        prop_assume!(vov > 0.05 && vov < 2.0);
        let process = builtin::cmos_5um();
        let kprime = process.nmos().kprime();
        let wl = sizing::w_over_l_from_gm_id(gm, id, kprime);
        prop_assume!((0.05..5000.0).contains(&wl));

        let l_um = 10.0;
        let w_um = (wl * l_um).clamp(1.0, 40_000.0);
        prop_assume!((w_um / l_um / wl - 1.0).abs() < 1e-9);
        let m = Mosfet::new(
            Polarity::Nmos,
            Geometry::new_um(w_um, l_um).unwrap(),
            &process,
        );
        let vgs = process.nmos().vth().volts() + vov;
        // Deep saturation, λ correction bounded by λ·vds.
        let vds = vov + 1.0;
        let op = m.operating_point(vgs, vds, 0.0);
        let lambda = process.nmos().lambda(l_um);
        let expected = id * (1.0 + lambda * vds);
        prop_assert!(
            (op.id() / expected - 1.0).abs() < 1e-6,
            "sized for {id:.3e} A, measured {:.3e} A", op.id()
        );
    }

    /// Capacitances are non-negative and the gate total bounds each part.
    #[test]
    fn capacitances_sane(
        w in 5.0..500.0f64,
        l in 5.0..20.0f64,
        vgs in -1.0..4.0f64,
        vds in 0.0..5.0f64,
    ) {
        let m = device(w, l, Polarity::Nmos);
        let op = m.operating_point(vgs, vds, 0.0);
        let c = m.capacitances(&op);
        let total = c.gate_total().farads();
        for part in [c.cgs(), c.cgd(), c.cgb()] {
            prop_assert!(part.farads() >= 0.0);
            prop_assert!(part.farads() <= total + 1e-20);
        }
        prop_assert!(c.cdb().farads() > 0.0);
    }
}
