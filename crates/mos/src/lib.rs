//! Level-1 (square-law) MOSFET device model for the OASYS reproduction.
//!
//! OASYS sizes devices from the classical square-law equations informed by
//! the process parameters of Table 1. This crate provides the model in both
//! directions:
//!
//! * **Forward** ([`model`], [`smallsignal`]): given geometry and terminal
//!   voltages, compute the operating [`Region`], drain current, small-signal
//!   parameters (`gm`, `gds`, `gmb`) and Meyer-style capacitances — the
//!   same model the `oasys-sim` simulator stamps into its MNA matrices.
//! * **Inverse** ([`sizing`]): given electrical targets (`gm`, `I_D`,
//!   overdrive), compute the `W/L` the synthesis plans need.
//!
//! Both directions share one set of equations, so a design sized by the
//! inverse equations measures back correctly under the forward model — the
//! property the paper verifies with SPICE and that our integration tests
//! verify against `oasys-sim`.
//!
//! # Examples
//!
//! ```
//! use oasys_mos::{Geometry, Mosfet};
//! use oasys_process::{builtin, Polarity};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let process = builtin::cmos_5um();
//! let geometry = Geometry::new_um(50.0, 5.0)?;
//! let m = Mosfet::new(Polarity::Nmos, geometry, &process);
//!
//! // NMOS in saturation: Vgs = 2 V, Vds = 3 V, Vsb = 0.
//! let op = m.operating_point(2.0, 3.0, 0.0);
//! assert!(op.region().is_saturation());
//! assert!(op.id() > 0.0);
//! assert!(op.gm() > 0.0);
//! # Ok(())
//! # }
//! ```

mod geometry;
pub mod model;
pub mod sizing;
pub mod smallsignal;

pub use geometry::{Geometry, GeometryError};
pub use model::{Mosfet, OperatingPoint, Region};
pub use smallsignal::Capacitances;
