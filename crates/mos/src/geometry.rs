//! Device geometry: drawn channel width and length.

use oasys_units::{Area, Length};
use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`Geometry`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryError {
    message: String,
}

impl GeometryError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid device geometry: {}", self.message)
    }
}

impl Error for GeometryError {}

/// Drawn channel geometry of a MOSFET.
///
/// # Examples
///
/// ```
/// use oasys_mos::Geometry;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Geometry::new_um(50.0, 5.0)?;
/// assert!((g.w_over_l() - 10.0).abs() < 1e-12);
/// assert!((g.gate_area().square_micrometers() - 250.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Geometry {
    /// Channel width, m.
    w: f64,
    /// Channel length, m.
    l: f64,
}

impl Geometry {
    /// Creates a geometry from width and length in micrometers.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if either dimension is non-positive or not
    /// finite, or if the aspect ratio is outside the manufacturable range
    /// `[0.02, 50000]` (a guard against runaway sizing loops).
    pub fn new_um(w_um: f64, l_um: f64) -> Result<Self, GeometryError> {
        if !(w_um.is_finite() && l_um.is_finite()) {
            return Err(GeometryError::new(format!(
                "dimensions must be finite, got W={w_um} µm, L={l_um} µm"
            )));
        }
        if w_um <= 0.0 || l_um <= 0.0 {
            return Err(GeometryError::new(format!(
                "dimensions must be positive, got W={w_um} µm, L={l_um} µm"
            )));
        }
        let ratio = w_um / l_um;
        if !(0.02..=50_000.0).contains(&ratio) {
            return Err(GeometryError::new(format!(
                "aspect ratio W/L = {ratio:.3} outside manufacturable range"
            )));
        }
        Ok(Self {
            w: w_um * 1e-6,
            l: l_um * 1e-6,
        })
    }

    /// Creates a geometry from [`Length`] quantities.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Geometry::new_um`].
    pub fn new(w: Length, l: Length) -> Result<Self, GeometryError> {
        Self::new_um(w.micrometers(), l.micrometers())
    }

    /// Channel width.
    #[must_use]
    pub fn w(&self) -> Length {
        Length::new(self.w)
    }

    /// Channel length.
    #[must_use]
    pub fn l(&self) -> Length {
        Length::new(self.l)
    }

    /// Channel width in micrometers.
    #[must_use]
    pub fn w_um(&self) -> f64 {
        self.w * 1e6
    }

    /// Channel length in micrometers.
    #[must_use]
    pub fn l_um(&self) -> f64 {
        self.l * 1e6
    }

    /// Aspect ratio `W/L`.
    #[must_use]
    pub fn w_over_l(&self) -> f64 {
        self.w / self.l
    }

    /// Gate area `W·L`.
    #[must_use]
    pub fn gate_area(&self) -> Area {
        Area::new(self.w * self.l)
    }

    /// Returns a geometry with the width scaled by `factor` (length
    /// unchanged), e.g. for splitting a mirror device into ratioed copies.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the scaled width is invalid.
    pub fn scaled_width(&self, factor: f64) -> Result<Self, GeometryError> {
        Self::new_um(self.w_um() * factor, self.l_um())
    }

    /// Snaps both dimensions up to the given manufacturing grid (µm) and
    /// enforces the process minima, never shrinking a dimension.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the snapped geometry is invalid.
    pub fn snapped(
        &self,
        grid_um: f64,
        min_w_um: f64,
        min_l_um: f64,
    ) -> Result<Self, GeometryError> {
        fn up(value: f64, grid: f64) -> f64 {
            (value / grid).ceil() * grid
        }
        let w = up(self.w_um().max(min_w_um), grid_um);
        let l = up(self.l_um().max(min_l_um), grid_um);
        Self::new_um(w, l)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}µ/{:.1}µ", self.w_um(), self.l_um())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry_roundtrips() {
        let g = Geometry::new_um(50.0, 5.0).unwrap();
        assert!((g.w_um() - 50.0).abs() < 1e-9);
        assert!((g.l_um() - 5.0).abs() < 1e-9);
        assert!((g.w().micrometers() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nonpositive() {
        assert!(Geometry::new_um(0.0, 5.0).is_err());
        assert!(Geometry::new_um(5.0, -1.0).is_err());
        assert!(Geometry::new_um(f64::NAN, 5.0).is_err());
        assert!(Geometry::new_um(5.0, f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_extreme_aspect_ratios() {
        assert!(Geometry::new_um(1e7, 1.0).is_err());
        assert!(Geometry::new_um(1.0, 1000.0).is_err());
    }

    #[test]
    fn scaled_width() {
        let g = Geometry::new_um(10.0, 5.0).unwrap();
        let g2 = g.scaled_width(3.0).unwrap();
        assert!((g2.w_um() - 30.0).abs() < 1e-9);
        assert!((g2.l_um() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snapping_rounds_up_and_enforces_minima() {
        let g = Geometry::new_um(7.3, 4.1).unwrap();
        let s = g.snapped(0.5, 5.0, 5.0).unwrap();
        assert!((s.w_um() - 7.5).abs() < 1e-9);
        assert!((s.l_um() - 5.0).abs() < 1e-9);
        // Never shrinks.
        assert!(s.w_um() >= g.w_um());
        assert!(s.l_um() >= g.l_um());
    }

    #[test]
    fn display_shows_both_dimensions() {
        let g = Geometry::new_um(50.0, 5.0).unwrap();
        assert_eq!(g.to_string(), "50.0µ/5.0µ");
    }

    #[test]
    fn error_display_mentions_cause() {
        let err = Geometry::new_um(-1.0, 5.0).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }
}
