//! Inverse square-law design equations.
//!
//! These are the relationships OASYS plan steps manipulate numerically when
//! translating electrical targets into device sizes. All functions work
//! with magnitudes in SI units (`gm` in siemens, `id` in amperes, `kprime`
//! in A/V², voltages in volts) and are polarity-agnostic: callers pass
//! magnitudes and apply signs themselves.
//!
//! The governing saturation relations:
//!
//! ```text
//! I_D  = ½ K' (W/L) V_ov²          gm = K' (W/L) V_ov = 2 I_D / V_ov
//! gm   = √(2 K' (W/L) I_D)         V_ov = √(2 I_D / (K' (W/L)))
//! ```
//!
//! # Examples
//!
//! ```
//! use oasys_mos::sizing;
//!
//! // A 100 µS transconductance at 20 µA needs Vov = 0.4 V …
//! let vov = sizing::vov_from_gm_id(100e-6, 20e-6);
//! assert!((vov - 0.4).abs() < 1e-12);
//! // … which with K' = 25 µA/V² needs W/L = 10.
//! let wl = sizing::w_over_l_from_gm_id(100e-6, 20e-6, 25e-6);
//! assert!((wl - 10.0).abs() < 1e-9);
//! ```

/// Asserts that a design-equation input is positive and finite.
///
/// These equations sit inside synthesis plan steps; a non-positive argument
/// always indicates an upstream plan bug, so failing fast with a named
/// argument beats propagating NaN.
macro_rules! check_positive {
    ($($name:ident),+) => {
        $(assert!(
            $name > 0.0 && $name.is_finite(),
            concat!("sizing: `", stringify!($name), "` must be positive and finite, got {}"),
            $name
        );)+
    };
}

/// Required aspect ratio for a target transconductance at a given drain
/// current: `W/L = gm² / (2 K' I_D)`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn w_over_l_from_gm_id(gm: f64, id: f64, kprime: f64) -> f64 {
    check_positive!(gm, id, kprime);
    gm * gm / (2.0 * kprime * id)
}

/// Required aspect ratio for a target current at a given overdrive:
/// `W/L = 2 I_D / (K' V_ov²)`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn w_over_l_from_id_vov(id: f64, vov: f64, kprime: f64) -> f64 {
    check_positive!(id, vov, kprime);
    2.0 * id / (kprime * vov * vov)
}

/// Gate overdrive implied by a transconductance and current:
/// `V_ov = 2 I_D / gm`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn vov_from_gm_id(gm: f64, id: f64) -> f64 {
    check_positive!(gm, id);
    2.0 * id / gm
}

/// Transconductance of a device with aspect ratio `wl` carrying `id`:
/// `gm = √(2 K' (W/L) I_D)`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn gm_from_wl_id(wl: f64, id: f64, kprime: f64) -> f64 {
    check_positive!(wl, id, kprime);
    (2.0 * kprime * wl * id).sqrt()
}

/// Saturation drain current of a device with aspect ratio `wl` at
/// overdrive `vov`: `I_D = ½ K' (W/L) V_ov²` (λ → 0).
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn id_from_wl_vov(wl: f64, vov: f64, kprime: f64) -> f64 {
    check_positive!(wl, vov, kprime);
    0.5 * kprime * wl * vov * vov
}

/// Overdrive of a device with aspect ratio `wl` carrying `id`:
/// `V_ov = √(2 I_D / (K' (W/L)))`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn vov_from_wl_id(wl: f64, id: f64, kprime: f64) -> f64 {
    check_positive!(wl, id, kprime);
    (2.0 * id / (kprime * wl)).sqrt()
}

/// Small-signal output resistance of a saturated device:
/// `r_o = 1 / (λ I_D)`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn rout_from_lambda_id(lambda: f64, id: f64) -> f64 {
    check_positive!(lambda, id);
    1.0 / (lambda * id)
}

/// Intrinsic voltage gain of a single saturated device driving its own
/// output resistance: `a_v = gm·r_o = gm / (λ I_D) = 2 / (λ V_ov)`.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
#[must_use]
pub fn intrinsic_gain(lambda: f64, vov: f64) -> f64 {
    check_positive!(lambda, vov);
    2.0 / (lambda * vov)
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: f64 = 25e-6;

    #[test]
    fn forward_inverse_consistency_gm() {
        let (id, vov) = (20e-6, 0.5);
        let wl = w_over_l_from_id_vov(id, vov, K);
        let gm = gm_from_wl_id(wl, id, K);
        // gm should equal 2 id / vov.
        assert!((gm - 2.0 * id / vov).abs() < 1e-12);
        // And inverting via gm gives the same W/L.
        let wl2 = w_over_l_from_gm_id(gm, id, K);
        assert!((wl / wl2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forward_inverse_consistency_vov() {
        let (wl, id) = (10.0, 20e-6);
        let vov = vov_from_wl_id(wl, id, K);
        let id_back = id_from_wl_vov(wl, vov, K);
        assert!((id_back / id - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vov_from_gm_id_basic() {
        assert!((vov_from_gm_id(100e-6, 25e-6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rout_and_intrinsic_gain() {
        let lambda = 0.02;
        let id = 10e-6;
        let ro = rout_from_lambda_id(lambda, id);
        assert!((ro - 5e6).abs() < 1.0);
        // a_v = gm·ro with gm = 2id/vov.
        let vov = 0.25;
        let av = intrinsic_gain(lambda, vov);
        let gm = 2.0 * id / vov;
        assert!((av / (gm * ro) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "`gm` must be positive")]
    fn rejects_nonpositive_gm() {
        let _ = w_over_l_from_gm_id(0.0, 1e-6, K);
    }

    #[test]
    #[should_panic(expected = "`vov` must be positive")]
    fn rejects_nan_vov() {
        let _ = w_over_l_from_id_vov(1e-6, f64::NAN, K);
    }

    #[test]
    fn monotonicity() {
        // More gm at fixed current needs a bigger device.
        assert!(w_over_l_from_gm_id(200e-6, 20e-6, K) > w_over_l_from_gm_id(100e-6, 20e-6, K));
        // More current at fixed overdrive needs a bigger device.
        assert!(w_over_l_from_id_vov(40e-6, 0.5, K) > w_over_l_from_id_vov(20e-6, 0.5, K));
        // Lower overdrive at fixed current needs a bigger device.
        assert!(w_over_l_from_id_vov(20e-6, 0.25, K) > w_over_l_from_id_vov(20e-6, 0.5, K));
    }
}
