//! Forward device evaluation: regions, drain current, small-signal
//! conductances.
//!
//! The model is the classical SPICE level-1 square law with channel-length
//! modulation `(1 + λ·V_DS)` in both triode and saturation (so current and
//! its derivatives are continuous at the region boundary) and the
//! body-effect threshold shift `V_T = V_T0 + γ(√(2φ_F + V_SB) − √(2φ_F))`.
//!
//! All public entry points take *electrical* terminal voltages; PMOS
//! devices are internally mapped onto the NMOS equations by the polarity
//! sign convention of [`Polarity::sign`]. Negative `V_DS` is handled by
//! drain/source mode reversal, as in SPICE.

use crate::geometry::Geometry;
use crate::smallsignal::Capacitances;
use oasys_process::{Polarity, Process};
use std::fmt;

/// MOSFET operating region.
///
/// # Examples
///
/// ```
/// use oasys_mos::Region;
/// assert!(Region::Saturation.is_saturation());
/// assert!(!Region::Triode.is_saturation());
/// assert_eq!(Region::Cutoff.to_string(), "cutoff");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Region {
    /// `V_GS ≤ V_T`: the channel is off.
    Cutoff,
    /// `V_DS < V_GS − V_T`: resistive (linear) operation.
    Triode,
    /// `V_DS ≥ V_GS − V_T`: current-source operation.
    Saturation,
}

impl Region {
    /// Returns `true` for [`Region::Saturation`].
    #[must_use]
    pub fn is_saturation(self) -> bool {
        self == Region::Saturation
    }

    /// Returns `true` for [`Region::Cutoff`].
    #[must_use]
    pub fn is_cutoff(self) -> bool {
        self == Region::Cutoff
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Region::Cutoff => "cutoff",
            Region::Triode => "triode",
            Region::Saturation => "saturation",
        })
    }
}

/// A bias point: region, current, and small-signal parameters.
///
/// Produced by [`Mosfet::operating_point`]. The drain current is signed in
/// electrical convention (current *into* the drain terminal), so a PMOS in
/// normal operation reports a negative `id`. The conductances `gm`, `gds`,
/// `gmb` are non-negative for both polarities.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OperatingPoint {
    region: Region,
    id: f64,
    gm: f64,
    gds: f64,
    gmb: f64,
    vov: f64,
    vdsat: f64,
    reversed: bool,
}

impl OperatingPoint {
    /// Operating region.
    #[must_use]
    pub fn region(&self) -> Region {
        self.region
    }

    /// Drain terminal current in amperes, electrical sign convention.
    #[must_use]
    pub fn id(&self) -> f64 {
        self.id
    }

    /// Gate transconductance `∂I_D/∂V_GS`, siemens (non-negative).
    #[must_use]
    pub fn gm(&self) -> f64 {
        self.gm
    }

    /// Output conductance `∂I_D/∂V_DS`, siemens (non-negative).
    #[must_use]
    pub fn gds(&self) -> f64 {
        self.gds
    }

    /// Body transconductance `∂I_D/∂V_BS`, siemens (non-negative).
    #[must_use]
    pub fn gmb(&self) -> f64 {
        self.gmb
    }

    /// Gate overdrive `|V_GS| − |V_T|` in volts (zero in cutoff).
    #[must_use]
    pub fn vov(&self) -> f64 {
        self.vov
    }

    /// Saturation voltage `V_DSAT` magnitude in volts.
    #[must_use]
    pub fn vdsat(&self) -> f64 {
        self.vdsat
    }

    /// `true` if drain and source exchanged roles (negative `V_DS` in the
    /// device frame).
    #[must_use]
    pub fn is_reversed(&self) -> bool {
        self.reversed
    }
}

/// A MOSFET instance bound to a process: geometry plus the device
/// parameters the equations need.
///
/// # Examples
///
/// ```
/// use oasys_mos::{Geometry, Mosfet, Region};
/// use oasys_process::{builtin, Polarity};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = builtin::cmos_5um();
/// let m = Mosfet::new(Polarity::Pmos, Geometry::new_um(100.0, 5.0)?, &p);
/// // PMOS with Vgs = -2 V, Vds = -3 V conducts in saturation…
/// let op = m.operating_point(-2.0, -3.0, 0.0);
/// assert_eq!(op.region(), Region::Saturation);
/// // …and its drain terminal current is negative (flows out of the drain).
/// assert!(op.id() < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Mosfet {
    polarity: Polarity,
    geometry: Geometry,
    /// Threshold magnitude at zero body bias, V.
    vth0: f64,
    /// `K' = µCox`, A/V².
    kprime: f64,
    /// Channel-length modulation at this L, 1/V.
    lambda: f64,
    /// Body-effect coefficient, V^½.
    gamma: f64,
    /// Surface potential 2φF, V.
    phi: f64,
    /// Gate oxide capacitance, F/m².
    cox: f64,
    /// Gate-drain/source overlap capacitance, F/m.
    cgdo: f64,
    /// Gate-bulk overlap capacitance, F/m.
    cgbo: f64,
    /// Junction bottom capacitance, F/m².
    cj: f64,
    /// Junction sidewall capacitance, F/m.
    cjsw: f64,
    /// Drain/source diffusion width, m.
    diff_width: f64,
}

impl Mosfet {
    /// Binds a geometry to a process, extracting the parameters the
    /// square-law equations need. `λ` is evaluated from the process
    /// `λ = f(L)` model at this device's channel length.
    #[must_use]
    pub fn new(polarity: Polarity, geometry: Geometry, process: &Process) -> Self {
        let mos = process.mos(polarity);
        Self {
            polarity,
            geometry,
            vth0: mos.vth().volts(),
            kprime: mos.kprime(),
            lambda: mos.lambda(geometry.l_um()),
            gamma: mos.gamma(),
            phi: mos.phi(),
            cox: process.cox(),
            cgdo: process.cgdo(),
            cgbo: process.cgbo(),
            cj: mos.cj(),
            cjsw: mos.cjsw(),
            diff_width: process.min_drain_width().meters(),
        }
    }

    /// Returns a copy with per-device Monte-Carlo mismatch applied:
    /// `delta_vth_v` shifts the zero-bias threshold *magnitude* (clamped
    /// at zero — a mismatch draw cannot turn the device on at zero
    /// bias), and `kprime_factor` scales the transconductance parameter
    /// (clamped to stay positive). The nominal device is recovered with
    /// `(0.0, 1.0)`.
    #[must_use]
    pub fn with_mismatch(mut self, delta_vth_v: f64, kprime_factor: f64) -> Self {
        self.vth0 = (self.vth0 + delta_vth_v).max(0.0);
        self.kprime *= kprime_factor.max(f64::MIN_POSITIVE);
        self
    }

    /// Channel polarity.
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Drawn geometry.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Channel-length modulation `λ` (1/V) at this geometry.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Effective threshold-voltage *magnitude* at body bias `vsb_mag`
    /// (the magnitude of source-bulk reverse bias, volts).
    #[must_use]
    pub fn vth_eff(&self, vsb_mag: f64) -> f64 {
        // Forward body bias beyond ~φ/2 is clamped; the square-root model
        // is invalid there and synthesized circuits never operate there.
        let vsb = vsb_mag.max(-self.phi / 2.0);
        self.vth0 + self.gamma * ((self.phi + vsb).sqrt() - self.phi.sqrt())
    }

    /// Evaluates the bias point from electrical terminal voltages
    /// (`vgs = V_G − V_S`, `vds = V_D − V_S`, `vsb = V_S − V_B`), volts.
    ///
    /// PMOS devices are sign-mapped internally; negative device-frame
    /// `V_DS` triggers drain/source mode reversal.
    #[must_use]
    pub fn operating_point(&self, vgs: f64, vds: f64, vsb: f64) -> OperatingPoint {
        let s = self.polarity.sign();
        // Map to the NMOS frame.
        let (vgs_n, vds_n, vsb_n) = (s * vgs, s * vds, s * vsb);

        if vds_n >= 0.0 {
            let mut op = self.nmos_frame_point(vgs_n, vds_n, vsb_n, false);
            op.id *= s;
            op
        } else {
            // Mode reversal: the terminal at lower (NMOS-frame) potential
            // acts as the source. In the swapped frame:
            //   vgs' = vgd = vgs − vds, vds' = −vds, vsb' = vdb = vsb + vds.
            let mut op = self.nmos_frame_point(vgs_n - vds_n, -vds_n, vsb_n + vds_n, true);
            // Current flows in the opposite terminal direction.
            op.id *= -s;
            op
        }
    }

    /// Square-law evaluation with `vds ≥ 0` in the NMOS frame.
    fn nmos_frame_point(&self, vgs: f64, vds: f64, vsb: f64, reversed: bool) -> OperatingPoint {
        debug_assert!(vds >= 0.0);
        let vt = self.vth_eff(vsb);
        let vov = vgs - vt;
        let beta = self.kprime * self.geometry.w_over_l();
        let clm = 1.0 + self.lambda * vds;

        // Body-effect derivative dVt/dVsb, guarded for the clamped region.
        let dvt_dvsb = {
            let vsb_c = vsb.max(-self.phi / 2.0);
            self.gamma / (2.0 * (self.phi + vsb_c).sqrt())
        };

        if vov <= 0.0 {
            return OperatingPoint {
                region: Region::Cutoff,
                id: 0.0,
                gm: 0.0,
                gds: 0.0,
                gmb: 0.0,
                vov: 0.0,
                vdsat: 0.0,
                reversed,
            };
        }

        if vds >= vov {
            // Saturation.
            let id = 0.5 * beta * vov * vov * clm;
            let gm = beta * vov * clm;
            let gds = 0.5 * beta * vov * vov * self.lambda;
            let gmb = gm * dvt_dvsb;
            OperatingPoint {
                region: Region::Saturation,
                id,
                gm,
                gds,
                gmb,
                vov,
                vdsat: vov,
                reversed,
            }
        } else {
            // Triode.
            let id = beta * (vov - vds / 2.0) * vds * clm;
            let gm = beta * vds * clm;
            let gds = beta * ((vov - vds) * clm + (vov - vds / 2.0) * vds * self.lambda);
            let gmb = gm * dvt_dvsb;
            OperatingPoint {
                region: Region::Triode,
                id,
                gm,
                gds,
                gmb,
                vov,
                vdsat: vov,
                reversed,
            }
        }
    }

    /// Meyer-style terminal capacitances at the given bias point.
    #[must_use]
    pub fn capacitances(&self, op: &OperatingPoint) -> Capacitances {
        Capacitances::evaluate(self, op)
    }

    pub(crate) fn cox(&self) -> f64 {
        self.cox
    }

    pub(crate) fn cgdo(&self) -> f64 {
        self.cgdo
    }

    pub(crate) fn cgbo(&self) -> f64 {
        self.cgbo
    }

    pub(crate) fn cj(&self) -> f64 {
        self.cj
    }

    pub(crate) fn cjsw(&self) -> f64 {
        self.cjsw
    }

    pub(crate) fn diff_width(&self) -> f64 {
        self.diff_width
    }
}

impl fmt::Display for Mosfet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.polarity, self.geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_process::builtin;

    fn nmos(w: f64, l: f64) -> Mosfet {
        Mosfet::new(
            Polarity::Nmos,
            Geometry::new_um(w, l).unwrap(),
            &builtin::cmos_5um(),
        )
    }

    fn pmos(w: f64, l: f64) -> Mosfet {
        Mosfet::new(
            Polarity::Pmos,
            Geometry::new_um(w, l).unwrap(),
            &builtin::cmos_5um(),
        )
    }

    #[test]
    fn cutoff_below_threshold() {
        let m = nmos(10.0, 5.0);
        let op = m.operating_point(0.5, 3.0, 0.0);
        assert_eq!(op.region(), Region::Cutoff);
        assert_eq!(op.id(), 0.0);
        assert_eq!(op.gm(), 0.0);
    }

    #[test]
    fn saturation_square_law() {
        let m = nmos(50.0, 5.0);
        // Vov = 1 V, deep saturation.
        let op = m.operating_point(2.0, 4.0, 0.0);
        assert_eq!(op.region(), Region::Saturation);
        let beta = 25e-6 * 10.0;
        let lambda = m.lambda();
        let expected = 0.5 * beta * 1.0 * (1.0 + lambda * 4.0);
        assert!((op.id() / expected - 1.0).abs() < 1e-12);
        // gm = 2 Id / Vov, up to the λ factor consistency.
        assert!((op.gm() / (beta * (1.0 + lambda * 4.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triode_current_lower_than_saturation() {
        let m = nmos(50.0, 5.0);
        let sat = m.operating_point(2.0, 4.0, 0.0);
        let tri = m.operating_point(2.0, 0.2, 0.0);
        assert_eq!(tri.region(), Region::Triode);
        assert!(tri.id() < sat.id());
        assert!(tri.id() > 0.0);
    }

    #[test]
    fn current_is_continuous_at_region_boundary() {
        let m = nmos(50.0, 5.0);
        let vov = 1.0;
        let below = m.operating_point(2.0, vov - 1e-9, 0.0);
        let above = m.operating_point(2.0, vov + 1e-9, 0.0);
        assert!((below.id() / above.id() - 1.0).abs() < 1e-6);
        // gds is continuous too (λ in both regions).
        assert!((below.gds() / above.gds() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gm_matches_numerical_derivative() {
        let m = nmos(50.0, 5.0);
        let dv = 1e-7;
        for (vgs, vds) in [(2.0, 4.0), (2.0, 0.3), (1.5, 1.0)] {
            let op = m.operating_point(vgs, vds, 0.0);
            let hi = m.operating_point(vgs + dv, vds, 0.0);
            let lo = m.operating_point(vgs - dv, vds, 0.0);
            let num = (hi.id() - lo.id()) / (2.0 * dv);
            assert!(
                (op.gm() - num).abs() <= 1e-6 * num.abs().max(1e-12),
                "gm mismatch at vgs={vgs} vds={vds}: analytic {} vs numeric {num}",
                op.gm()
            );
        }
    }

    #[test]
    fn gds_matches_numerical_derivative() {
        let m = nmos(50.0, 5.0);
        let dv = 1e-7;
        for (vgs, vds) in [(2.0, 4.0), (2.0, 0.3)] {
            let op = m.operating_point(vgs, vds, 0.0);
            let hi = m.operating_point(vgs, vds + dv, 0.0);
            let lo = m.operating_point(vgs, vds - dv, 0.0);
            let num = (hi.id() - lo.id()) / (2.0 * dv);
            assert!(
                (op.gds() - num).abs() <= 1e-5 * num.abs().max(1e-12),
                "gds mismatch at vgs={vgs} vds={vds}: analytic {} vs numeric {num}",
                op.gds()
            );
        }
    }

    #[test]
    fn gmb_matches_numerical_derivative() {
        let m = nmos(50.0, 5.0);
        let dv = 1e-7;
        let vsb = 1.0;
        let op = m.operating_point(2.0, 4.0, vsb);
        // gmb = ∂Id/∂Vbs = −∂Id/∂Vsb.
        let hi = m.operating_point(2.0, 4.0, vsb - dv);
        let lo = m.operating_point(2.0, 4.0, vsb + dv);
        let num = (hi.id() - lo.id()) / (2.0 * dv);
        assert!(
            (op.gmb() - num).abs() <= 1e-5 * num.abs().max(1e-12),
            "gmb mismatch: analytic {} vs numeric {num}",
            op.gmb()
        );
    }

    #[test]
    fn body_effect_raises_threshold() {
        let m = nmos(10.0, 5.0);
        assert!(m.vth_eff(2.0) > m.vth_eff(0.0));
        let op0 = m.operating_point(2.0, 4.0, 0.0);
        let op1 = m.operating_point(2.0, 4.0, 2.0);
        assert!(op1.id() < op0.id());
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let n = nmos(50.0, 5.0);
        let p = pmos(50.0, 5.0);
        let opn = n.operating_point(2.0, 4.0, 0.0);
        let opp = p.operating_point(-2.0, -4.0, 0.0);
        assert_eq!(opp.region(), Region::Saturation);
        assert!(opp.id() < 0.0);
        // Same equations, different K': ratio equals K'p/K'n (λ differs
        // slightly, so compare within a few percent).
        let ratio = opp.id().abs() / opn.id();
        assert!((ratio / (10.0 / 25.0) - 1.0).abs() < 0.05, "ratio {ratio}");
        assert!(opp.gm() > 0.0);
        assert!(opp.gds() > 0.0);
    }

    #[test]
    fn mode_reversal_antisymmetric_current() {
        let m = nmos(50.0, 5.0);
        // Swap drain and source with symmetric bias: in the reversed case
        // vgs' = vgd = 2 − (−1) = 3 at the same vsb' — not exactly the
        // mirror image unless the gate is referenced correctly. Verify the
        // fundamental antisymmetry instead: Id(vgd, −vds) from the swapped
        // terminal equals −Id when we relabel.
        let fwd = m.operating_point(3.0, 1.0, 0.0);
        let rev = m.operating_point(3.0 - 1.0, -1.0, 1.0);
        assert!(rev.is_reversed());
        assert!((fwd.id() + rev.id()).abs() < 1e-6 * fwd.id().abs());
    }

    #[test]
    fn vds_zero_gives_zero_current_but_finite_gds() {
        let m = nmos(50.0, 5.0);
        let op = m.operating_point(2.0, 0.0, 0.0);
        assert_eq!(op.region(), Region::Triode);
        assert_eq!(op.id(), 0.0);
        assert!(op.gds() > 0.0, "triode at vds=0 is a resistor");
    }

    #[test]
    fn larger_width_more_current() {
        let a = nmos(10.0, 5.0).operating_point(2.0, 4.0, 0.0);
        let b = nmos(100.0, 5.0).operating_point(2.0, 4.0, 0.0);
        assert!((b.id() / a.id() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn longer_channel_lower_lambda_higher_rout() {
        let short = nmos(50.0, 5.0);
        let long = nmos(100.0, 10.0); // same W/L
        let op_s = short.operating_point(2.0, 4.0, 0.0);
        let op_l = long.operating_point(2.0, 4.0, 0.0);
        assert!(op_l.gds() < op_s.gds());
    }
}
