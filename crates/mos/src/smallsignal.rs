//! Meyer-style terminal capacitances.
//!
//! The synthesis plans and the AC simulator both need the parasitic
//! capacitances each device adds to its terminals. The classical Meyer
//! partition of the gate-oxide capacitance is used, plus overlap terms and
//! zero-bias junction capacitances on drain and source:
//!
//! | Region      | Cgs (intrinsic) | Cgd (intrinsic) | Cgb (intrinsic) |
//! |-------------|-----------------|-----------------|-----------------|
//! | Cutoff      | 0               | 0               | `W·L·Cox`       |
//! | Triode      | `½·W·L·Cox`     | `½·W·L·Cox`     | 0               |
//! | Saturation  | `⅔·W·L·Cox`     | 0               | 0               |
//!
//! Junction capacitances use the zero-bias values (a small overestimate for
//! reverse-biased junctions — conservative for bandwidth predictions).

use crate::model::{Mosfet, OperatingPoint, Region};
use oasys_units::Capacitance;

/// The five terminal capacitances of a biased MOSFET, farads.
///
/// # Examples
///
/// ```
/// use oasys_mos::{Geometry, Mosfet};
/// use oasys_process::{builtin, Polarity};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = builtin::cmos_5um();
/// let m = Mosfet::new(Polarity::Nmos, Geometry::new_um(50.0, 5.0)?, &p);
/// let op = m.operating_point(2.0, 4.0, 0.0);
/// let c = m.capacitances(&op);
/// // In saturation Cgs dominates Cgd (only overlap remains on the drain).
/// assert!(c.cgs().farads() > c.cgd().farads());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Capacitances {
    cgs: f64,
    cgd: f64,
    cgb: f64,
    cdb: f64,
    csb: f64,
}

impl Capacitances {
    /// Evaluates the capacitances of `mosfet` at bias point `op`.
    #[must_use]
    pub fn evaluate(mosfet: &Mosfet, op: &OperatingPoint) -> Self {
        let g = mosfet.geometry();
        let w = g.w().meters();
        let l = g.l().meters();
        let cox_total = w * l * mosfet.cox();
        let ov_gs = w * mosfet.cgdo();
        let ov_gd = w * mosfet.cgdo();
        let ov_gb = l * mosfet.cgbo();

        let (mut cgs, mut cgd, cgb) = match op.region() {
            Region::Cutoff => (ov_gs, ov_gd, cox_total + ov_gb),
            Region::Triode => (0.5 * cox_total + ov_gs, 0.5 * cox_total + ov_gd, ov_gb),
            Region::Saturation => (2.0 / 3.0 * cox_total + ov_gs, ov_gd, ov_gb),
        };
        if op.is_reversed() {
            std::mem::swap(&mut cgs, &mut cgd);
        }

        // Drain/source junctions: bottom plate (W × diffusion width) plus
        // sidewall around the perimeter.
        let dw = mosfet.diff_width();
        let bottom = w * dw * mosfet.cj();
        let sidewall = 2.0 * (w + dw) * mosfet.cjsw();
        let cj_term = bottom + sidewall;

        Self {
            cgs,
            cgd,
            cgb,
            cdb: cj_term,
            csb: cj_term,
        }
    }

    /// Gate-source capacitance.
    #[must_use]
    pub fn cgs(&self) -> Capacitance {
        Capacitance::new(self.cgs)
    }

    /// Gate-drain capacitance.
    #[must_use]
    pub fn cgd(&self) -> Capacitance {
        Capacitance::new(self.cgd)
    }

    /// Gate-bulk capacitance.
    #[must_use]
    pub fn cgb(&self) -> Capacitance {
        Capacitance::new(self.cgb)
    }

    /// Drain-bulk junction capacitance.
    #[must_use]
    pub fn cdb(&self) -> Capacitance {
        Capacitance::new(self.cdb)
    }

    /// Source-bulk junction capacitance.
    #[must_use]
    pub fn csb(&self) -> Capacitance {
        Capacitance::new(self.csb)
    }

    /// Total capacitance seen looking into the gate with drain, source and
    /// bulk at AC ground.
    #[must_use]
    pub fn gate_total(&self) -> Capacitance {
        Capacitance::new(self.cgs + self.cgd + self.cgb)
    }

    /// Total capacitance the device hangs on its drain node (junction plus
    /// gate-drain), with the gate at AC ground.
    #[must_use]
    pub fn drain_total(&self) -> Capacitance {
        Capacitance::new(self.cdb + self.cgd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Geometry;
    use oasys_process::{builtin, Polarity};

    fn device() -> Mosfet {
        Mosfet::new(
            Polarity::Nmos,
            Geometry::new_um(50.0, 5.0).unwrap(),
            &builtin::cmos_5um(),
        )
    }

    #[test]
    fn saturation_partition() {
        let m = device();
        let op = m.operating_point(2.0, 4.0, 0.0);
        let c = m.capacitances(&op);
        let cox_total = 50e-6 * 5e-6 * m.cox();
        // Cgs ≈ 2/3 CoxWL + overlap.
        assert!(c.cgs().farads() > 2.0 / 3.0 * cox_total);
        // Overlap adds ~15% of CoxWL on top of the 2/3 partition.
        assert!(c.cgs().farads() < 0.9 * cox_total);
        // Cgd is overlap only (~0.15 CoxWL).
        assert!(c.cgd().farads() < 0.2 * cox_total);
    }

    #[test]
    fn triode_splits_gate_cap_evenly() {
        let m = device();
        let op = m.operating_point(3.0, 0.1, 0.0);
        let c = m.capacitances(&op);
        assert!((c.cgs().farads() / c.cgd().farads() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cutoff_puts_gate_cap_to_bulk() {
        let m = device();
        let op = m.operating_point(0.0, 1.0, 0.0);
        let c = m.capacitances(&op);
        let cox_total = 50e-6 * 5e-6 * m.cox();
        assert!(c.cgb().farads() >= cox_total);
        assert!(c.cgs().farads() < 0.2 * cox_total);
    }

    #[test]
    fn junction_caps_scale_with_width() {
        let p = builtin::cmos_5um();
        let narrow = Mosfet::new(Polarity::Nmos, Geometry::new_um(10.0, 5.0).unwrap(), &p);
        let wide = Mosfet::new(Polarity::Nmos, Geometry::new_um(100.0, 5.0).unwrap(), &p);
        let op_n = narrow.operating_point(2.0, 4.0, 0.0);
        let op_w = wide.operating_point(2.0, 4.0, 0.0);
        assert!(
            wide.capacitances(&op_w).cdb().farads() > narrow.capacitances(&op_n).cdb().farads()
        );
    }

    #[test]
    fn reversal_swaps_cgs_cgd() {
        let m = device();
        let fwd = m.operating_point(3.0, 1.0, 0.0);
        let rev = m.operating_point(2.0, -1.0, 1.0);
        assert!(rev.is_reversed());
        let cf = m.capacitances(&fwd);
        let cr = m.capacitances(&rev);
        assert!((cf.cgs().farads() - cr.cgd().farads()).abs() < 1e-18);
        assert!((cf.cgd().farads() - cr.cgs().farads()).abs() < 1e-18);
    }

    #[test]
    fn totals_are_sums() {
        let m = device();
        let op = m.operating_point(2.0, 4.0, 0.0);
        let c = m.capacitances(&op);
        let gt = c.gate_total().farads();
        assert!((gt - (c.cgs().farads() + c.cgd().farads() + c.cgb().farads())).abs() < 1e-20);
        let dt = c.drain_total().farads();
        assert!((dt - (c.cdb().farads() + c.cgd().farads())).abs() < 1e-20);
    }

    #[test]
    fn all_capacitances_nonnegative() {
        let m = device();
        for (vgs, vds) in [(0.0, 0.0), (2.0, 4.0), (3.0, 0.1), (0.5, 2.0)] {
            let op = m.operating_point(vgs, vds, 0.0);
            let c = m.capacitances(&op);
            for cap in [c.cgs(), c.cgd(), c.cgb(), c.cdb(), c.csb()] {
                assert!(cap.farads() >= 0.0);
            }
        }
    }
}
