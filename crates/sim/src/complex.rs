//! Minimal complex arithmetic for AC analysis.
//!
//! Implemented in-repo rather than pulling `num-complex`: AC analysis needs
//! only the field operations, magnitude and argument.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use oasys_sim::Complex;
/// let a = Complex::new(3.0, 4.0);
/// assert!((a.abs() - 5.0).abs() < 1e-12);
/// let b = a * Complex::I;
/// assert!((b.re + 4.0).abs() < 1e-12);
/// assert!((b.im - 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Magnitude `|z|`, computed with `hypot` for stability.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Division by the zero complex number yields infinities/NaN, as with
    /// `f64` division.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both parts are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Self;
    // Division by reciprocal multiplication is the standard complex
    // formula, not an operator mix-up.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_operations() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close((a / b) * b, a));
        assert!(close(-a, Complex::new(-1.0, -2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn abs_arg_conj() {
        let z = Complex::new(0.0, 2.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(close(z.conj(), Complex::new(0.0, -2.0)));
    }

    #[test]
    fn recip_inverts() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z * z.recip(), Complex::ONE));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::ONE;
        z += Complex::I;
        z -= Complex::ONE;
        z *= Complex::new(0.0, -1.0);
        assert!(close(z, Complex::ONE));
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn from_real_and_finite() {
        let z: Complex = 2.5.into();
        assert_eq!(z, Complex::from_real(2.5));
        assert!(z.is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
    }

    #[test]
    fn scale() {
        let z = Complex::new(1.0, -2.0).scale(3.0);
        assert!(close(z, Complex::new(3.0, -6.0)));
    }
}
