//! Dense LU factorization with partial pivoting, generic over real and
//! complex scalars.
//!
//! MNA matrices for the circuits OASYS synthesizes are tiny (tens of
//! unknowns), so a dense O(n³) solver is the right tool; sparse machinery
//! would be pure overhead.

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Scalar field over which the solver operates. Sealed: implemented for
/// `f64` and [`Complex`] only.
pub trait Scalar:
    Copy
    + PartialEq
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Magnitude used for pivot selection.
    fn norm(self) -> f64;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for super::Complex {}
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    fn norm(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    const ZERO: Self = Complex::ZERO;
    const ONE: Self = Complex::ONE;
    fn norm(self) -> f64 {
        self.abs()
    }
}

/// Error returned when a matrix is numerically singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Elimination column at which no acceptable pivot was found.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrixError {}

/// A dense square matrix in row-major storage.
///
/// # Examples
///
/// ```
/// use oasys_sim::linalg::Matrix;
/// let mut m: Matrix<f64> = Matrix::zeros(2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let x = m.solve(&[2.0, 8.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), oasys_sim::linalg::SingularMatrixError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Matrix<T: Scalar> {
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates an `n×n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![T::ZERO; n * n],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds `value` to entry `(row, col)` — the MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn stamp(&mut self, row: usize, col: usize, value: T) {
        let n = self.n;
        assert!(row < n && col < n, "stamp ({row},{col}) outside {n}×{n}");
        self.data[row * n + col] = self.data[row * n + col] + value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Solves `A·x = b` by LU with partial pivoting, consuming a copy of
    /// the matrix (the receiver is untouched).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if no pivot above the absolute
    /// threshold `1e-300` exists in some column.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, SingularMatrixError> {
        assert_eq!(b.len(), self.n, "rhs length must match matrix dimension");
        let mut lu = self.clone();
        let perm = lu.factorize_in_place()?;
        Ok(lu.solve_factored(&perm, b))
    }

    /// In-place LU factorization with partial pivoting. Returns the row
    /// permutation.
    fn factorize_in_place(&mut self) -> Result<Vec<usize>, SingularMatrixError> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Find the pivot row.
            let mut best = k;
            let mut best_norm = self.data[perm[k] * n + k].norm();
            for (offset, &row) in perm.iter().enumerate().skip(k + 1) {
                let candidate = self.data[row * n + k].norm();
                if candidate > best_norm {
                    best = offset;
                    best_norm = candidate;
                }
            }
            if best_norm < 1e-300 || !best_norm.is_finite() {
                return Err(SingularMatrixError { column: k });
            }
            perm.swap(k, best);
            let pivot_row = perm[k];
            let pivot = self.data[pivot_row * n + k];
            for &row in &perm[k + 1..] {
                let factor = self.data[row * n + k] / pivot;
                self.data[row * n + k] = factor;
                for j in k + 1..n {
                    let sub = factor * self.data[pivot_row * n + j];
                    self.data[row * n + j] = self.data[row * n + j] - sub;
                }
            }
        }
        Ok(perm)
    }

    /// Forward/back substitution against a previously factorized matrix.
    // The permuted row indexing makes iterator rewrites less readable.
    #[allow(clippy::needless_range_loop)]
    fn solve_factored(&self, perm: &[usize], b: &[T]) -> Vec<T> {
        let n = self.n;
        // Forward: L·y = P·b (unit diagonal L).
        let mut y = vec![T::ZERO; n];
        for k in 0..n {
            let mut acc = b[perm[k]];
            for j in 0..k {
                acc = acc - self.data[perm[k] * n + j] * y[j];
            }
            y[k] = acc;
        }
        // Back: U·x = y.
        let mut x = vec![T::ZERO; n];
        for k in (0..n).rev() {
            let mut acc = y[k];
            for j in k + 1..n {
                acc = acc - self.data[perm[k] * n + j] * x[j];
            }
            x[k] = acc / self.data[perm[k] * n + k];
        }
        x
    }

    /// Computes `A·x` (for residual checks and tests).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix dimension.
    #[must_use]
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        let n = self.n;
        (0..n)
            .map(|i| {
                self.data[i * n..(i + 1) * n]
                    .iter()
                    .zip(x)
                    .fold(T::ZERO, |acc, (&a, &xj)| acc + a * xj)
            })
            .collect()
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        &self.data[row * self.n + col]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        &mut self.data[row * self.n + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m: Matrix<f64> = Matrix::zeros(3);
        for i in 0..3 {
            m[(i, i)] = 1.0;
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_requiring_pivoting() {
        // Zero on the (0,0) diagonal forces a row swap.
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 0.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 0.0;
        let x = m.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        // Deterministic pseudo-random fill.
        let n = 12;
        let mut m: Matrix<f64> = Matrix::zeros(n);
        let mut seed = 1u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
            m[(i, i)] += 4.0; // diagonally dominant → nonsingular
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = m.solve(&b).unwrap();
        let ax = m.mul_vec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn detects_singularity() {
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        let err = m.solve(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn complex_system() {
        // (1+j)x = 2j  →  x = 2j/(1+j) = 1+j.
        let mut m: Matrix<Complex> = Matrix::zeros(1);
        m[(0, 0)] = Complex::new(1.0, 1.0);
        let x = m.solve(&[Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn complex_rc_divider() {
        // Series R with shunt C at ω: vout/vin = (1/jωC)/(R + 1/jωC).
        // Solve the 2-unknown MNA instead: nodes (in) driven by source…
        // keep it simple: 2×2 complex system with known solution.
        let r = 1e3;
        let w = 2.0 * std::f64::consts::PI * 1e6;
        let c = 159.155e-12; // makes ωRC ≈ 1
        let g = Complex::from_real(1.0 / r);
        let jwc = Complex::new(0.0, w * c);
        // Node 1 = vin fixed via large-G source approximation avoided; use
        // analytic: x = vin * g / (g + jwc).
        let mut m: Matrix<Complex> = Matrix::zeros(1);
        m[(0, 0)] = g + jwc;
        let x = m.solve(&[g]).unwrap();
        let expected_mag = 1.0 / (1.0 + (w * r * c).powi(2)).sqrt();
        assert!((x[0].abs() - expected_mag).abs() < 1e-6);
    }

    #[test]
    fn stamp_accumulates() {
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m.stamp(0, 0, 1.0);
        m.stamp(0, 0, 2.0);
        assert_eq!(m[(0, 0)], 3.0);
        m.clear();
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn stamp_bounds_checked() {
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m.stamp(2, 0, 1.0);
    }
}
