//! Per-device Monte-Carlo mismatch for model evaluation.
//!
//! Real wafers do not give two identically drawn transistors identical
//! parameters: local fluctuation of dopant count and oxide thickness
//! perturbs each device's threshold voltage and transconductance
//! independently. The classic Pelgrom model says the standard deviation
//! of those perturbations shrinks with the square root of gate area:
//!
//! ```text
//! σ(ΔVth) = A_vt / √(W·L)        σ(ΔK'/K') = A_kp / √(W·L)
//! ```
//!
//! A [`Mismatch`] carries the two Pelgrom coefficients plus a seed; the
//! draw for a device is a pure function of `(seed, device name,
//! geometry)` — independent of binding order, thread count, and how many
//! other devices exist — so a Monte-Carlo sample is reproducible
//! anywhere its seed is known.
//!
//! Analyses consult the mismatch through an ambient, thread-scoped
//! binding ([`scoped`]): the dataset runner wraps one verification run
//! per Monte-Carlo instance, and every [`bind`] of a device model inside
//! that scope (DC, AC, transient, noise — all model evaluation funnels
//! through the same three binding sites) applies that instance's draws.
//! Outside any scope, [`bind`] is exactly [`Mosfet::new`].

use oasys_mos::Mosfet;
use oasys_netlist::MosInstance;
use oasys_process::Process;
use std::cell::Cell;

/// A Monte-Carlo mismatch sample: Pelgrom coefficients plus the seed
/// that makes every per-device draw reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mismatch {
    /// Threshold-voltage area coefficient `A_vt`, V·µm.
    pub avt_v_um: f64,
    /// Fractional `K'` area coefficient `A_kp`, (ΔK'/K')·µm.
    pub akp_frac_um: f64,
    /// Seed of this Monte-Carlo instance.
    pub seed: u64,
}

/// One device's drawn parameter perturbations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceDelta {
    /// Threshold-magnitude shift, V (signed).
    pub delta_vth_v: f64,
    /// Multiplicative `K'` factor (1.0 = nominal).
    pub kprime_factor: f64,
}

impl DeviceDelta {
    /// The nominal (no-mismatch) delta.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            delta_vth_v: 0.0,
            kprime_factor: 1.0,
        }
    }
}

impl Mismatch {
    /// A mismatch sample with both coefficients zero: draws are always
    /// nominal whatever the seed.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            avt_v_um: 0.0,
            akp_frac_um: 0.0,
            seed: 0,
        }
    }

    /// `true` when both Pelgrom coefficients are zero.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.avt_v_um == 0.0 && self.akp_frac_um == 0.0
    }

    /// Draws the perturbation for a named device of the given drawn
    /// gate area. Pure: the same `(seed, name, area)` always yields the
    /// same delta, independent of call order or thread.
    #[must_use]
    pub fn delta_for(&self, name: &str, gate_area_um2: f64) -> DeviceDelta {
        if self.is_disabled() {
            return DeviceDelta::nominal();
        }
        let inv_sqrt_area = if gate_area_um2 > 0.0 {
            1.0 / gate_area_um2.sqrt()
        } else {
            1.0
        };
        let key = splitmix64(self.seed ^ fnv1a(name.as_bytes()));
        let (g_vth, g_kp) = gaussian_pair(key);
        DeviceDelta {
            delta_vth_v: self.avt_v_um * inv_sqrt_area * g_vth,
            kprime_factor: (1.0 + self.akp_frac_um * inv_sqrt_area * g_kp).max(f64::MIN_POSITIVE),
        }
    }
}

thread_local! {
    static ACTIVE: Cell<Option<Mismatch>> = const { Cell::new(None) };
}

/// Runs `f` with `mismatch` installed as this thread's ambient
/// Monte-Carlo sample: every [`bind`] inside applies its draws. The
/// previous ambient sample (normally none) is restored when `f`
/// returns — or unwinds, so a panicking analysis cannot leak mismatch
/// into a later, unrelated run on the same pooled thread.
pub fn scoped<T>(mismatch: Mismatch, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Mismatch>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(ACTIVE.with(|cell| cell.replace(Some(mismatch))));
    f()
}

/// The thread's ambient Monte-Carlo sample, when inside a [`scoped`]
/// region.
#[must_use]
pub fn active() -> Option<Mismatch> {
    ACTIVE.with(Cell::get)
}

/// Binds an instance's device model against a process, applying the
/// ambient Monte-Carlo draws when inside a [`scoped`] region. This is
/// the single choke point every analysis uses to construct a [`Mosfet`]
/// from the netlist, so mismatch reaches DC, AC, transient, and noise
/// model evaluation uniformly.
#[must_use]
pub fn bind(instance: &MosInstance, process: &Process) -> Mosfet {
    let device = Mosfet::new(instance.polarity, instance.geometry, process);
    match active() {
        Some(mismatch) if !mismatch.is_disabled() => {
            let area = instance.geometry.w_um() * instance.geometry.l_um();
            let delta = mismatch.delta_for(&instance.name, area);
            device.with_mismatch(delta.delta_vth_v, delta.kprime_factor)
        }
        _ => device,
    }
}

/// SplitMix64: the finalizer that turns a key into a well-mixed word.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes — the same family the batch fingerprint uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Two independent standard-normal draws from one 64-bit key, via one
/// Box-Muller transform over two derived uniforms in (0, 1].
fn gaussian_pair(key: u64) -> (f64, f64) {
    let u1 = to_unit(splitmix64(key));
    let u2 = to_unit(splitmix64(key ^ 0xa5a5_a5a5_a5a5_a5a5));
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Maps a word to a uniform in (0, 1] (never exactly 0, so `ln` is
/// finite).
fn to_unit(x: u64) -> f64 {
    (((x >> 11) + 1) as f64) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_mos::Geometry;
    use oasys_netlist::Circuit;
    use oasys_process::{builtin, Polarity};

    fn sample() -> Mismatch {
        Mismatch {
            avt_v_um: 20.0e-3,
            akp_frac_um: 0.02,
            seed: 42,
        }
    }

    #[test]
    fn draws_are_reproducible_and_name_keyed() {
        let m = sample();
        let a1 = m.delta_for("M1", 100.0);
        let a2 = m.delta_for("M1", 100.0);
        assert_eq!(a1, a2);
        let b = m.delta_for("M2", 100.0);
        assert_ne!(a1, b);
        let other_seed = Mismatch { seed: 43, ..m };
        assert_ne!(a1, other_seed.delta_for("M1", 100.0));
    }

    #[test]
    fn sigma_shrinks_with_gate_area() {
        let m = sample();
        // Same draw, scaled by 1/√area: a 4× larger device sees half
        // the Vth shift.
        let small = m.delta_for("M1", 25.0);
        let large = m.delta_for("M1", 100.0);
        assert!((small.delta_vth_v - 2.0 * large.delta_vth_v).abs() < 1e-15);
    }

    #[test]
    fn disabled_mismatch_is_nominal() {
        let m = Mismatch::disabled();
        assert_eq!(m.delta_for("M1", 25.0), DeviceDelta::nominal());
    }

    #[test]
    fn scoped_installs_and_restores() {
        assert_eq!(active(), None);
        let inner = scoped(sample(), || {
            assert_eq!(active(), Some(sample()));
            scoped(Mismatch::disabled(), || {
                assert_eq!(active(), Some(Mismatch::disabled()));
            });
            assert_eq!(active(), Some(sample()));
            7
        });
        assert_eq!(inner, 7);
        assert_eq!(active(), None);
    }

    #[test]
    fn scoped_restores_across_unwind() {
        let caught = std::panic::catch_unwind(|| {
            scoped(sample(), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active(), None);
    }

    #[test]
    fn bind_applies_ambient_draws() {
        let process = builtin::cmos_5um();
        let mut c = Circuit::new("t");
        let d = c.node("d");
        let g = c.node("g");
        let gnd = c.ground();
        c.add_mosfet(
            "M1",
            Polarity::Nmos,
            Geometry::new_um(50.0, 5.0).unwrap(),
            d,
            g,
            gnd,
            gnd,
        )
        .unwrap();
        let inst = match c.elements().first().unwrap() {
            oasys_netlist::Element::Mos(m) => m.clone(),
            _ => unreachable!(),
        };
        let nominal = bind(&inst, &process);
        let perturbed = scoped(sample(), || bind(&inst, &process));
        assert_ne!(nominal, perturbed);
        // Threshold shift matches the pure draw exactly.
        let delta = sample().delta_for("M1", 250.0);
        let expected = nominal.with_mismatch(delta.delta_vth_v, delta.kprime_factor);
        assert_eq!(perturbed, expected);
        // Out of scope the binding is nominal again.
        assert_eq!(bind(&inst, &process), nominal);
    }
}
