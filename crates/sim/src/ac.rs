//! Small-signal AC analysis.
//!
//! Linearizes every MOSFET at the DC operating point (conductances from
//! [`crate::mna::mos_stamp`], Meyer capacitances from the device model) and
//! solves the complex MNA system `Y(jω)·x = b` at each frequency of a
//! logarithmic sweep. The AC magnitudes of the circuit's sources form the
//! stimulus vector `b`; with a unit-magnitude input source, the node
//! values are transfer functions directly.

use crate::complex::Complex;
use crate::dc::{DcSolution, SolveDcError};
use crate::linalg::Matrix;
use crate::mna::{bound_mosfets, mos_stamp, MnaIndex};
use oasys_netlist::{Circuit, Element, NodeId};
use oasys_process::Process;
use oasys_telemetry::{sym, sym_display, sym_u64, Sym, Telemetry};
use std::error::Error;
use std::fmt;

/// Pre-interned symbols for the AC solver's span and counter names.
struct AcSyms {
    span: Sym,
    sweeps: Sym,
    points: Sym,
    failures: Sym,
    points_key: Sym,
    error: Sym,
}

fn ac_syms() -> &'static AcSyms {
    static SYMS: std::sync::OnceLock<AcSyms> = std::sync::OnceLock::new();
    SYMS.get_or_init(|| AcSyms {
        span: sym("sim:ac"),
        sweeps: sym("sim.ac.sweeps"),
        points: sym("sim.ac.points"),
        failures: sym("sim.ac.failures"),
        points_key: sym("points"),
        error: sym("error"),
    })
}

/// Error returned by AC analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveAcError {
    /// The prerequisite DC solve failed.
    Dc(SolveDcError),
    /// The admittance matrix was singular at some frequency.
    Singular {
        /// The frequency at which factorization failed, hertz.
        frequency: f64,
    },
    /// The sweep specification was empty or inverted.
    BadSweep(String),
}

impl fmt::Display for SolveAcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveAcError::Dc(e) => write!(f, "ac analysis: {e}"),
            SolveAcError::Singular { frequency } => {
                write!(f, "ac matrix singular at {frequency:.3e} Hz")
            }
            SolveAcError::BadSweep(detail) => write!(f, "bad ac sweep: {detail}"),
        }
    }
}

impl Error for SolveAcError {}

impl From<SolveDcError> for SolveAcError {
    fn from(e: SolveDcError) -> Self {
        SolveAcError::Dc(e)
    }
}

/// Logarithmic frequency sweep specification.
///
/// # Examples
///
/// ```
/// use oasys_sim::AcSweepSpec;
/// let spec = AcSweepSpec::new(1.0, 1e6, 10)?;
/// let freqs = spec.frequencies();
/// assert_eq!(freqs.len(), 61); // 6 decades × 10 + endpoint
/// assert!((freqs[0] - 1.0).abs() < 1e-9);
/// # Ok::<(), oasys_sim::ac::SolveAcError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcSweepSpec {
    start_hz: f64,
    stop_hz: f64,
    points_per_decade: usize,
}

impl AcSweepSpec {
    /// Creates a sweep from `start_hz` to `stop_hz` with
    /// `points_per_decade` logarithmically spaced points per decade.
    ///
    /// # Errors
    ///
    /// Returns [`SolveAcError::BadSweep`] if the bounds are non-positive,
    /// inverted, or `points_per_decade` is zero.
    pub fn new(
        start_hz: f64,
        stop_hz: f64,
        points_per_decade: usize,
    ) -> Result<Self, SolveAcError> {
        if !(start_hz > 0.0 && stop_hz > start_hz) {
            return Err(SolveAcError::BadSweep(format!(
                "need 0 < start < stop, got {start_hz}..{stop_hz}"
            )));
        }
        if points_per_decade == 0 {
            return Err(SolveAcError::BadSweep(
                "points_per_decade must be at least 1".to_owned(),
            ));
        }
        Ok(Self {
            start_hz,
            stop_hz,
            points_per_decade,
        })
    }

    /// The default datasheet sweep: 1 Hz to 100 MHz, 10 points per decade
    /// (the span of the paper's Figure 6).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            start_hz: 1.0,
            stop_hz: 1e8,
            points_per_decade: 10,
        }
    }

    /// Materializes the frequency list, inclusive of both endpoints.
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        let decades = (self.stop_hz / self.start_hz).log10();
        let steps = (decades * self.points_per_decade as f64).ceil() as usize;
        let mut out: Vec<f64> = (0..=steps)
            .map(|k| self.start_hz * 10f64.powf(k as f64 / self.points_per_decade as f64))
            .take_while(|&f| f < self.stop_hz * (1.0 - 1e-12))
            .collect();
        out.push(self.stop_hz);
        out
    }
}

/// The result of an AC sweep: per-frequency complex node voltages.
#[derive(Clone, Debug)]
pub struct AcSolution {
    frequencies: Vec<f64>,
    /// `node_values[k][node_index]` = phasor of that node at frequency k.
    node_values: Vec<Vec<Complex>>,
}

impl AcSolution {
    /// The swept frequencies, hertz.
    #[must_use]
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// The phasor of `node` across the sweep.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from the analyzed circuit.
    #[must_use]
    pub fn transfer(&self, node: NodeId) -> Vec<Complex> {
        self.node_values
            .iter()
            .map(|values| values[node.index()])
            .collect()
    }

    /// The phasor of `node` at sweep point `k`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn value(&self, k: usize, node: NodeId) -> Complex {
        self.node_values[k][node.index()]
    }

    /// Number of sweep points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Returns `true` if the sweep is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }
}

/// Floor conductance matching the DC engine's regularization.
const GMIN_FLOOR: f64 = 1e-12;

/// Runs a full AC analysis: DC solve, linearization, frequency sweep.
///
/// # Errors
///
/// Propagates DC failures and reports singular admittance matrices.
pub fn solve(
    circuit: &Circuit,
    process: &Process,
    spec: &AcSweepSpec,
) -> Result<AcSolution, SolveAcError> {
    let dc = crate::dc::solve(circuit, process)?;
    solve_at(circuit, process, &dc, spec)
}

/// Runs the frequency sweep against an existing DC solution (useful when
/// the caller also needs the DC data).
///
/// # Errors
///
/// Reports singular admittance matrices.
pub fn solve_at(
    circuit: &Circuit,
    process: &Process,
    dc: &DcSolution,
    spec: &AcSweepSpec,
) -> Result<AcSolution, SolveAcError> {
    solve_at_with(circuit, process, dc, spec, &Telemetry::disabled())
}

/// [`solve_at`] with run telemetry recorded into `tel`: a `sim:ac` span
/// plus the `sim.ac.sweeps` / `sim.ac.points` / `sim.ac.failures`
/// counters.
///
/// # Errors
///
/// Same failure modes as [`solve_at`].
pub fn solve_at_with(
    circuit: &Circuit,
    process: &Process,
    dc: &DcSolution,
    spec: &AcSweepSpec,
    tel: &Telemetry,
) -> Result<AcSolution, SolveAcError> {
    let s = ac_syms();
    let span = tel.span_sym(s.span);
    tel.incr_sym(s.sweeps);
    let result = solve_at_inner(circuit, process, dc, spec);
    if tel.is_enabled() {
        match &result {
            Ok(solution) => {
                tel.add_sym(s.points, solution.frequencies().len() as u64);
                span.annotate_sym(s.points_key, sym_u64(solution.frequencies().len() as u64));
            }
            Err(e) => {
                tel.incr_sym(s.failures);
                span.annotate_sym(s.error, sym_display("", e));
            }
        }
    }
    result
}

fn solve_at_inner(
    circuit: &Circuit,
    process: &Process,
    dc: &DcSolution,
    spec: &AcSweepSpec,
) -> Result<AcSolution, SolveAcError> {
    let system = AcSystem::new(circuit, process, dc);
    let frequencies = spec.frequencies();
    let mut node_values = Vec::with_capacity(frequencies.len());
    for &freq in &frequencies {
        let x = system.solve(freq, system.stimulus())?;
        node_values.push(system.to_node_voltages(&x));
    }
    Ok(AcSolution {
        frequencies,
        node_values,
    })
}

/// The linearized small-signal system of a circuit at its DC operating
/// point: the frequency-independent conductance stamps, the capacitance
/// list, and the source stimulus vector. Lets callers (the AC sweep, the
/// noise analysis) solve the same system against arbitrary right-hand
/// sides.
pub struct AcSystem {
    index: MnaIndex,
    node_count: usize,
    g_matrix: Matrix<Complex>,
    caps: Vec<(Option<usize>, Option<usize>, f64)>,
    stimulus: Vec<Complex>,
}

impl AcSystem {
    /// Linearizes `circuit` at the DC solution `dc`.
    #[must_use]
    pub fn new(circuit: &Circuit, process: &Process, dc: &DcSolution) -> Self {
        let index = MnaIndex::new(circuit);
        let dim = index.dim();

        let mut g_matrix: Matrix<Complex> = Matrix::zeros(dim);
        let mut b = vec![Complex::ZERO; dim];
        let mut caps: Vec<(Option<usize>, Option<usize>, f64)> = Vec::new();

        for node_idx in 0..circuit.node_count() - 1 {
            g_matrix.stamp(node_idx, node_idx, Complex::from_real(GMIN_FLOOR));
        }

        let volt = |node: NodeId| dc.voltage(node);
        let mut vsrc_k = 0usize;
        for element in circuit.elements() {
            match element {
                Element::Resistor(r) => {
                    let g = Complex::from_real(1.0 / r.ohms);
                    two_node_stamp(&mut g_matrix, &index, r.a, r.b, g);
                }
                Element::Capacitor(c) => {
                    caps.push((index.node_var(c.a), index.node_var(c.b), c.farads));
                }
                Element::Isource(src) => {
                    let i_ac = src.value.ac();
                    if i_ac != 0.0 {
                        if let Some(i) = index.node_var(src.pos) {
                            b[i] -= Complex::from_real(i_ac);
                        }
                        if let Some(i) = index.node_var(src.neg) {
                            b[i] += Complex::from_real(i_ac);
                        }
                    }
                }
                Element::Vsource(src) => {
                    let branch = index.branch_var(vsrc_k);
                    vsrc_k += 1;
                    if let Some(i) = index.node_var(src.pos) {
                        g_matrix.stamp(i, branch, Complex::ONE);
                        g_matrix.stamp(branch, i, Complex::ONE);
                    }
                    if let Some(i) = index.node_var(src.neg) {
                        g_matrix.stamp(i, branch, -Complex::ONE);
                        g_matrix.stamp(branch, i, -Complex::ONE);
                    }
                    b[branch] = Complex::from_real(src.value.ac());
                }
                Element::Mos(_) => {
                    // Handled below with the bound device list.
                }
            }
        }

        for (inst, device) in bound_mosfets(circuit, process) {
            let stamp = mos_stamp(
                &device,
                volt(inst.drain),
                volt(inst.gate),
                volt(inst.source),
                volt(inst.bulk),
            );
            let terminals = [
                (inst.drain, stamp.d_dvd),
                (inst.gate, stamp.d_dvg),
                (inst.source, stamp.d_dvs),
                (inst.bulk, stamp.d_dvb),
            ];
            if let Some(i) = index.node_var(inst.drain) {
                for (node, deriv) in terminals {
                    if let Some(j) = index.node_var(node) {
                        g_matrix.stamp(i, j, Complex::from_real(deriv));
                    }
                }
            }
            if let Some(i) = index.node_var(inst.source) {
                for (node, deriv) in terminals {
                    if let Some(j) = index.node_var(node) {
                        g_matrix.stamp(i, j, Complex::from_real(-deriv));
                    }
                }
            }
            // Device capacitances.
            let c = device.capacitances(&stamp.op);
            let pairs = [
                (inst.gate, inst.source, c.cgs().farads()),
                (inst.gate, inst.drain, c.cgd().farads()),
                (inst.gate, inst.bulk, c.cgb().farads()),
                (inst.drain, inst.bulk, c.cdb().farads()),
                (inst.source, inst.bulk, c.csb().farads()),
            ];
            for (a, node_b, farads) in pairs {
                if farads > 0.0 {
                    caps.push((index.node_var(a), index.node_var(node_b), farads));
                }
            }
        }

        Self {
            index,
            node_count: circuit.node_count(),
            g_matrix,
            caps,
            stimulus: b,
        }
    }

    /// The unknown-vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.g_matrix.n()
    }

    /// The MNA index mapping nodes to unknowns.
    #[must_use]
    pub fn index(&self) -> &MnaIndex {
        &self.index
    }

    /// The circuit's own source stimulus (the AC magnitudes of its
    /// voltage and current sources).
    #[must_use]
    pub fn stimulus(&self) -> &[Complex] {
        &self.stimulus
    }

    /// A right-hand side injecting a unit AC current from `from` into
    /// `into` (through the external circuit).
    #[must_use]
    pub fn current_injection(&self, from: NodeId, into: NodeId) -> Vec<Complex> {
        let mut b = vec![Complex::ZERO; self.dim()];
        if let Some(i) = self.index.node_var(from) {
            b[i] -= Complex::ONE;
        }
        if let Some(i) = self.index.node_var(into) {
            b[i] += Complex::ONE;
        }
        b
    }

    /// Solves `Y(f)·x = b` at one frequency.
    ///
    /// # Errors
    ///
    /// Reports a singular admittance matrix.
    pub fn solve(&self, freq: f64, b: &[Complex]) -> Result<Vec<Complex>, SolveAcError> {
        let omega = 2.0 * std::f64::consts::PI * freq;
        let mut y = self.g_matrix.clone();
        for &(ia, ib, farads) in &self.caps {
            let jwc = Complex::new(0.0, omega * farads);
            if let Some(i) = ia {
                y.stamp(i, i, jwc);
                if let Some(j) = ib {
                    y.stamp(i, j, -jwc);
                }
            }
            if let Some(i) = ib {
                y.stamp(i, i, jwc);
                if let Some(j) = ia {
                    y.stamp(i, j, -jwc);
                }
            }
        }
        y.solve(b)
            .map_err(|_| SolveAcError::Singular { frequency: freq })
    }

    /// Expands an unknown vector into per-node voltages (ground at
    /// index 0).
    #[must_use]
    pub fn to_node_voltages(&self, x: &[Complex]) -> Vec<Complex> {
        let mut values = vec![Complex::ZERO; self.node_count];
        values[1..self.node_count].copy_from_slice(&x[..self.node_count - 1]);
        values
    }
}

/// Stamps a two-terminal admittance between nodes `a` and `b`.
fn two_node_stamp(
    matrix: &mut Matrix<Complex>,
    index: &MnaIndex,
    a: NodeId,
    b: NodeId,
    y: Complex,
) {
    let ia = index.node_var(a);
    let ib = index.node_var(b);
    if let Some(i) = ia {
        matrix.stamp(i, i, y);
        if let Some(j) = ib {
            matrix.stamp(i, j, -y);
        }
    }
    if let Some(i) = ib {
        matrix.stamp(i, i, y);
        if let Some(j) = ia {
            matrix.stamp(i, j, -y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_mos::Geometry;
    use oasys_netlist::SourceValue;
    use oasys_process::{builtin, Polarity};

    #[test]
    fn sweep_spec_endpoints() {
        let spec = AcSweepSpec::new(10.0, 1e4, 5).unwrap();
        let f = spec.frequencies();
        assert!((f[0] - 10.0).abs() < 1e-9);
        assert!((f.last().unwrap() - 1e4).abs() < 1e-6);
        // Monotone increasing.
        for pair in f.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn sweep_spec_rejects_bad_bounds() {
        assert!(AcSweepSpec::new(-1.0, 10.0, 5).is_err());
        assert!(AcSweepSpec::new(100.0, 10.0, 5).is_err());
        assert!(AcSweepSpec::new(1.0, 10.0, 0).is_err());
    }

    #[test]
    fn rc_lowpass_pole() {
        // R = 1 kΩ into C = 159.155 pF → f_3dB = 1 MHz.
        let mut c = Circuit::new("rc");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("VIN", inp, c.ground(), SourceValue::new(0.0, 1.0))
            .unwrap();
        c.add_resistor("R1", inp, out, 1e3).unwrap();
        c.add_capacitor("C1", out, c.ground(), 159.1549e-12)
            .unwrap();
        let process = builtin::cmos_5um();
        let spec = AcSweepSpec::new(1e3, 1e9, 20).unwrap();
        let ac = solve(&c, &process, &spec).unwrap();
        let h = ac.transfer(out);
        let f = ac.frequencies();
        // At low frequency |H| ≈ 1.
        assert!((h[0].abs() - 1.0).abs() < 1e-3);
        // Find the point nearest 1 MHz: |H| ≈ 1/√2, phase ≈ −45°.
        let k = f
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - 1e6).abs().partial_cmp(&(b.1 - 1e6).abs()).unwrap())
            .unwrap()
            .0;
        assert!((h[k].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02);
        assert!((h[k].arg().to_degrees() + 45.0).abs() < 2.0);
        // Rolls off at −20 dB/dec far above the pole.
        let hi = h.last().unwrap().abs();
        assert!(hi < 2e-3);
    }

    #[test]
    fn common_source_gain_matches_gm_ro_rl() {
        // NMOS common-source with resistive load: |A| ≈ gm·(RL ∥ ro).
        let mut c = Circuit::new("cs");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let inp = c.node("in");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VIN", inp, c.ground(), SourceValue::new(1.5, 1.0))
            .unwrap();
        c.add_resistor("RL", vdd, out, 100e3).unwrap();
        c.add_mosfet(
            "M1",
            Polarity::Nmos,
            Geometry::new_um(10.0, 5.0).unwrap(),
            out,
            inp,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        let process = builtin::cmos_5um();
        let dc = crate::dc::solve(&c, &process).unwrap();
        let op = *dc.device_op("M1").unwrap();
        let spec = AcSweepSpec::new(1.0, 1e3, 5).unwrap();
        let ac = solve_at(&c, &process, &dc, &spec).unwrap();
        let h0 = ac.transfer(out)[0];
        let expected = op.gm() * (1.0 / (1.0 / 100e3 + op.gds()));
        assert!(
            (h0.abs() / expected - 1.0).abs() < 0.01,
            "|A| = {} expected {expected}",
            h0.abs()
        );
        // Inverting stage: phase ≈ 180°.
        assert!((h0.arg().to_degrees().abs() - 180.0).abs() < 1.0);
    }

    #[test]
    fn vsource_ac_stimulus_is_exact_at_node() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_vsource("VIN", a, c.ground(), SourceValue::new(0.0, 1.0))
            .unwrap();
        c.add_resistor("R", a, c.ground(), 1e3).unwrap();
        let spec = AcSweepSpec::new(1.0, 10.0, 1).unwrap();
        let ac = solve(&c, &builtin::cmos_5um(), &spec).unwrap();
        for v in ac.transfer(a) {
            assert!((v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn solution_accessors() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_vsource("VIN", a, c.ground(), SourceValue::new(0.0, 1.0))
            .unwrap();
        c.add_resistor("R", a, c.ground(), 1e3).unwrap();
        let spec = AcSweepSpec::new(1.0, 100.0, 1).unwrap();
        let ac = solve(&c, &builtin::cmos_5um(), &spec).unwrap();
        assert_eq!(ac.len(), ac.frequencies().len());
        assert!(!ac.is_empty());
        assert_eq!(ac.value(0, a), ac.transfer(a)[0]);
    }
}
