//! Small-signal noise analysis.
//!
//! For each noise generator in the circuit — the channel thermal noise of
//! every saturated MOSFET (`S_id = (8/3)·kT·gm` A²/Hz) and the Johnson
//! noise of every resistor (`S_i = 4kT/R`) — a unit AC current is injected
//! across the element and the transfer to the output node is solved on
//! the shared [`crate::ac::AcSystem`]. The per-generator contributions
//! add in power:
//!
//! ```text
//! S_out(f) = Σ_k  S_k · |H_k(f)|²          (V²/Hz at the output)
//! v_n,in(f) = √S_out(f) / |A(f)|           (input-referred V/√Hz)
//! ```
//!
//! Flicker noise is not modeled (the level-1 era model set has no `KF`);
//! results are thermal-floor densities, which is what the white region of
//! a 1987 datasheet quotes.

use crate::ac::{AcSystem, SolveAcError};
use crate::dc::DcSolution;
use oasys_netlist::{Circuit, Element, NodeId};
use oasys_process::Process;

/// Boltzmann constant times 300 K, joules.
const KT: f64 = 1.380649e-23 * 300.0;

/// One noise generator's contribution at the analysis frequency.
#[derive(Clone, Debug)]
pub struct NoiseContribution {
    /// The element responsible.
    pub element: String,
    /// Its share of the output noise PSD, V²/Hz.
    pub output_psd: f64,
}

/// The result of a noise analysis at one frequency.
#[derive(Clone, Debug)]
pub struct NoiseReport {
    /// Analysis frequency, Hz.
    pub frequency: f64,
    /// Total output noise PSD, V²/Hz.
    pub output_psd: f64,
    /// Input-referred noise density, V/√Hz (output noise over the gain
    /// magnitude from the circuit's own AC stimulus).
    pub input_density: f64,
    /// Per-element breakdown, largest contributor first.
    pub contributions: Vec<NoiseContribution>,
}

impl NoiseReport {
    /// Input-referred density in the datasheet unit nV/√Hz.
    #[must_use]
    pub fn input_nv_per_rthz(&self) -> f64 {
        self.input_density * 1e9
    }

    /// The element contributing the most output noise.
    #[must_use]
    pub fn dominant(&self) -> Option<&NoiseContribution> {
        self.contributions.first()
    }
}

/// Runs a noise analysis at `frequency`, measuring at `output`. The
/// circuit must carry its own AC stimulus (a unit-magnitude source on the
/// input under test) so the input-referred division is meaningful.
///
/// # Errors
///
/// Reports a singular admittance matrix.
pub fn analyze(
    circuit: &Circuit,
    process: &Process,
    dc: &DcSolution,
    output: NodeId,
    frequency: f64,
) -> Result<NoiseReport, SolveAcError> {
    let system = AcSystem::new(circuit, process, dc);

    // Gain from the circuit's own stimulus, for input referral.
    let x = system.solve(frequency, system.stimulus())?;
    let gain = system.to_node_voltages(&x)[output.index()].abs().max(1e-18);

    let mut contributions: Vec<NoiseContribution> = Vec::new();

    // MOSFET channel thermal noise: a current source between drain and
    // source with PSD (8/3)kT·gm.
    for element in circuit.elements() {
        match element {
            Element::Mos(m) => {
                let op = dc
                    .device_op(&m.name)
                    .copied()
                    .unwrap_or_else(|| panic!("device {} has no bias point", m.name));
                let gm_eff = op.gm().max(op.gds());
                if gm_eff <= 0.0 {
                    continue;
                }
                let psd_current = (8.0 / 3.0) * KT * gm_eff;
                let b = system.current_injection(m.drain, m.source);
                let h = system.solve(frequency, &b)?;
                let transfer = system.to_node_voltages(&h)[output.index()].abs();
                contributions.push(NoiseContribution {
                    element: m.name.clone(),
                    output_psd: psd_current * transfer * transfer,
                });
            }
            Element::Resistor(r) => {
                let psd_current = 4.0 * KT / r.ohms;
                let b = system.current_injection(r.a, r.b);
                let h = system.solve(frequency, &b)?;
                let transfer = system.to_node_voltages(&h)[output.index()].abs();
                contributions.push(NoiseContribution {
                    element: r.name.clone(),
                    output_psd: psd_current * transfer * transfer,
                });
            }
            _ => {}
        }
    }

    contributions.sort_by(|a, b| b.output_psd.total_cmp(&a.output_psd));
    let output_psd: f64 = contributions.iter().map(|c| c.output_psd).sum();

    Ok(NoiseReport {
        frequency,
        output_psd,
        input_density: output_psd.sqrt() / gain,
        contributions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_netlist::SourceValue;
    use oasys_process::builtin;

    /// A bare resistor divider: output noise equals the Johnson noise of
    /// the parallel combination, 4kT·(R1∥R2).
    #[test]
    fn resistor_divider_johnson_noise() {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("VIN", a, c.ground(), SourceValue::new(0.0, 1.0))
            .unwrap();
        c.add_resistor("R1", a, b, 10e3).unwrap();
        c.add_resistor("R2", b, c.ground(), 10e3).unwrap();

        let process = builtin::cmos_5um();
        let dc = crate::dc::solve(&c, &process).unwrap();
        let report = analyze(&c, &process, &dc, b, 1e3).unwrap();

        let r_par = 5e3;
        let expected = 4.0 * KT * r_par;
        assert!(
            (report.output_psd / expected - 1.0).abs() < 1e-6,
            "measured {:.3e}, expected {:.3e}",
            report.output_psd,
            expected
        );
        // √(4kT·5k) ≈ 9.1 nV/√Hz; the divider gain is 0.5 so the
        // input-referred density doubles.
        assert!((report.input_nv_per_rthz() / 18.2 - 1.0).abs() < 0.02);
    }

    /// A common-source stage: the input device's channel noise dominates
    /// and the input-referred density is √(8kT/(3gm)) plus the load
    /// contribution.
    #[test]
    fn common_source_channel_noise() {
        use oasys_mos::Geometry;
        use oasys_process::Polarity;
        let mut c = Circuit::new("cs");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let inp = c.node("in");
        let gnd = c.ground();
        c.add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VIN", inp, gnd, SourceValue::new(1.5, 1.0))
            .unwrap();
        c.add_resistor("RL", vdd, out, 100e3).unwrap();
        c.add_mosfet(
            "M1",
            Polarity::Nmos,
            Geometry::new_um(50.0, 5.0).unwrap(),
            out,
            inp,
            gnd,
            gnd,
        )
        .unwrap();

        let process = builtin::cmos_5um();
        let dc = crate::dc::solve(&c, &process).unwrap();
        let op = *dc.device_op("M1").unwrap();
        let report = analyze(&c, &process, &dc, out, 1e3).unwrap();

        // Input-referred: channel noise 8kT/(3gm) plus the load resistor
        // 4kT·RL referred through the gain (gm·RL)².
        let gm = op.gm();
        let rl_referred = 4.0 * KT * 100e3 / (gm * gm * 100e3 * 100e3);
        let expected = (8.0 * KT / (3.0 * gm) + rl_referred).sqrt();
        assert!(
            (report.input_density / expected - 1.0).abs() < 0.05,
            "measured {:.3e}, expected {:.3e}",
            report.input_density,
            expected
        );
        // The transistor dominates at this gm.
        assert_eq!(report.dominant().unwrap().element, "M1");
    }

    /// Noise falls with frequency past the circuit's pole (the output
    /// capacitor shunts it), so the output PSD at high frequency is lower.
    #[test]
    fn output_noise_rolls_off() {
        let mut c = Circuit::new("rc");
        let a = c.node("a");
        c.add_vsource("VIN", a, c.ground(), SourceValue::new(0.0, 1.0))
            .unwrap();
        let b = c.node("b");
        c.add_resistor("R1", a, b, 100e3).unwrap();
        c.add_capacitor("C1", b, c.ground(), 1e-9).unwrap();

        let process = builtin::cmos_5um();
        let dc = crate::dc::solve(&c, &process).unwrap();
        let low = analyze(&c, &process, &dc, b, 10.0).unwrap();
        let high = analyze(&c, &process, &dc, b, 1e6).unwrap();
        assert!(high.output_psd < low.output_psd / 100.0);
    }

    #[test]
    fn contributions_are_sorted_and_sum() {
        let mut c = Circuit::new("two r");
        let a = c.node("a");
        c.add_vsource("VIN", a, c.ground(), SourceValue::new(0.0, 1.0))
            .unwrap();
        let b = c.node("b");
        c.add_resistor("RBIG", a, b, 1e6).unwrap();
        c.add_resistor("RSMALL", b, c.ground(), 1e3).unwrap();
        let process = builtin::cmos_5um();
        let dc = crate::dc::solve(&c, &process).unwrap();
        let report = analyze(&c, &process, &dc, b, 1e3).unwrap();
        let sum: f64 = report.contributions.iter().map(|c| c.output_psd).sum();
        assert!((sum / report.output_psd - 1.0).abs() < 1e-12);
        for pair in report.contributions.windows(2) {
            assert!(pair[0].output_psd >= pair[1].output_psd);
        }
    }
}
