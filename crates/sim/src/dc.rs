//! Newton–Raphson DC operating-point analysis.
//!
//! The solver assembles the exact MNA Jacobian from [`crate::mna::mos_stamp`]
//! and iterates with per-component step damping. If plain Newton from a
//! zero start fails, it falls back to `gmin` stepping and then source
//! stepping — the same continuation tricks production SPICE uses — so the
//! op-amp circuits OASYS synthesizes converge reliably.

use crate::linalg::Matrix;
use crate::mna::{bound_mosfets, mos_stamp, MnaIndex};
use oasys_faults::{fail_point, Deadline, DeadlineExceeded};
use oasys_mos::OperatingPoint;
use oasys_netlist::{Circuit, Element, NodeId};
use oasys_process::Process;
use oasys_telemetry::{sym, sym_display, sym_u64, Sym, Telemetry};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Pre-interned symbols for the DC solver's span and counter names, so
/// the per-solve telemetry path never hashes a string.
struct DcSyms {
    span: Sym,
    solves: Sym,
    newton: Sym,
    failures: Sym,
    iterations: Sym,
    error: Sym,
}

fn dc_syms() -> &'static DcSyms {
    static SYMS: std::sync::OnceLock<DcSyms> = std::sync::OnceLock::new();
    SYMS.get_or_init(|| DcSyms {
        span: sym("sim:dc"),
        solves: sym("sim.dc.solves"),
        newton: sym("sim.dc.newton_iterations"),
        failures: sym("sim.dc.failures"),
        iterations: sym("iterations"),
        error: sym("error"),
    })
}

/// Error returned when DC analysis fails. Every variant that comes out
/// of a solve names the circuit it failed on, so the message survives
/// verbatim through batch records and `--explain`.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveDcError {
    /// The circuit failed structural validation first.
    Invalid(String),
    /// No continuation strategy converged.
    NotConverged {
        /// Title of the circuit that failed to converge.
        circuit: String,
        /// Residual norm of the best attempt.
        residual: f64,
    },
    /// The Jacobian was singular even with `gmin` regularization.
    Singular {
        /// Title of the circuit with the singular Jacobian.
        circuit: String,
    },
    /// The cooperative deadline fired inside the solve.
    DeadlineExceeded {
        /// Title of the circuit being solved when the deadline fired.
        circuit: String,
        /// Whether the budget ran out or the job was cancelled.
        exceeded: DeadlineExceeded,
    },
}

impl fmt::Display for SolveDcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveDcError::Invalid(detail) => write!(f, "invalid circuit: {detail}"),
            SolveDcError::NotConverged { circuit, residual } => {
                write!(
                    f,
                    "dc analysis of `{circuit}` did not converge (residual {residual:.3e} A)"
                )
            }
            SolveDcError::Singular { circuit } => {
                write!(f, "dc jacobian of `{circuit}` is singular")
            }
            SolveDcError::DeadlineExceeded { circuit, exceeded } => {
                write!(f, "dc analysis of `{circuit}` stopped: {exceeded}")
            }
        }
    }
}

impl Error for SolveDcError {}

/// A converged DC operating point.
///
/// # Examples
///
/// See the crate-level example; key accessors are
/// [`DcSolution::voltage`], [`DcSolution::source_current`],
/// [`DcSolution::device_op`] and [`DcSolution::supply_power`].
#[derive(Clone, Debug)]
pub struct DcSolution {
    node_voltages: Vec<f64>,
    branch_currents: HashMap<String, f64>,
    device_ops: HashMap<String, OperatingPoint>,
    iterations: usize,
}

impl DcSolution {
    /// Voltage of a node, volts (ground reads 0).
    ///
    /// # Panics
    ///
    /// Panics if `node` did not come from the analyzed circuit.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.index()]
    }

    /// All node voltages indexed by [`NodeId::index`].
    #[must_use]
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_voltages
    }

    /// Branch current of a voltage source (positive flowing from the `pos`
    /// terminal through the source to `neg`), amperes.
    #[must_use]
    pub fn source_current(&self, name: &str) -> Option<f64> {
        self.branch_currents.get(name).copied()
    }

    /// Bias point of a MOSFET by instance name.
    #[must_use]
    pub fn device_op(&self, name: &str) -> Option<&OperatingPoint> {
        self.device_ops.get(name)
    }

    /// All device bias points.
    #[must_use]
    pub fn device_ops(&self) -> &HashMap<String, OperatingPoint> {
        &self.device_ops
    }

    /// Newton iterations the successful strategy used.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total power delivered by all sources, watts. For a circuit whose
    /// only stimuli are its supplies this equals the dissipated power.
    #[must_use]
    pub fn supply_power(&self, circuit: &Circuit) -> f64 {
        let mut power = 0.0;
        for v in circuit.vsources() {
            if let Some(i) = self.source_current(&v.name) {
                // Source delivers P = V·(−i) with i defined pos→neg
                // through the source.
                power += v.value.dc_value() * (-i);
            }
        }
        for i in circuit.isources() {
            let v = self.voltage(i.pos) - self.voltage(i.neg);
            // Current i flows pos→neg through the source: it delivers
            // −v·I into the external circuit.
            power += -v * i.value.dc_value();
        }
        power
    }
}

/// Floor conductance from every node to ground, for regularization.
const GMIN_FLOOR: f64 = 1e-12;
/// Newton iteration cap per continuation stage.
const MAX_ITERS: usize = 300;
/// Per-component Newton step clamp, volts.
const MAX_STEP: f64 = 0.5;
/// Voltage convergence tolerance.
const VTOL: f64 = 1e-9;
/// Residual (current) convergence tolerance.
const ITOL: f64 = 1e-10;

/// Computes the DC operating point of `circuit` under `process`.
///
/// # Errors
///
/// Returns [`SolveDcError::Invalid`] for structurally broken circuits and
/// [`SolveDcError::NotConverged`]/[`SolveDcError::Singular`] if every
/// continuation strategy fails.
pub fn solve(circuit: &Circuit, process: &Process) -> Result<DcSolution, SolveDcError> {
    solve_inner(circuit, process, &Deadline::none())
}

/// [`solve`] with run telemetry recorded into `tel`: a `sim:dc` span plus
/// the `sim.dc.solves` / `sim.dc.newton_iterations` / `sim.dc.failures`
/// counters.
///
/// # Errors
///
/// Same failure modes as [`solve`].
pub fn solve_with(
    circuit: &Circuit,
    process: &Process,
    tel: &Telemetry,
) -> Result<DcSolution, SolveDcError> {
    solve_with_deadline(circuit, process, tel, &Deadline::none())
}

/// [`solve_with`] under a cooperative [`Deadline`], checked at every
/// Newton iteration and continuation stage — a diverging operating
/// point aborts with [`SolveDcError::DeadlineExceeded`] instead of
/// burning the whole iteration budget.
///
/// # Errors
///
/// Same failure modes as [`solve`], plus
/// [`SolveDcError::DeadlineExceeded`].
pub fn solve_with_deadline(
    circuit: &Circuit,
    process: &Process,
    tel: &Telemetry,
    deadline: &Deadline,
) -> Result<DcSolution, SolveDcError> {
    let s = dc_syms();
    let span = tel.span_sym(s.span);
    tel.incr_sym(s.solves);
    let result = solve_inner(circuit, process, deadline);
    if tel.is_enabled() {
        match &result {
            Ok(solution) => {
                let iters = solution.iterations() as u64;
                tel.add_sym(s.newton, iters);
                tel.observe_sym(s.newton, iters);
                span.annotate_sym(s.iterations, sym_u64(solution.iterations() as u64));
            }
            Err(e) => {
                tel.incr_sym(s.failures);
                span.annotate_sym(s.error, sym_display("", e));
            }
        }
    }
    result
}

fn solve_inner(
    circuit: &Circuit,
    process: &Process,
    deadline: &Deadline,
) -> Result<DcSolution, SolveDcError> {
    fail_point!("sim.dc.solve", |msg: String| SolveDcError::Invalid(msg));
    circuit
        .validate()
        .map_err(|e| SolveDcError::Invalid(e.to_string()))?;

    let deadline_err = |exceeded: DeadlineExceeded| SolveDcError::DeadlineExceeded {
        circuit: circuit.title().to_owned(),
        exceeded,
    };
    let index = MnaIndex::new(circuit);
    let dim = index.dim();
    let mut best_residual = f64::INFINITY;

    // Strategy 1: plain Newton from zero.
    let x0 = vec![0.0; dim];
    match newton(
        circuit,
        process,
        &index,
        GMIN_FLOOR,
        1.0,
        x0.clone(),
        deadline,
    ) {
        Ok((x, iters)) => return Ok(package(circuit, process, &index, x, iters)),
        Err(StageFailure::Deadline(exceeded)) => return Err(deadline_err(exceeded)),
        Err(StageFailure::Stuck { residual, .. }) => best_residual = best_residual.min(residual),
    }

    // Strategy 2: gmin stepping.
    let mut x = x0.clone();
    let mut gmin = 1e-3;
    let mut ok = true;
    let mut total_iters = 0;
    while gmin >= GMIN_FLOOR {
        match newton(circuit, process, &index, gmin, 1.0, x.clone(), deadline) {
            Ok((next, iters)) => {
                x = next;
                total_iters += iters;
            }
            Err(StageFailure::Deadline(exceeded)) => return Err(deadline_err(exceeded)),
            Err(StageFailure::Stuck { residual, .. }) => {
                best_residual = best_residual.min(residual);
                ok = false;
                break;
            }
        }
        if gmin <= GMIN_FLOOR {
            break;
        }
        gmin = (gmin / 100.0).max(GMIN_FLOOR);
    }
    if ok {
        return Ok(package(circuit, process, &index, x, total_iters));
    }

    // Strategy 3: source stepping.
    let mut x = x0;
    let mut total_iters = 0;
    let mut ok = true;
    for step in 1..=10 {
        let scale = f64::from(step) / 10.0;
        match newton(
            circuit,
            process,
            &index,
            GMIN_FLOOR,
            scale,
            x.clone(),
            deadline,
        ) {
            Ok((next, iters)) => {
                x = next;
                total_iters += iters;
            }
            Err(StageFailure::Deadline(exceeded)) => return Err(deadline_err(exceeded)),
            Err(StageFailure::Stuck { residual, singular }) => {
                best_residual = best_residual.min(residual);
                if singular {
                    return Err(SolveDcError::Singular {
                        circuit: circuit.title().to_owned(),
                    });
                }
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Ok(package(circuit, process, &index, x, total_iters));
    }

    Err(SolveDcError::NotConverged {
        circuit: circuit.title().to_owned(),
        residual: best_residual,
    })
}

enum StageFailure {
    /// The stage stalled: best residual reached, and whether the
    /// Jacobian went singular.
    Stuck { residual: f64, singular: bool },
    /// The cooperative deadline fired mid-stage.
    Deadline(DeadlineExceeded),
}

/// One Newton continuation stage. Returns the solution and iteration
/// count, or the best residual reached.
#[allow(clippy::too_many_arguments)]
fn newton(
    circuit: &Circuit,
    process: &Process,
    index: &MnaIndex,
    gmin: f64,
    source_scale: f64,
    mut x: Vec<f64>,
    deadline: &Deadline,
) -> Result<(Vec<f64>, usize), StageFailure> {
    let dim = index.dim();
    let mut jac: Matrix<f64> = Matrix::zeros(dim);
    let mut residual = vec![0.0; dim];
    let mut best_residual = f64::INFINITY;

    for iter in 0..MAX_ITERS {
        fail_point!("sim.dc.newton");
        if let Err(exceeded) = deadline.check() {
            return Err(StageFailure::Deadline(exceeded));
        }
        jac.clear();
        residual.fill(0.0);
        assemble(
            circuit,
            process,
            index,
            gmin,
            source_scale,
            &x,
            &mut jac,
            &mut residual,
        );

        let res_norm = residual.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        best_residual = best_residual.min(res_norm);

        // Solve J·δ = −f.
        let neg_f: Vec<f64> = residual.iter().map(|r| -r).collect();
        let delta = match jac.solve(&neg_f) {
            Ok(d) => d,
            Err(_) => {
                return Err(StageFailure::Stuck {
                    residual: best_residual,
                    singular: true,
                })
            }
        };

        // Damped update.
        let max_delta = delta.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let damp = if max_delta > MAX_STEP {
            MAX_STEP / max_delta
        } else {
            1.0
        };
        for (xi, di) in x.iter_mut().zip(&delta) {
            *xi += damp * di;
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(StageFailure::Stuck {
                residual: best_residual,
                singular: false,
            });
        }

        if damp == 1.0 && max_delta < VTOL && res_norm < ITOL {
            return Ok((x, iter + 1));
        }
    }

    Err(StageFailure::Stuck {
        residual: best_residual,
        singular: false,
    })
}

/// Assembles the Jacobian and residual at the point `x`.
#[allow(clippy::too_many_arguments)]
fn assemble(
    circuit: &Circuit,
    process: &Process,
    index: &MnaIndex,
    gmin: f64,
    source_scale: f64,
    x: &[f64],
    jac: &mut Matrix<f64>,
    residual: &mut [f64],
) {
    let volt = |node: NodeId| index.node_var(node).map_or(0.0, |i| x[i]);

    // gmin from every node to ground.
    for node_idx in 0..circuit.node_count() - 1 {
        jac.stamp(node_idx, node_idx, gmin);
        residual[node_idx] += gmin * x[node_idx];
    }

    let mut vsrc_k = 0usize;
    for element in circuit.elements() {
        match element {
            Element::Resistor(r) => {
                let g = 1.0 / r.ohms;
                let (va, vb) = (volt(r.a), volt(r.b));
                let ia = index.node_var(r.a);
                let ib = index.node_var(r.b);
                if let Some(i) = ia {
                    residual[i] += g * (va - vb);
                    jac.stamp(i, i, g);
                    if let Some(j) = ib {
                        jac.stamp(i, j, -g);
                    }
                }
                if let Some(i) = ib {
                    residual[i] += g * (vb - va);
                    jac.stamp(i, i, g);
                    if let Some(j) = ia {
                        jac.stamp(i, j, -g);
                    }
                }
            }
            Element::Capacitor(_) => {
                // Open at DC.
            }
            Element::Isource(src) => {
                let i0 = src.value.dc_value() * source_scale;
                if let Some(i) = index.node_var(src.pos) {
                    residual[i] += i0;
                }
                if let Some(i) = index.node_var(src.neg) {
                    residual[i] -= i0;
                }
            }
            Element::Vsource(src) => {
                let branch = index.branch_var(vsrc_k);
                vsrc_k += 1;
                let i_branch = x[branch];
                if let Some(i) = index.node_var(src.pos) {
                    residual[i] += i_branch;
                    jac.stamp(i, branch, 1.0);
                }
                if let Some(i) = index.node_var(src.neg) {
                    residual[i] -= i_branch;
                    jac.stamp(i, branch, -1.0);
                }
                // Branch equation: v_pos − v_neg − V = 0.
                residual[branch] =
                    volt(src.pos) - volt(src.neg) - src.value.dc_value() * source_scale;
                if let Some(i) = index.node_var(src.pos) {
                    jac.stamp(branch, i, 1.0);
                }
                if let Some(i) = index.node_var(src.neg) {
                    jac.stamp(branch, i, -1.0);
                }
            }
            Element::Mos(m) => {
                let device = crate::mismatch::bind(m, process);
                let stamp = mos_stamp(
                    &device,
                    volt(m.drain),
                    volt(m.gate),
                    volt(m.source),
                    volt(m.bulk),
                );
                let terminals = [
                    (m.drain, stamp.d_dvd),
                    (m.gate, stamp.d_dvg),
                    (m.source, stamp.d_dvs),
                    (m.bulk, stamp.d_dvb),
                ];
                if let Some(i) = index.node_var(m.drain) {
                    residual[i] += stamp.id;
                    for (node, deriv) in terminals {
                        if let Some(j) = index.node_var(node) {
                            jac.stamp(i, j, deriv);
                        }
                    }
                }
                if let Some(i) = index.node_var(m.source) {
                    residual[i] -= stamp.id;
                    for (node, deriv) in terminals {
                        if let Some(j) = index.node_var(node) {
                            jac.stamp(i, j, -deriv);
                        }
                    }
                }
            }
        }
    }
}

/// Wraps a converged unknown vector into a [`DcSolution`].
fn package(
    circuit: &Circuit,
    process: &Process,
    index: &MnaIndex,
    x: Vec<f64>,
    iterations: usize,
) -> DcSolution {
    let mut node_voltages = vec![0.0; circuit.node_count()];
    node_voltages[1..circuit.node_count()].copy_from_slice(&x[..circuit.node_count() - 1]);

    let mut branch_currents = HashMap::new();
    for k in 0..index.vsource_count() {
        branch_currents.insert(index.vsource_name(k).to_owned(), x[index.branch_var(k)]);
    }

    let volt = |node: NodeId| node_voltages[node.index()];
    let mut device_ops = HashMap::new();
    for (inst, device) in bound_mosfets(circuit, process) {
        let op = device.operating_point(
            volt(inst.gate) - volt(inst.source),
            volt(inst.drain) - volt(inst.source),
            volt(inst.source) - volt(inst.bulk),
        );
        device_ops.insert(inst.name.clone(), op);
    }

    DcSolution {
        node_voltages,
        branch_currents,
        device_ops,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_mos::Geometry;
    use oasys_netlist::SourceValue;
    use oasys_process::{builtin, Polarity};

    fn process() -> Process {
        builtin::cmos_5um()
    }

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new("div");
        let top = c.node("top");
        let mid = c.node("mid");
        c.add_vsource("V1", top, c.ground(), SourceValue::dc(10.0))
            .unwrap();
        c.add_resistor("R1", top, mid, 3e3).unwrap();
        c.add_resistor("R2", mid, c.ground(), 1e3).unwrap();
        let sol = solve(&c, &process()).unwrap();
        assert!((sol.voltage(mid) - 2.5).abs() < 1e-6);
        // Source current: 10 V across 4 kΩ = 2.5 mA flowing out of the
        // source's positive terminal into the circuit, so the branch
        // current (pos→neg through the source) is −2.5 mA.
        assert!((sol.source_current("V1").unwrap() + 2.5e-3).abs() < 1e-8);
        // Power delivered = 25 mW.
        assert!((sol.supply_power(&c) - 25e-3).abs() < 1e-7);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new("ir");
        let n = c.node("n");
        // 1 mA pulled from ground into node n (pos=gnd, neg=n means
        // current flows gnd→n through the source, i.e. into n).
        c.add_isource("I1", c.ground(), n, SourceValue::dc(1e-3))
            .unwrap();
        c.add_resistor("R1", n, c.ground(), 2e3).unwrap();
        let sol = solve(&c, &process()).unwrap();
        assert!((sol.voltage(n) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_bias() {
        // IB from VDD into a diode-connected NMOS: solves VGS such that
        // Id = IB.
        let mut c = Circuit::new("diode");
        let vdd = c.node("vdd");
        let g = c.node("gate");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_isource("IB", vdd, g, SourceValue::dc(20e-6)).unwrap();
        c.add_mosfet(
            "M1",
            Polarity::Nmos,
            Geometry::new_um(50.0, 5.0).unwrap(),
            g,
            g,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        let sol = solve(&c, &process()).unwrap();
        let vgs = sol.voltage(g);
        // Square law: 20µ = ½·25µ·10·Vov² → Vov ≈ 0.4 → VGS ≈ 1.4.
        assert!((vgs - 1.4).abs() < 0.05, "vgs = {vgs}");
        let op = sol.device_op("M1").unwrap();
        assert!(op.region().is_saturation());
        assert!((op.id() - 20e-6).abs() < 1e-7);
    }

    #[test]
    fn nmos_common_source_amplifier_bias() {
        let mut c = Circuit::new("cs");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let inp = c.node("in");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VIN", inp, c.ground(), SourceValue::new(1.5, 1.0))
            .unwrap();
        c.add_resistor("RL", vdd, out, 100e3).unwrap();
        c.add_mosfet(
            "M1",
            Polarity::Nmos,
            Geometry::new_um(10.0, 5.0).unwrap(),
            out,
            inp,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        let sol = solve(&c, &process()).unwrap();
        let vout = sol.voltage(out);
        // Id ≈ ½·25µ·2·0.25 = 6.25µ (before λ), drop ≈ 0.64 V.
        assert!(vout > 3.5 && vout < 4.8, "vout = {vout}");
        let op = sol.device_op("M1").unwrap();
        assert!(op.region().is_saturation());
    }

    #[test]
    fn cmos_inverter_midpoint() {
        // Both gates at mid-supply with matched strengths: output settles
        // between the rails.
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let inp = c.node("in");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VIN", inp, c.ground(), SourceValue::dc(2.5))
            .unwrap();
        c.add_mosfet(
            "MN",
            Polarity::Nmos,
            Geometry::new_um(10.0, 5.0).unwrap(),
            out,
            inp,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        c.add_mosfet(
            "MP",
            Polarity::Pmos,
            Geometry::new_um(25.0, 5.0).unwrap(),
            out,
            inp,
            vdd,
            vdd,
        )
        .unwrap();
        let sol = solve(&c, &process()).unwrap();
        let vout = sol.voltage(out);
        assert!(vout > 0.5 && vout < 4.5, "vout = {vout}");
    }

    #[test]
    fn invalid_circuit_reported() {
        let c = Circuit::new("empty");
        let err = solve(&c, &process()).unwrap_err();
        assert!(matches!(err, SolveDcError::Invalid(_)));
    }

    #[test]
    fn floating_gate_regularized_by_gmin() {
        // A capacitively-coupled gate has no DC path; gmin must keep the
        // matrix nonsingular and pull it to ground.
        let mut c = Circuit::new("floatgate");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let gate = c.node("gate");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_capacitor("CG", gate, c.ground(), 1e-12).unwrap();
        c.add_capacitor("CG2", gate, vdd, 1e-12).unwrap();
        c.add_resistor("RL", vdd, out, 100e3).unwrap();
        c.add_mosfet(
            "M1",
            Polarity::Nmos,
            Geometry::new_um(10.0, 5.0).unwrap(),
            out,
            gate,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        let sol = solve(&c, &process()).unwrap();
        assert!(sol.voltage(gate).abs() < 1e-3);
        // Gate at 0 → device off → no drop across RL.
        assert!((sol.voltage(out) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn iterations_reported() {
        let mut c = Circuit::new("r");
        let a = c.node("a");
        c.add_vsource("V", a, c.ground(), SourceValue::dc(1.0))
            .unwrap();
        c.add_resistor("R", a, c.ground(), 1e3).unwrap();
        let sol = solve(&c, &process()).unwrap();
        assert!(sol.iterations() >= 1);
    }
}
