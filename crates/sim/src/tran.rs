//! Transient analysis: fixed-step backward Euler with per-step Newton.
//!
//! Adds the time axis the slew-rate measurement needs. Capacitors (both
//! explicit elements and the MOSFET Meyer capacitances, the latter frozen
//! at their `t = 0` operating-point values) become backward-Euler
//! companion models: a conductance `C/h` in parallel with a history
//! current source. Every step solves the full nonlinear system by Newton,
//! warm-started from the previous step, so large-signal behaviour (the
//! slewing of an op amp) is captured exactly as the level-1 model allows.
//!
//! Time-varying stimuli are supplied per source name through [`Stimuli`];
//! sources without an override hold their DC value.

use crate::dc::{self, DcSolution, SolveDcError};
use crate::linalg::Matrix;
use crate::mna::{bound_mosfets, mos_stamp, MnaIndex};
use oasys_netlist::{Circuit, Element, NodeId};
use oasys_process::Process;
use oasys_telemetry::{sym, sym_display, sym_u64, Sym, Telemetry};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Pre-interned symbols for the transient solver's span and counter
/// names.
struct TranSyms {
    span: Sym,
    runs: Sym,
    steps: Sym,
    failures: Sym,
    steps_key: Sym,
    error: Sym,
}

fn tran_syms() -> &'static TranSyms {
    static SYMS: std::sync::OnceLock<TranSyms> = std::sync::OnceLock::new();
    SYMS.get_or_init(|| TranSyms {
        span: sym("sim:tran"),
        runs: sym("sim.tran.runs"),
        steps: sym("sim.tran.steps"),
        failures: sym("sim.tran.failures"),
        steps_key: sym("steps"),
        error: sym("error"),
    })
}

/// Error returned by transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveTranError {
    /// The initial operating point failed.
    InitialDc(SolveDcError),
    /// Newton failed to converge at a timestep.
    StepNotConverged {
        /// Simulation time of the failing step, seconds.
        time: f64,
    },
    /// The timestep specification was invalid.
    BadSpec(String),
}

impl fmt::Display for SolveTranError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveTranError::InitialDc(e) => write!(f, "transient initial point: {e}"),
            SolveTranError::StepNotConverged { time } => {
                write!(f, "transient step at t = {time:.3e} s did not converge")
            }
            SolveTranError::BadSpec(detail) => write!(f, "bad transient spec: {detail}"),
        }
    }
}

impl Error for SolveTranError {}

impl From<SolveDcError> for SolveTranError {
    fn from(e: SolveDcError) -> Self {
        SolveTranError::InitialDc(e)
    }
}

/// Timestep specification for a transient run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TranSpec {
    /// Total simulated time, seconds.
    pub t_stop: f64,
    /// Fixed timestep, seconds.
    pub dt: f64,
}

impl TranSpec {
    /// Creates a spec, validating the time parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SolveTranError::BadSpec`] for non-positive times or runs
    /// longer than 10 million steps.
    pub fn new(t_stop: f64, dt: f64) -> Result<Self, SolveTranError> {
        if !(t_stop > 0.0 && dt > 0.0 && t_stop.is_finite() && dt.is_finite()) {
            return Err(SolveTranError::BadSpec(format!(
                "need positive finite times, got t_stop = {t_stop}, dt = {dt}"
            )));
        }
        if t_stop / dt > 1e7 {
            return Err(SolveTranError::BadSpec(format!(
                "{:.0} steps is beyond the fixed-step engine's budget",
                t_stop / dt
            )));
        }
        Ok(Self { t_stop, dt })
    }
}

/// Per-source time-varying stimuli.
///
/// # Examples
///
/// ```
/// use oasys_sim::tran::Stimuli;
/// let mut stimuli = Stimuli::new();
/// stimuli.step("VIN", 0.0, 1.0, 1e-6);
/// assert_eq!(stimuli.value_at("VIN", 0.5e-6), Some(0.0));
/// assert_eq!(stimuli.value_at("VIN", 2e-6), Some(1.0));
/// assert_eq!(stimuli.value_at("VOTHER", 0.0), None);
/// ```
#[derive(Default)]
pub struct Stimuli {
    overrides: HashMap<String, Box<dyn Fn(f64) -> f64 + Send + Sync>>,
}

impl Stimuli {
    /// No overrides: every source holds its DC value.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides a source with an arbitrary waveform.
    pub fn waveform(
        &mut self,
        source: impl Into<String>,
        f: impl Fn(f64) -> f64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.overrides.insert(source.into(), Box::new(f));
        self
    }

    /// Overrides a source with an ideal step from `v0` to `v1` at
    /// `t_step`.
    pub fn step(&mut self, source: impl Into<String>, v0: f64, v1: f64, t_step: f64) -> &mut Self {
        self.waveform(source, move |t| if t < t_step { v0 } else { v1 })
    }

    /// The override value for `source` at time `t`, if one exists.
    #[must_use]
    pub fn value_at(&self, source: &str, t: f64) -> Option<f64> {
        self.overrides.get(source).map(|f| f(t))
    }
}

/// The result of a transient run.
#[derive(Clone, Debug)]
pub struct TranSolution {
    times: Vec<f64>,
    /// `voltages[k][node_index]`.
    voltages: Vec<Vec<f64>>,
}

impl TranSolution {
    /// The time axis, seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The waveform of one node across the run.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from the analyzed circuit.
    #[must_use]
    pub fn waveform(&self, node: NodeId) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node.index()]).collect()
    }

    /// Number of stored time points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Maximum `|dv/dt|` of a node's waveform, V/s — the raw slew
    /// measurement.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from the analyzed circuit.
    #[must_use]
    pub fn max_slope(&self, node: NodeId) -> f64 {
        let w = self.waveform(node);
        w.windows(2)
            .zip(self.times.windows(2))
            .map(|(v, t)| ((v[1] - v[0]) / (t[1] - t[0])).abs())
            .fold(0.0, f64::max)
    }

    /// 10%–90% average slope of a transition from `v_from` to `v_to`
    /// observed on `node`, V/s — the datasheet slew-rate definition.
    /// Returns `None` if the waveform never crosses both thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from the analyzed circuit.
    #[must_use]
    pub fn slew_10_90(&self, node: NodeId, v_from: f64, v_to: f64) -> Option<f64> {
        self.slew_between(node, v_from, v_to, 0.1, 0.9)
    }

    /// Average slope between two fractional crossings of a transition —
    /// e.g. 15% to 65%, the window that stays inside the slew-limited
    /// portion of an op-amp step response (the 10–90 window includes the
    /// final linear settling and understates the slew rate).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from the analyzed circuit or the fractions
    /// are not ordered in `(0, 1)`.
    #[must_use]
    pub fn slew_between(
        &self,
        node: NodeId,
        v_from: f64,
        v_to: f64,
        frac_a: f64,
        frac_b: f64,
    ) -> Option<f64> {
        assert!(0.0 < frac_a && frac_a < frac_b && frac_b < 1.0);
        let w = self.waveform(node);
        let v10 = v_from + frac_a * (v_to - v_from);
        let v90 = v_from + frac_b * (v_to - v_from);
        let rising = v_to > v_from;
        let crossed = |v: f64, threshold: f64| {
            if rising {
                v >= threshold
            } else {
                v <= threshold
            }
        };
        let t10 = self
            .times
            .iter()
            .zip(&w)
            .find(|&(_, &v)| crossed(v, v10))
            .map(|(&t, _)| t)?;
        let t90 = self
            .times
            .iter()
            .zip(&w)
            .find(|&(_, &v)| crossed(v, v90))
            .map(|(&t, _)| t)?;
        if t90 <= t10 {
            return None;
        }
        Some((v90 - v10).abs() / (t90 - t10))
    }
}

const MAX_NEWTON: usize = 100;
const GMIN: f64 = 1e-12;
const VTOL: f64 = 1e-7;
const MAX_STEP_V: f64 = 1.0;

/// Runs a transient analysis.
///
/// The initial condition is the DC operating point with every stimulus
/// evaluated at `t = 0`. Device capacitances are frozen at that operating
/// point (a documented approximation — the explicit load and compensation
/// capacitors dominate slewing behaviour).
///
/// # Errors
///
/// Returns [`SolveTranError`] if the initial DC point fails or any step's
/// Newton iteration does not converge.
pub fn solve(
    circuit: &Circuit,
    process: &Process,
    spec: &TranSpec,
    stimuli: &Stimuli,
) -> Result<TranSolution, SolveTranError> {
    solve_with(circuit, process, spec, stimuli, &Telemetry::disabled())
}

/// [`solve`] with run telemetry recorded into `tel`: a `sim:tran` span
/// plus the `sim.tran.runs` / `sim.tran.steps` / `sim.tran.failures`
/// counters.
///
/// # Errors
///
/// Same failure modes as [`solve`].
pub fn solve_with(
    circuit: &Circuit,
    process: &Process,
    spec: &TranSpec,
    stimuli: &Stimuli,
    tel: &Telemetry,
) -> Result<TranSolution, SolveTranError> {
    let s = tran_syms();
    let span = tel.span_sym(s.span);
    tel.incr_sym(s.runs);
    let result = solve_inner(circuit, process, spec, stimuli);
    if tel.is_enabled() {
        match &result {
            Ok(solution) => {
                tel.add_sym(s.steps, solution.times().len() as u64);
                span.annotate_sym(s.steps_key, sym_u64(solution.times().len() as u64));
            }
            Err(e) => {
                tel.incr_sym(s.failures);
                span.annotate_sym(s.error, sym_display("", e));
            }
        }
    }
    result
}

fn solve_inner(
    circuit: &Circuit,
    process: &Process,
    spec: &TranSpec,
    stimuli: &Stimuli,
) -> Result<TranSolution, SolveTranError> {
    // Initial condition at t = 0 with the stimuli applied.
    let mut init = circuit.clone();
    for v in circuit.vsources() {
        if let Some(value) = stimuli.value_at(&v.name, 0.0) {
            init.set_source_dc(&v.name, value)
                .map_err(|e| SolveTranError::BadSpec(e.to_string()))?;
        }
    }
    for i in circuit.isources() {
        if let Some(value) = stimuli.value_at(&i.name, 0.0) {
            init.set_source_dc(&i.name, value)
                .map_err(|e| SolveTranError::BadSpec(e.to_string()))?;
        }
    }
    let dc0 = dc::solve(&init, process)?;

    // Collect all capacitances as (node_a, node_b, farads): explicit
    // capacitors plus frozen device capacitances.
    let caps = collect_capacitances(circuit, process, &dc0);

    let index = MnaIndex::new(circuit);
    let dim = index.dim();

    // Unknown vector from the DC solution.
    let mut x = vec![0.0; dim];
    x[..circuit.node_count() - 1].copy_from_slice(&dc0.node_voltages()[1..]);
    for k in 0..index.vsource_count() {
        x[index.branch_var(k)] = dc0.source_current(index.vsource_name(k)).unwrap_or(0.0);
    }

    let steps = (spec.t_stop / spec.dt).ceil() as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity(steps + 1);
    let push_state = |times: &mut Vec<f64>, voltages: &mut Vec<Vec<f64>>, t: f64, x: &[f64]| {
        let mut v = vec![0.0; circuit.node_count()];
        v[1..circuit.node_count()].copy_from_slice(&x[..circuit.node_count() - 1]);
        times.push(t);
        voltages.push(v);
    };
    push_state(&mut times, &mut voltages, 0.0, &x);

    let mut jac: Matrix<f64> = Matrix::zeros(dim);
    let mut residual = vec![0.0; dim];
    let mut x_prev = x.clone();

    for step in 1..=steps {
        let t = step as f64 * spec.dt;
        // Newton at this timestep, warm-started from the previous one.
        let mut converged = false;
        for _ in 0..MAX_NEWTON {
            jac.clear();
            residual.fill(0.0);
            assemble_tran(
                circuit,
                process,
                &index,
                stimuli,
                t,
                spec.dt,
                &caps,
                &x,
                &x_prev,
                &mut jac,
                &mut residual,
            );
            let neg_f: Vec<f64> = residual.iter().map(|r| -r).collect();
            let Ok(delta) = jac.solve(&neg_f) else {
                return Err(SolveTranError::StepNotConverged { time: t });
            };
            let max_delta = delta.iter().fold(0.0f64, |m, d| m.max(d.abs()));
            let damp = if max_delta > MAX_STEP_V {
                MAX_STEP_V / max_delta
            } else {
                1.0
            };
            for (xi, di) in x.iter_mut().zip(&delta) {
                *xi += damp * di;
            }
            if damp == 1.0 && max_delta < VTOL {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SolveTranError::StepNotConverged { time: t });
        }
        push_state(&mut times, &mut voltages, t, &x);
        x_prev.clone_from(&x);
    }

    Ok(TranSolution { times, voltages })
}

/// Gathers explicit and (frozen) device capacitances.
fn collect_capacitances(
    circuit: &Circuit,
    process: &Process,
    dc0: &DcSolution,
) -> Vec<(NodeId, NodeId, f64)> {
    let mut caps = Vec::new();
    for element in circuit.elements() {
        if let Element::Capacitor(c) = element {
            caps.push((c.a, c.b, c.farads));
        }
    }
    let volt = |n: NodeId| dc0.voltage(n);
    for (inst, device) in bound_mosfets(circuit, process) {
        let op = device.operating_point(
            volt(inst.gate) - volt(inst.source),
            volt(inst.drain) - volt(inst.source),
            volt(inst.source) - volt(inst.bulk),
        );
        let c = device.capacitances(&op);
        for (a, b, farads) in [
            (inst.gate, inst.source, c.cgs().farads()),
            (inst.gate, inst.drain, c.cgd().farads()),
            (inst.gate, inst.bulk, c.cgb().farads()),
            (inst.drain, inst.bulk, c.cdb().farads()),
            (inst.source, inst.bulk, c.csb().farads()),
        ] {
            if farads > 0.0 {
                caps.push((a, b, farads));
            }
        }
    }
    caps
}

/// Assembles the backward-Euler system at time `t`.
#[allow(clippy::too_many_arguments)]
fn assemble_tran(
    circuit: &Circuit,
    process: &Process,
    index: &MnaIndex,
    stimuli: &Stimuli,
    t: f64,
    dt: f64,
    caps: &[(NodeId, NodeId, f64)],
    x: &[f64],
    x_prev: &[f64],
    jac: &mut Matrix<f64>,
    residual: &mut [f64],
) {
    let volt = |x: &[f64], node: NodeId| index.node_var(node).map_or(0.0, |i| x[i]);

    for node_idx in 0..circuit.node_count() - 1 {
        jac.stamp(node_idx, node_idx, GMIN);
        residual[node_idx] += GMIN * x[node_idx];
    }

    // Capacitor companions: i = C/h·(v − v_prev).
    for &(a, b, farads) in caps {
        let g = farads / dt;
        let v_now = volt(x, a) - volt(x, b);
        let v_old = volt(x_prev, a) - volt(x_prev, b);
        let i_cap = g * (v_now - v_old);
        if let Some(i) = index.node_var(a) {
            residual[i] += i_cap;
            jac.stamp(i, i, g);
            if let Some(j) = index.node_var(b) {
                jac.stamp(i, j, -g);
            }
        }
        if let Some(i) = index.node_var(b) {
            residual[i] -= i_cap;
            jac.stamp(i, i, g);
            if let Some(j) = index.node_var(a) {
                jac.stamp(i, j, -g);
            }
        }
    }

    let mut vsrc_k = 0usize;
    for element in circuit.elements() {
        match element {
            Element::Resistor(r) => {
                let g = 1.0 / r.ohms;
                let (va, vb) = (volt(x, r.a), volt(x, r.b));
                if let Some(i) = index.node_var(r.a) {
                    residual[i] += g * (va - vb);
                    jac.stamp(i, i, g);
                    if let Some(j) = index.node_var(r.b) {
                        jac.stamp(i, j, -g);
                    }
                }
                if let Some(i) = index.node_var(r.b) {
                    residual[i] += g * (vb - va);
                    jac.stamp(i, i, g);
                    if let Some(j) = index.node_var(r.a) {
                        jac.stamp(i, j, -g);
                    }
                }
            }
            Element::Capacitor(_) => { /* handled via companions */ }
            Element::Isource(src) => {
                let i0 = stimuli
                    .value_at(&src.name, t)
                    .unwrap_or_else(|| src.value.dc_value());
                if let Some(i) = index.node_var(src.pos) {
                    residual[i] += i0;
                }
                if let Some(i) = index.node_var(src.neg) {
                    residual[i] -= i0;
                }
            }
            Element::Vsource(src) => {
                let branch = index.branch_var(vsrc_k);
                vsrc_k += 1;
                let v0 = stimuli
                    .value_at(&src.name, t)
                    .unwrap_or_else(|| src.value.dc_value());
                let i_branch = x[branch];
                if let Some(i) = index.node_var(src.pos) {
                    residual[i] += i_branch;
                    jac.stamp(i, branch, 1.0);
                }
                if let Some(i) = index.node_var(src.neg) {
                    residual[i] -= i_branch;
                    jac.stamp(i, branch, -1.0);
                }
                residual[branch] = volt(x, src.pos) - volt(x, src.neg) - v0;
                if let Some(i) = index.node_var(src.pos) {
                    jac.stamp(branch, i, 1.0);
                }
                if let Some(i) = index.node_var(src.neg) {
                    jac.stamp(branch, i, -1.0);
                }
            }
            Element::Mos(m) => {
                let device = crate::mismatch::bind(m, process);
                let stamp = mos_stamp(
                    &device,
                    volt(x, m.drain),
                    volt(x, m.gate),
                    volt(x, m.source),
                    volt(x, m.bulk),
                );
                let terminals = [
                    (m.drain, stamp.d_dvd),
                    (m.gate, stamp.d_dvg),
                    (m.source, stamp.d_dvs),
                    (m.bulk, stamp.d_dvb),
                ];
                if let Some(i) = index.node_var(m.drain) {
                    residual[i] += stamp.id;
                    for (node, deriv) in terminals {
                        if let Some(j) = index.node_var(node) {
                            jac.stamp(i, j, deriv);
                        }
                    }
                }
                if let Some(i) = index.node_var(m.source) {
                    residual[i] -= stamp.id;
                    for (node, deriv) in terminals {
                        if let Some(j) = index.node_var(node) {
                            jac.stamp(i, j, -deriv);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_netlist::SourceValue;
    use oasys_process::builtin;

    #[test]
    fn rc_charging_curve() {
        // R = 1 kΩ, C = 1 nF: τ = 1 µs. Step 0 → 1 V.
        let mut c = Circuit::new("rc");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("VIN", inp, c.ground(), SourceValue::dc(0.0))
            .unwrap();
        c.add_resistor("R", inp, out, 1e3).unwrap();
        c.add_capacitor("C", out, c.ground(), 1e-9).unwrap();

        let mut stimuli = Stimuli::new();
        stimuli.step("VIN", 0.0, 1.0, 1e-9);
        let spec = TranSpec::new(5e-6, 5e-9).unwrap();
        let process = builtin::cmos_5um();
        let sol = solve(&c, &process, &spec, &stimuli).unwrap();

        let w = sol.waveform(out);
        // Starts discharged, ends charged.
        assert!(w[0].abs() < 1e-6);
        assert!((w.last().unwrap() - 1.0).abs() < 1e-2);
        // Value at t ≈ τ is 1 − 1/e (backward Euler is first-order, allow
        // a few percent).
        let k_tau = sol.times().iter().position(|&t| t >= 1e-6).unwrap();
        assert!(
            (w[k_tau] - 0.632).abs() < 0.03,
            "v(τ) = {} expected ≈ 0.632",
            w[k_tau]
        );
    }

    #[test]
    fn slope_measurements() {
        // Current source into a capacitor: perfect ramp at I/C = 1 V/µs.
        let mut c = Circuit::new("ramp");
        let out = c.node("out");
        c.add_isource("ISTEP", c.ground(), out, SourceValue::dc(0.0))
            .unwrap();
        c.add_capacitor("C", out, c.ground(), 1e-12).unwrap();
        // Bleeder to keep the DC point defined.
        c.add_resistor("RB", out, c.ground(), 1e9).unwrap();

        let mut stimuli = Stimuli::new();
        stimuli.step("ISTEP", 0.0, 1e-6, 1e-9); // 1 µA into 1 pF
        let spec = TranSpec::new(5e-6, 1e-8).unwrap();
        let sol = solve(&c, &builtin::cmos_5um(), &spec, &stimuli).unwrap();
        let slope = sol.max_slope(out);
        assert!(
            (slope / 1e6 - 1.0).abs() < 0.05,
            "ramp slope {slope:.3e} ≈ 1 V/µs"
        );
        // And the 10–90 measurement over the 0 → 4.x V ramp portion.
        let final_v = *sol.waveform(out).last().unwrap();
        assert!(final_v > 3.0);
        let sr = sol.slew_10_90(out, 0.0, 4.0).unwrap();
        assert!((sr / 1e6 - 1.0).abs() < 0.1, "10-90 slew {sr:.3e}");
    }

    #[test]
    fn mosfet_inverter_switches() {
        use oasys_mos::Geometry;
        use oasys_process::Polarity;
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VIN", inp, c.ground(), SourceValue::dc(0.0))
            .unwrap();
        c.add_mosfet(
            "MN",
            Polarity::Nmos,
            Geometry::new_um(10.0, 5.0).unwrap(),
            out,
            inp,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        c.add_mosfet(
            "MP",
            Polarity::Pmos,
            Geometry::new_um(25.0, 5.0).unwrap(),
            out,
            inp,
            vdd,
            vdd,
        )
        .unwrap();
        c.add_capacitor("CL", out, c.ground(), 1e-12).unwrap();

        let mut stimuli = Stimuli::new();
        stimuli.step("VIN", 0.0, 5.0, 1e-7);
        let spec = TranSpec::new(2e-6, 2e-9).unwrap();
        let sol = solve(&c, &builtin::cmos_5um(), &spec, &stimuli).unwrap();
        let w = sol.waveform(out);
        assert!(w[0] > 4.5, "output starts high: {}", w[0]);
        assert!(*w.last().unwrap() < 0.5, "output ends low");
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(TranSpec::new(-1.0, 1e-9).is_err());
        assert!(TranSpec::new(1.0, 0.0).is_err());
        assert!(TranSpec::new(1.0, 1e-9).is_err(), "too many steps");
    }

    #[test]
    fn constant_circuit_stays_at_dc() {
        let mut c = Circuit::new("hold");
        let a = c.node("a");
        c.add_vsource("V", a, c.ground(), SourceValue::dc(2.0))
            .unwrap();
        c.add_resistor("R", a, c.ground(), 1e3).unwrap();
        let spec = TranSpec::new(1e-6, 1e-8).unwrap();
        let sol = solve(&c, &builtin::cmos_5um(), &spec, &Stimuli::new()).unwrap();
        for v in sol.waveform(a) {
            assert!((v - 2.0).abs() < 1e-9);
        }
    }
}
