//! An MNA-based analog circuit simulator: the reproduction's stand-in for
//! SPICE.
//!
//! The OASYS paper verifies every synthesized op amp by detailed circuit
//! simulation (Table 2's "actual" columns, Figure 6's Bode plot). This
//! crate provides that measurement capability over the same level-1 device
//! model the synthesis equations assume:
//!
//! * [`complex`] — complex arithmetic (no external dependency),
//! * [`linalg`] — dense LU factorization with partial pivoting, generic
//!   over real and complex scalars,
//! * [`mna`] — modified nodal analysis stamps,
//! * [`dc`] — Newton–Raphson DC operating point with damping, `gmin`
//!   stepping and source stepping fallbacks,
//! * [`ac`] — small-signal frequency sweeps linearized at the DC point
//!   (the module also exposes the reusable [`ac::AcSystem`]),
//! * [`sweep`] — DC transfer sweeps with solution continuation,
//! * [`tran`] — fixed-step backward-Euler transient analysis (slew-rate
//!   measurements),
//! * [`metrics`] — datasheet-style measurements: DC gain, unity-gain
//!   frequency, phase margin, −3 dB bandwidth, output swing, systematic
//!   offset, supply power,
//! * [`noise`] — small-signal noise analysis (channel thermal + Johnson
//!   noise, per-element breakdown, input-referred density).
//!
//! # Examples
//!
//! Measure a resistive divider:
//!
//! ```
//! use oasys_netlist::{Circuit, SourceValue};
//! use oasys_process::builtin;
//! use oasys_sim::dc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new("divider");
//! let top = c.node("top");
//! let mid = c.node("mid");
//! let gnd = c.ground();
//! c.add_vsource("V1", top, gnd, SourceValue::dc(10.0))?;
//! c.add_resistor("R1", top, mid, 1e3)?;
//! c.add_resistor("R2", mid, gnd, 1e3)?;
//!
//! let process = builtin::cmos_5um();
//! let sol = dc::solve(&c, &process)?;
//! assert!((sol.voltage(mid) - 5.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ac;
pub mod complex;
pub mod dc;
pub mod linalg;
pub mod metrics;
pub mod mismatch;
pub mod mna;
pub mod noise;
pub mod sweep;
pub mod tran;

pub use ac::{AcSolution, AcSweepSpec};
pub use complex::Complex;
pub use dc::{DcSolution, SolveDcError};
pub use metrics::{AcMetrics, Bode};
