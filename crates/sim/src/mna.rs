//! Modified-nodal-analysis bookkeeping shared by the DC and AC engines.
//!
//! The unknown vector is `[v_1 … v_{N-1}, i_V1 … i_VM]`: every non-ground
//! node voltage followed by one branch current per independent voltage
//! source. [`MnaIndex`] maps circuit entities to vector positions;
//! [`mos_stamp`] evaluates a MOSFET and its exact partial derivatives with
//! respect to the four terminal voltages (handling polarity and mode
//! reversal), which is what both the Newton Jacobian and the AC admittance
//! matrix stamp.

use oasys_mos::{Mosfet, OperatingPoint};
use oasys_netlist::{Circuit, Element, NodeId};

/// Maps nodes and voltage-source branches to unknown-vector indices.
///
/// # Examples
///
/// ```
/// use oasys_netlist::{Circuit, SourceValue};
/// use oasys_sim::mna::MnaIndex;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new("t");
/// let a = c.node("a");
/// c.add_vsource("V1", a, c.ground(), SourceValue::dc(1.0))?;
/// let index = MnaIndex::new(&c);
/// assert_eq!(index.dim(), 2); // one node voltage + one branch current
/// assert_eq!(index.node_var(a), Some(0));
/// assert_eq!(index.node_var(c.ground()), None);
/// assert_eq!(index.branch_var(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct MnaIndex {
    node_count: usize,
    vsource_names: Vec<String>,
}

impl MnaIndex {
    /// Builds the index for a circuit.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        let vsource_names = circuit.vsources().map(|v| v.name.clone()).collect();
        Self {
            node_count: circuit.node_count(),
            vsource_names,
        }
    }

    /// Total number of unknowns.
    #[must_use]
    pub fn dim(&self) -> usize {
        (self.node_count - 1) + self.vsource_names.len()
    }

    /// Unknown index of a node voltage, or `None` for ground.
    #[must_use]
    pub fn node_var(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of the `k`-th voltage source's branch current
    /// (in circuit insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn branch_var(&self, k: usize) -> usize {
        assert!(k < self.vsource_names.len(), "no voltage source #{k}");
        (self.node_count - 1) + k
    }

    /// Number of voltage sources (branch unknowns).
    #[must_use]
    pub fn vsource_count(&self) -> usize {
        self.vsource_names.len()
    }

    /// Name of the `k`-th voltage source.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn vsource_name(&self, k: usize) -> &str {
        &self.vsource_names[k]
    }

    /// Index of a voltage source's branch unknown by name.
    #[must_use]
    pub fn branch_var_by_name(&self, name: &str) -> Option<usize> {
        self.vsource_names
            .iter()
            .position(|n| n == name)
            .map(|k| self.branch_var(k))
    }
}

/// A MOSFET evaluated at actual terminal voltages: drain current plus its
/// exact partial derivatives with respect to each terminal voltage.
///
/// Sign conventions: `id` is the current flowing *into* the drain
/// terminal. The four derivatives sum to zero (shifting all terminals
/// together changes nothing).
#[derive(Clone, Copy, Debug)]
pub struct MosStamp {
    /// Drain terminal current, amperes.
    pub id: f64,
    /// `∂I_D/∂V_d`.
    pub d_dvd: f64,
    /// `∂I_D/∂V_g`.
    pub d_dvg: f64,
    /// `∂I_D/∂V_s`.
    pub d_dvs: f64,
    /// `∂I_D/∂V_b`.
    pub d_dvb: f64,
    /// The underlying bias point (for capacitances and reporting).
    pub op: OperatingPoint,
}

/// Evaluates `mosfet` at absolute terminal potentials and returns the
/// current and Jacobian entries.
#[must_use]
pub fn mos_stamp(mosfet: &Mosfet, vd: f64, vg: f64, vs: f64, vb: f64) -> MosStamp {
    let op = mosfet.operating_point(vg - vs, vd - vs, vs - vb);
    let (gm, gds, gmb) = (op.gm(), op.gds(), op.gmb());
    let (d_dvd, d_dvg, d_dvs, d_dvb) = if op.is_reversed() {
        // Drain and source have exchanged roles; see the derivation in the
        // DC engine docs: derivatives transform as below.
        (gm + gds + gmb, -gm, -gds, -gmb)
    } else {
        (gds, gm, -(gm + gds + gmb), gmb)
    };
    MosStamp {
        id: op.id(),
        d_dvd,
        d_dvg,
        d_dvs,
        d_dvb,
        op,
    }
}

/// Convenience: iterate MOSFET instances of a circuit paired with their
/// bound device models.
pub fn bound_mosfets<'c>(
    circuit: &'c Circuit,
    process: &'c oasys_process::Process,
) -> impl Iterator<Item = (&'c oasys_netlist::MosInstance, Mosfet)> + 'c {
    circuit.elements().iter().filter_map(move |e| match e {
        Element::Mos(m) => Some((m, crate::mismatch::bind(m, process))),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_mos::Geometry;
    use oasys_process::{builtin, Polarity};

    fn nmos() -> Mosfet {
        Mosfet::new(
            Polarity::Nmos,
            Geometry::new_um(50.0, 5.0).unwrap(),
            &builtin::cmos_5um(),
        )
    }

    fn pmos() -> Mosfet {
        Mosfet::new(
            Polarity::Pmos,
            Geometry::new_um(50.0, 5.0).unwrap(),
            &builtin::cmos_5um(),
        )
    }

    fn check_derivatives(m: &Mosfet, vd: f64, vg: f64, vs: f64, vb: f64) {
        let s = mos_stamp(m, vd, vg, vs, vb);
        let h = 1e-7;
        let num = |fd: &dyn Fn(f64) -> f64| (fd(h) - fd(-h)) / (2.0 * h);
        let dd = num(&|e| mos_stamp(m, vd + e, vg, vs, vb).id);
        let dg = num(&|e| mos_stamp(m, vd, vg + e, vs, vb).id);
        let ds = num(&|e| mos_stamp(m, vd, vg, vs + e, vb).id);
        let db = num(&|e| mos_stamp(m, vd, vg, vs, vb + e).id);
        let tol = 1e-4
            * [dd, dg, ds, db]
                .iter()
                .map(|x| x.abs())
                .fold(1e-9, f64::max);
        assert!((s.d_dvd - dd).abs() < tol, "d/dvd {} vs {dd}", s.d_dvd);
        assert!((s.d_dvg - dg).abs() < tol, "d/dvg {} vs {dg}", s.d_dvg);
        assert!((s.d_dvs - ds).abs() < tol, "d/dvs {} vs {ds}", s.d_dvs);
        assert!((s.d_dvb - db).abs() < tol, "d/dvb {} vs {db}", s.d_dvb);
        // Derivatives sum to ~0 (translation invariance).
        assert!(
            (s.d_dvd + s.d_dvg + s.d_dvs + s.d_dvb).abs() < tol,
            "derivative sum not zero"
        );
    }

    #[test]
    fn nmos_saturation_derivatives() {
        check_derivatives(&nmos(), 4.0, 2.0, 0.0, 0.0);
    }

    #[test]
    fn nmos_triode_derivatives() {
        check_derivatives(&nmos(), 0.3, 2.5, 0.0, 0.0);
    }

    #[test]
    fn nmos_with_body_bias_derivatives() {
        check_derivatives(&nmos(), 4.0, 3.0, 1.0, 0.0);
    }

    #[test]
    fn nmos_reversed_derivatives() {
        // Drain below source.
        check_derivatives(&nmos(), 0.0, 2.5, 1.0, -1.0);
    }

    #[test]
    fn pmos_derivatives() {
        check_derivatives(&pmos(), 0.0, 2.0, 5.0, 5.0);
        check_derivatives(&pmos(), 4.5, 2.0, 5.0, 5.0); // triode
    }

    #[test]
    fn pmos_reversed_derivatives() {
        check_derivatives(&pmos(), 5.0, 2.0, 4.0, 5.0);
    }

    #[test]
    fn index_layout() {
        use oasys_netlist::SourceValue;
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, c.ground(), SourceValue::dc(1.0))
            .unwrap();
        c.add_vsource("V2", b, c.ground(), SourceValue::dc(2.0))
            .unwrap();
        let idx = MnaIndex::new(&c);
        assert_eq!(idx.dim(), 4);
        assert_eq!(idx.node_var(a), Some(0));
        assert_eq!(idx.node_var(b), Some(1));
        assert_eq!(idx.branch_var(0), 2);
        assert_eq!(idx.branch_var(1), 3);
        assert_eq!(idx.vsource_name(1), "V2");
        assert_eq!(idx.branch_var_by_name("V2"), Some(3));
        assert_eq!(idx.branch_var_by_name("nope"), None);
    }
}
