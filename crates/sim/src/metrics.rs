//! Datasheet-style measurements extracted from simulation results.
//!
//! This module turns raw sweeps into the numbers Table 2 of the paper
//! reports: DC gain, unity-gain frequency, phase margin, −3 dB bandwidth,
//! output swing. Frequency-domain quantities interpolate on a log-frequency
//! axis; phase is unwrapped before any margin is computed.

use crate::ac::AcSolution;
use crate::complex::Complex;
use crate::sweep::SweepPoint;
use oasys_netlist::NodeId;
use oasys_units::{Decibels, Degrees, Frequency};

/// A gain/phase response: the data behind the paper's Figure 6.
#[derive(Clone, Debug)]
pub struct Bode {
    frequencies: Vec<f64>,
    gain_db: Vec<f64>,
    /// Unwrapped phase, degrees, normalized so the DC phase is 0.
    phase_deg: Vec<f64>,
    /// The raw (non-normalized) phase of the first point, degrees.
    dc_phase_deg: f64,
}

impl Bode {
    /// Builds a Bode dataset from the output-node phasors of an AC sweep.
    ///
    /// The phase is unwrapped (no ±360° jumps between adjacent points) and
    /// then shifted so the first (lowest-frequency) point reads 0°; the
    /// original DC phase is kept in [`Bode::dc_phase_deg`]. With this
    /// normalization, the phase margin is `180° + phase(f_unity)`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    #[must_use]
    pub fn from_ac(ac: &AcSolution, output: NodeId) -> Self {
        let transfer = ac.transfer(output);
        assert!(
            !transfer.is_empty(),
            "cannot build Bode data from an empty sweep"
        );
        Self::from_transfer(ac.frequencies().to_vec(), &transfer)
    }

    /// Builds a Bode dataset from explicit transfer-function samples.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty or of different lengths.
    #[must_use]
    pub fn from_transfer(frequencies: Vec<f64>, transfer: &[Complex]) -> Self {
        assert_eq!(frequencies.len(), transfer.len());
        assert!(!transfer.is_empty());
        let gain_db: Vec<f64> = transfer
            .iter()
            .map(|h| 20.0 * h.abs().max(1e-30).log10())
            .collect();

        // Unwrap phase.
        let mut phase_deg = Vec::with_capacity(transfer.len());
        let mut prev = transfer[0].arg().to_degrees();
        phase_deg.push(prev);
        for h in &transfer[1..] {
            let mut p = h.arg().to_degrees();
            while p - prev > 180.0 {
                p -= 360.0;
            }
            while p - prev < -180.0 {
                p += 360.0;
            }
            phase_deg.push(p);
            prev = p;
        }
        let dc_phase_deg = phase_deg[0];
        for p in &mut phase_deg {
            *p -= dc_phase_deg;
        }

        Self {
            frequencies,
            gain_db,
            phase_deg,
            dc_phase_deg,
        }
    }

    /// The frequency axis, hertz.
    #[must_use]
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Gain samples, dB.
    #[must_use]
    pub fn gain_db(&self) -> &[f64] {
        &self.gain_db
    }

    /// Unwrapped, DC-normalized phase samples, degrees.
    #[must_use]
    pub fn phase_deg(&self) -> &[f64] {
        &self.phase_deg
    }

    /// The raw phase of the lowest-frequency point, degrees (≈180 for an
    /// inverting path, ≈0 for a non-inverting one).
    #[must_use]
    pub fn dc_phase_deg(&self) -> f64 {
        self.dc_phase_deg
    }

    /// Interpolates the gain (dB) at an arbitrary frequency on the
    /// log-frequency axis. Clamps outside the sweep.
    #[must_use]
    pub fn gain_at(&self, hz: f64) -> f64 {
        interp_log(&self.frequencies, &self.gain_db, hz)
    }

    /// Interpolates the normalized phase (degrees) at an arbitrary
    /// frequency. Clamps outside the sweep.
    #[must_use]
    pub fn phase_at(&self, hz: f64) -> f64 {
        interp_log(&self.frequencies, &self.phase_deg, hz)
    }
}

/// Measurements from a [`Bode`] response: the AC half of a Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct AcMetrics {
    /// Low-frequency gain.
    pub dc_gain: Decibels,
    /// Unity-gain (0 dB) crossover, if the gain crosses 0 dB inside the
    /// sweep.
    pub unity_gain_freq: Option<Frequency>,
    /// Phase margin `180° + φ(f_unity)`, if a crossover exists.
    pub phase_margin: Option<Degrees>,
    /// −3 dB bandwidth relative to the DC gain, if inside the sweep.
    pub f3db: Option<Frequency>,
    /// Gain (dB) where the phase crosses −180°, if inside the sweep;
    /// `gain_margin = −this`.
    pub gain_at_phase_180: Option<Decibels>,
}

impl AcMetrics {
    /// Extracts all metrics from a Bode response.
    ///
    /// # Examples
    ///
    /// ```
    /// use oasys_sim::{metrics::AcMetrics, Bode, Complex};
    /// // Single-pole system: A0 = 1000, pole at 1 kHz.
    /// let freqs: Vec<f64> = (0..100)
    ///     .map(|k| 10f64.powf(1.0 + 6.0 * k as f64 / 99.0))
    ///     .collect();
    /// let h: Vec<Complex> = freqs
    ///     .iter()
    ///     .map(|&f| {
    ///         Complex::from_real(1000.0)
    ///             / Complex::new(1.0, f / 1e3)
    ///     })
    ///     .collect();
    /// let bode = Bode::from_transfer(freqs, &h);
    /// let m = AcMetrics::extract(&bode);
    /// assert!((m.dc_gain.db() - 60.0).abs() < 0.1);
    /// // Unity-gain at ≈ A0·fp = 1 MHz, phase margin ≈ 90°.
    /// let fu = m.unity_gain_freq.unwrap().hertz();
    /// assert!((fu / 1e6 - 1.0).abs() < 0.05);
    /// assert!((m.phase_margin.unwrap().degrees() - 90.0).abs() < 2.0);
    /// ```
    #[must_use]
    pub fn extract(bode: &Bode) -> Self {
        let freqs = bode.frequencies();
        let gain = bode.gain_db();
        let phase = bode.phase_deg();
        let dc_gain = Decibels::new(gain[0]);

        let unity = crossing(freqs, gain, 0.0);
        let phase_margin = unity.map(|fu| Degrees::new(180.0 + bode.phase_at(fu)));
        let f3 = crossing(freqs, gain, gain[0] - 3.0103);
        let phase_180 = crossing(freqs, phase, -180.0);
        let gain_at_phase_180 = phase_180.map(|f| Decibels::new(bode.gain_at(f)));

        Self {
            dc_gain,
            unity_gain_freq: unity.map(Frequency::new),
            phase_margin,
            f3db: f3.map(Frequency::new),
            gain_at_phase_180,
        }
    }
}

/// First downward crossing of `values` through `target`, interpolated on
/// the log-frequency axis.
fn crossing(freqs: &[f64], values: &[f64], target: f64) -> Option<f64> {
    for k in 1..values.len() {
        let (v0, v1) = (values[k - 1], values[k]);
        if (v0 >= target && v1 < target) || (v0 > target && v1 <= target) {
            let t = (v0 - target) / (v0 - v1);
            let lf0 = freqs[k - 1].log10();
            let lf1 = freqs[k].log10();
            return Some(10f64.powf(lf0 + t * (lf1 - lf0)));
        }
    }
    None
}

/// Linear interpolation of `values` on the log-frequency axis, clamped at
/// the ends.
fn interp_log(freqs: &[f64], values: &[f64], hz: f64) -> f64 {
    if freqs.is_empty() || freqs.len() != values.len() {
        return f64::NAN;
    }
    let (first, last) = (values[0], values[values.len() - 1]);
    if hz <= freqs[0] {
        return first;
    }
    if hz >= freqs[freqs.len() - 1] {
        return last;
    }
    let lx = hz.log10();
    for k in 1..freqs.len() {
        if hz <= freqs[k] {
            let lf0 = freqs[k - 1].log10();
            let lf1 = freqs[k].log10();
            let t = (lx - lf0) / (lf1 - lf0);
            return values[k - 1] + t * (values[k] - values[k - 1]);
        }
    }
    last
}

/// Output swing measured from a DC transfer sweep: the output range over
/// which the incremental gain stays above `gain_fraction` of its peak.
///
/// Returns `(v_low, v_high)` — e.g. `(-2.5, 2.5)` for a symmetric ±2.5 V
/// swing — or `None` if the sweep has fewer than three points.
///
/// # Examples
///
/// A saturating amplifier's linear region is recovered:
/// see the module tests for a worked inverter example.
#[must_use]
pub fn output_swing(
    points: &[SweepPoint],
    output: NodeId,
    gain_fraction: f64,
) -> Option<(f64, f64)> {
    if points.len() < 3 {
        return None;
    }
    let vin: Vec<f64> = points.iter().map(|p| p.input).collect();
    let vout: Vec<f64> = points.iter().map(|p| p.solution.voltage(output)).collect();
    // Central-difference incremental gain.
    let n = points.len();
    let mut gains = vec![0.0; n];
    for k in 1..n - 1 {
        gains[k] = ((vout[k + 1] - vout[k - 1]) / (vin[k + 1] - vin[k - 1])).abs();
    }
    gains[0] = gains[1];
    gains[n - 1] = gains[n - 2];
    let peak = gains.iter().cloned().fold(0.0f64, f64::max);
    if peak == 0.0 {
        return None;
    }
    let threshold = peak * gain_fraction;
    // The output values reached while the gain is above threshold.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for k in 0..n {
        if gains[k] >= threshold {
            lo = lo.min(vout[k]);
            hi = hi.max(vout[k]);
        }
    }
    if lo.is_finite() && hi.is_finite() {
        Some((lo, hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_pole(a0: f64, fp: f64) -> Bode {
        let freqs: Vec<f64> = (0..200)
            .map(|k| 10f64.powf(0.0 + 8.0 * k as f64 / 199.0))
            .collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| Complex::from_real(a0) / Complex::new(1.0, f / fp))
            .collect();
        Bode::from_transfer(freqs, &h)
    }

    fn two_pole(a0: f64, fp1: f64, fp2: f64) -> Bode {
        let freqs: Vec<f64> = (0..400)
            .map(|k| 10f64.powf(0.0 + 9.0 * k as f64 / 399.0))
            .collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| {
                Complex::from_real(a0) / (Complex::new(1.0, f / fp1) * Complex::new(1.0, f / fp2))
            })
            .collect();
        Bode::from_transfer(freqs, &h)
    }

    #[test]
    fn single_pole_metrics() {
        let bode = single_pole(1e4, 100.0);
        let m = AcMetrics::extract(&bode);
        assert!((m.dc_gain.db() - 80.0).abs() < 0.05);
        assert!((m.f3db.unwrap().hertz() / 100.0 - 1.0).abs() < 0.05);
        assert!((m.unity_gain_freq.unwrap().hertz() / 1e6 - 1.0).abs() < 0.05);
        let pm = m.phase_margin.unwrap().degrees();
        assert!((pm - 90.0).abs() < 1.5, "pm = {pm}");
        // Single pole never reaches −180°.
        assert!(m.gain_at_phase_180.is_none());
    }

    #[test]
    fn two_pole_phase_margin() {
        // Second pole at the single-pole GBW product: the crossover pulls
        // down to ≈0.786·fp2 and the exact phase margin is
        // 180 − 90 − atan(0.786) ≈ 52°.
        let bode = two_pole(1e3, 1e3, 1e6);
        let m = AcMetrics::extract(&bode);
        let pm = m.phase_margin.unwrap().degrees();
        assert!((pm - 52.0).abs() < 3.0, "pm = {pm}");
        let fu = m.unity_gain_freq.unwrap().hertz();
        assert!((fu / 786e3 - 1.0).abs() < 0.05, "fu = {fu}");
    }

    #[test]
    fn inverting_dc_phase_normalized() {
        let freqs = vec![1.0, 10.0, 100.0];
        let h = vec![
            Complex::from_real(-100.0),
            Complex::from_real(-100.0),
            Complex::from_real(-99.0),
        ];
        let bode = Bode::from_transfer(freqs, &h);
        assert!((bode.dc_phase_deg().abs() - 180.0).abs() < 1e-9);
        assert!(bode.phase_deg()[0].abs() < 1e-9);
    }

    #[test]
    fn phase_unwrapping_no_jumps() {
        // Synthetic 3-pole system whose raw atan2 phase wraps past −180°.
        let freqs: Vec<f64> = (0..300)
            .map(|k| 10f64.powf(0.0 + 8.0 * k as f64 / 299.0))
            .collect();
        let h: Vec<Complex> = freqs
            .iter()
            .map(|&f| {
                let p = Complex::new(1.0, f / 1e2)
                    * Complex::new(1.0, f / 1e4)
                    * Complex::new(1.0, f / 1e5);
                Complex::from_real(1e5) / p
            })
            .collect();
        let bode = Bode::from_transfer(freqs, &h);
        for pair in bode.phase_deg().windows(2) {
            assert!((pair[1] - pair[0]).abs() < 90.0, "phase jump: {pair:?}");
        }
        // Deep high-frequency phase approaches −270°.
        assert!(*bode.phase_deg().last().unwrap() < -220.0);
    }

    #[test]
    fn gain_interpolation_clamps() {
        let bode = single_pole(10.0, 1e3);
        assert!((bode.gain_at(1e-3) - bode.gain_db()[0]).abs() < 1e-9);
        assert!((bode.gain_at(1e12) - bode.gain_db().last().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn no_unity_crossing_when_gain_below_zero_db() {
        let bode = single_pole(0.5, 1e3); // −6 dB everywhere
        let m = AcMetrics::extract(&bode);
        assert!(m.unity_gain_freq.is_none());
        assert!(m.phase_margin.is_none());
    }
}
