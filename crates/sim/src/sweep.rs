//! DC transfer sweeps and bias searches.
//!
//! These drive the Table 2 measurements that AC analysis cannot provide:
//! output voltage swing (sweep the input, watch where the output stops
//! following) and systematic input offset (bisect for the input voltage
//! that centers the output).

use crate::dc::{self, DcSolution, SolveDcError};
use oasys_netlist::{Circuit, NodeId};
use oasys_process::Process;

/// One point of a DC transfer sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The swept source's DC value at this point.
    pub input: f64,
    /// The full DC solution at this point.
    pub solution: DcSolution,
}

/// Sweeps the DC value of source `source_name` over `values` and solves at
/// each point. Points that fail to converge are skipped (deep saturation
/// corners occasionally defeat continuation; the swing extraction only
/// needs the converged shape).
///
/// # Errors
///
/// Returns an error if the source does not exist, or if *no* point
/// converges.
///
/// # Examples
///
/// ```
/// use oasys_netlist::{Circuit, SourceValue};
/// use oasys_process::builtin;
/// use oasys_sim::sweep;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new("follower");
/// let inp = c.node("in");
/// let out = c.node("out");
/// c.add_vsource("VIN", inp, c.ground(), SourceValue::dc(0.0))?;
/// c.add_resistor("R1", inp, out, 1e3)?;
/// c.add_resistor("R2", out, c.ground(), 1e3)?;
/// let pts = sweep::dc_transfer(
///     &c,
///     &builtin::cmos_5um(),
///     "VIN",
///     &[-1.0, 0.0, 1.0],
/// )?;
/// assert_eq!(pts.len(), 3);
/// assert!((pts[2].solution.voltage(out) - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn dc_transfer(
    circuit: &Circuit,
    process: &Process,
    source_name: &str,
    values: &[f64],
) -> Result<Vec<SweepPoint>, SolveDcError> {
    let mut work = circuit.clone();
    // Fail early on a bad source name.
    work.set_source_dc(source_name, values.first().copied().unwrap_or(0.0))
        .map_err(|e| SolveDcError::Invalid(e.to_string()))?;

    let mut points = Vec::with_capacity(values.len());
    let mut last_err = None;
    for &value in values {
        work.set_source_dc(source_name, value)
            .map_err(|e| SolveDcError::Invalid(e.to_string()))?;
        match dc::solve(&work, process) {
            Ok(solution) => points.push(SweepPoint {
                input: value,
                solution,
            }),
            Err(e) => last_err = Some(e),
        }
    }
    if points.is_empty() {
        return Err(last_err.unwrap_or(SolveDcError::NotConverged {
            circuit: circuit.title().to_owned(),
            residual: f64::NAN,
        }));
    }
    Ok(points)
}

/// Generates `n` linearly spaced values across `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or `lo >= hi`.
#[must_use]
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    assert!(lo < hi, "linspace needs lo < hi, got {lo}..{hi}");
    (0..n)
        .map(|k| lo + (hi - lo) * k as f64 / (n - 1) as f64)
        .collect()
}

/// Bisects the DC value of `source_name` in `[lo, hi]` for the value that
/// drives `target_node` to `target_voltage`. This is how the systematic
/// input offset of a synthesized op amp is measured: the differential
/// input voltage required to center the output.
///
/// Assumes the transfer function is monotone over the bracket (true for
/// an op amp's input stage around its operating region).
///
/// # Errors
///
/// Returns [`SolveDcError`] if the endpoints fail to converge or do not
/// bracket the target.
pub fn bisect_input(
    circuit: &Circuit,
    process: &Process,
    source_name: &str,
    target_node: NodeId,
    target_voltage: f64,
    lo: f64,
    hi: f64,
) -> Result<f64, SolveDcError> {
    let mut work = circuit.clone();
    let mut eval = |vin: f64| -> Result<f64, SolveDcError> {
        work.set_source_dc(source_name, vin)
            .map_err(|e| SolveDcError::Invalid(e.to_string()))?;
        Ok(dc::solve(&work, process)?.voltage(target_node) - target_voltage)
    };

    let mut f_lo = eval(lo)?;
    let f_hi = eval(hi)?;
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(SolveDcError::Invalid(format!(
            "bisection bracket [{lo}, {hi}] does not straddle the target \
             (f(lo)={f_lo:.3e}, f(hi)={f_hi:.3e})"
        )));
    }

    let (mut a, mut b) = (lo, hi);
    for _ in 0..80 {
        let mid = 0.5 * (a + b);
        let f_mid = eval(mid)?;
        if f_mid == 0.0 || (b - a).abs() < 1e-12 {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            a = mid;
            f_lo = f_mid;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_mos::Geometry;
    use oasys_netlist::SourceValue;
    use oasys_process::{builtin, Polarity};

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] + 1.0).abs() < 1e-12);
        assert!((v[4] - 1.0).abs() < 1e-12);
        assert!((v[2]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }

    fn inverter() -> (Circuit, NodeId) {
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let inp = c.node("in");
        c.add_vsource("VDD", vdd, c.ground(), SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VIN", inp, c.ground(), SourceValue::dc(2.5))
            .unwrap();
        c.add_mosfet(
            "MN",
            Polarity::Nmos,
            Geometry::new_um(10.0, 5.0).unwrap(),
            out,
            inp,
            c.ground(),
            c.ground(),
        )
        .unwrap();
        c.add_mosfet(
            "MP",
            Polarity::Pmos,
            Geometry::new_um(25.0, 5.0).unwrap(),
            out,
            inp,
            vdd,
            vdd,
        )
        .unwrap();
        (c, out)
    }

    #[test]
    fn inverter_transfer_is_monotone_decreasing() {
        let (c, out) = inverter();
        let pts = dc_transfer(&c, &builtin::cmos_5um(), "VIN", &linspace(0.0, 5.0, 11)).unwrap();
        assert_eq!(pts.len(), 11);
        let vouts: Vec<f64> = pts.iter().map(|p| p.solution.voltage(out)).collect();
        for pair in vouts.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-6, "not monotone: {vouts:?}");
        }
        // Rail-ish at the ends.
        assert!(vouts[0] > 4.5);
        assert!(vouts[10] < 0.5);
    }

    #[test]
    fn bisect_finds_inverter_switching_point() {
        let (c, out) = inverter();
        let vin = bisect_input(&c, &builtin::cmos_5um(), "VIN", out, 2.5, 0.0, 5.0).unwrap();
        // The switching threshold of this skewed inverter sits near
        // mid-supply.
        assert!(vin > 1.5 && vin < 3.5, "threshold {vin}");
        // Verify it actually lands.
        let mut work = c.clone();
        work.set_source_dc("VIN", vin).unwrap();
        let sol = dc::solve(&work, &builtin::cmos_5um()).unwrap();
        assert!((sol.voltage(out) - 2.5).abs() < 1e-3);
    }

    #[test]
    fn bad_bracket_is_reported() {
        let (c, out) = inverter();
        let err = bisect_input(&c, &builtin::cmos_5um(), "VIN", out, 10.0, 0.0, 5.0).unwrap_err();
        assert!(err.to_string().contains("bracket"));
    }

    #[test]
    fn unknown_source_is_reported() {
        let (c, _) = inverter();
        let err = dc_transfer(&c, &builtin::cmos_5um(), "NOPE", &[0.0]).unwrap_err();
        assert!(matches!(err, SolveDcError::Invalid(_)));
    }
}
