//! Property-based tests on the simulator: linear-algebra laws, MNA stamp
//! invariants, and conservation properties of solved circuits.

use oasys_mos::{Geometry, Mosfet};
use oasys_netlist::{Circuit, SourceValue};
use oasys_process::{builtin, Polarity};
use oasys_sim::complex::Complex;
use oasys_sim::linalg::Matrix;
use oasys_sim::mna::mos_stamp;
use oasys_sim::{dc, sweep};
use oasys_testutil::prelude::*;

/// Deterministic diagonally dominant matrix from a seed.
fn dominant_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut m: Matrix<f64> = Matrix::zeros(n);
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = next();
        }
        m[(i, i)] += n as f64;
    }
    m
}

proptest! {
    /// LU solve actually solves: ‖A·x − b‖ is tiny for well-conditioned A.
    #[test]
    fn lu_residual_small(n in 1usize..20, seed in 0u64..1000) {
        let m = dominant_matrix(n, seed);
        let b: Vec<f64> = (0..n).map(|k| (k as f64) - 2.5).collect();
        let x = m.solve(&b).unwrap();
        let ax = m.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }

    /// Solving is linear: solve(αb) = α·solve(b).
    #[test]
    fn lu_is_linear(n in 1usize..15, seed in 0u64..500, alpha in -10.0..10.0f64) {
        let m = dominant_matrix(n, seed);
        let b: Vec<f64> = (0..n).map(|k| 1.0 + k as f64).collect();
        let scaled: Vec<f64> = b.iter().map(|v| alpha * v).collect();
        let x = m.solve(&b).unwrap();
        let y = m.solve(&scaled).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            prop_assert!((alpha * xi - yi).abs() < 1e-7 * (1.0 + xi.abs()));
        }
    }

    /// Complex field laws: multiplication distributes over addition.
    #[test]
    fn complex_distributive(
        ar in -100.0..100.0f64, ai in -100.0..100.0f64,
        br in -100.0..100.0f64, bi in -100.0..100.0f64,
        cr in -100.0..100.0f64, ci in -100.0..100.0f64,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let c = Complex::new(cr, ci);
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    /// |z·w| = |z|·|w| and arg respects conjugation.
    #[test]
    fn complex_modulus_multiplicative(
        zr in -100.0..100.0f64, zi in -100.0..100.0f64,
        wr in -100.0..100.0f64, wi in -100.0..100.0f64,
    ) {
        let z = Complex::new(zr, zi);
        let w = Complex::new(wr, wi);
        prop_assert!(((z * w).abs() - z.abs() * w.abs()).abs() < 1e-8 * (1.0 + z.abs() * w.abs()));
        prop_assert!((z.conj().arg() + z.arg()).abs() < 1e-9 || z.im == 0.0);
    }

    /// MOSFET stamp derivatives sum to zero (translation invariance of
    /// the device equations).
    #[test]
    fn stamp_derivatives_sum_to_zero(
        vd in -5.0..5.0f64,
        vg in -5.0..5.0f64,
        vs in -5.0..5.0f64,
        w in 5.0..500.0f64,
    ) {
        let m = Mosfet::new(
            Polarity::Nmos,
            Geometry::new_um(w, 5.0).unwrap(),
            &builtin::cmos_5um(),
        );
        let vb = vs.min(vd).min(-5.0);
        let s = mos_stamp(&m, vd, vg, vs, vb);
        let sum = s.d_dvd + s.d_dvg + s.d_dvs + s.d_dvb;
        let scale = [s.d_dvd, s.d_dvg, s.d_dvs, s.d_dvb]
            .iter()
            .fold(1e-12f64, |acc, v| acc.max(v.abs()));
        prop_assert!(sum.abs() < 1e-9 * scale.max(1.0), "sum {sum} scale {scale}");
    }

    /// A solved resistive ladder obeys KCL at every internal node and the
    /// end-to-end voltage division law.
    #[test]
    fn resistor_ladder_division(
        r_values in prop::collection::vec(10.0..1e6f64, 2..8),
        v_in in 0.1..100.0f64,
    ) {
        let mut c = Circuit::new("ladder");
        let top = c.node("n0");
        c.add_vsource("V1", top, c.ground(), SourceValue::dc(v_in)).unwrap();
        let mut prev = top;
        for (k, &r) in r_values.iter().enumerate() {
            let next = c.node(format!("n{}", k + 1));
            c.add_resistor(format!("R{k}"), prev, next, r).unwrap();
            prev = next;
        }
        // Terminate to ground.
        c.add_resistor("RT", prev, c.ground(), 1e3).unwrap();

        let sol = dc::solve(&c, &builtin::cmos_5um()).unwrap();
        // Voltages decrease monotonically down the ladder.
        let mut last = v_in;
        for k in 1..=r_values.len() {
            let v = sol.voltage(c.find_node(&format!("n{k}")).unwrap());
            prop_assert!(v <= last + 1e-9);
            prop_assert!(v >= -1e-9);
            last = v;
        }
        // End-to-end: current = Vin / ΣR, last node = I·RT. The solver's
        // gmin (1e-12 S per node) leaks ~R·gmin of relative error per
        // node, so the tolerance scales with the ladder impedance.
        let total: f64 = r_values.iter().sum::<f64>() + 1e3;
        let expected_last = v_in * 1e3 / total;
        let tol = 1e-9 + 10.0 * total * 1e-12;
        prop_assert!(
            (last / expected_last - 1.0).abs() < tol,
            "last {last} vs {expected_last}, tol {tol}"
        );
    }

    /// DC solve is invariant under source scaling for linear circuits.
    #[test]
    fn linear_circuit_scales(v in 0.1..50.0f64, k in 0.1..10.0f64) {
        let build = |vin: f64| {
            let mut c = Circuit::new("div");
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V", a, c.ground(), SourceValue::dc(vin)).unwrap();
            c.add_resistor("R1", a, b, 2.2e3).unwrap();
            c.add_resistor("R2", b, c.ground(), 4.7e3).unwrap();
            c
        };
        let p = builtin::cmos_5um();
        let c1 = build(v);
        let c2 = build(v * k);
        let n1 = c1.find_node("b").unwrap();
        let s1 = dc::solve(&c1, &p).unwrap().voltage(n1);
        let s2 = dc::solve(&c2, &p).unwrap().voltage(n1);
        prop_assert!((s2 / s1 / k - 1.0).abs() < 1e-9);
    }

    /// Bisection finds the inverter threshold wherever the sizing ratio
    /// puts it, and the result really produces the target output.
    #[test]
    fn inverter_threshold_bisection(wn in 5.0..40.0f64, wp in 5.0..100.0f64) {
        let p = builtin::cmos_5um();
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let out = c.node("out");
        let inp = c.node("in");
        let gnd = c.ground();
        c.add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0)).unwrap();
        c.add_vsource("VIN", inp, gnd, SourceValue::dc(2.5)).unwrap();
        c.add_mosfet("MN", Polarity::Nmos, Geometry::new_um(wn, 5.0).unwrap(), out, inp, gnd, gnd).unwrap();
        c.add_mosfet("MP", Polarity::Pmos, Geometry::new_um(wp, 5.0).unwrap(), out, inp, vdd, vdd).unwrap();
        let vth = sweep::bisect_input(&c, &p, "VIN", out, 2.5, 0.0, 5.0).unwrap();
        prop_assert!(vth > 1.0 && vth < 4.0, "threshold {vth}");
        let mut check = c.clone();
        check.set_source_dc("VIN", vth).unwrap();
        let vout = dc::solve(&check, &p).unwrap().voltage(out);
        prop_assert!((vout - 2.5).abs() < 1e-2, "vout {vout}");
    }
}
