//! Cooperative deadlines: a cheap, clonable token computation loops
//! check at their natural checkpoints (Newton iterations, plan steps,
//! style attempts) so a diverging job aborts *inside* the computation
//! instead of being abandoned on a detached thread.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a deadline check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineExceeded {
    /// The wall-clock budget ran out.
    TimedOut,
    /// The cancel token was set (e.g. the batch runner gave up on the
    /// attempt).
    Cancelled,
}

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineExceeded::TimedOut => write!(f, "deadline exceeded"),
            DeadlineExceeded::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl Error for DeadlineExceeded {}

/// An optional wall-clock budget plus an optional shared cancel flag.
/// The default ([`Deadline::none`]) never fires, so code can check
/// unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Deadline {
    /// A deadline that never fires.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A deadline `budget` from now.
    #[must_use]
    pub fn within(budget: Duration) -> Self {
        Self {
            at: Instant::now().checked_add(budget),
            cancel: None,
        }
    }

    /// Attaches a shared cancel flag; setting it trips every clone of
    /// this deadline at its next check.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// `true` when neither a budget nor a cancel flag is attached, so
    /// checks can never fail.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.at.is_none() && self.cancel.is_none()
    }

    /// Time left before the budget runs out; `None` without a budget.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The checkpoint call: cancel flag first (cheap, and the batch
    /// runner's signal), then the wall clock.
    ///
    /// # Errors
    ///
    /// [`DeadlineExceeded::Cancelled`] when the cancel flag is set,
    /// [`DeadlineExceeded::TimedOut`] when the budget has run out.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(DeadlineExceeded::Cancelled);
            }
        }
        if let Some(at) = self.at {
            if Instant::now() >= at {
                return Err(DeadlineExceeded::TimedOut);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deadline_never_fires() {
        let d = Deadline::none();
        assert!(d.is_unlimited());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn elapsed_budget_times_out() {
        let d = Deadline::within(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(d.check(), Err(DeadlineExceeded::TimedOut));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_passes() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(d.check().is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        assert!(!d.is_unlimited());
    }

    #[test]
    fn cancel_flag_trips_every_clone() {
        let flag = Arc::new(AtomicBool::new(false));
        let d = Deadline::within(Duration::from_secs(3600)).with_cancel(Arc::clone(&flag));
        let clone = d.clone();
        assert!(clone.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(d.check(), Err(DeadlineExceeded::Cancelled));
        assert_eq!(clone.check(), Err(DeadlineExceeded::Cancelled));
    }

    #[test]
    fn messages_are_stable() {
        assert_eq!(DeadlineExceeded::TimedOut.to_string(), "deadline exceeded");
        assert_eq!(DeadlineExceeded::Cancelled.to_string(), "cancelled");
    }
}
