//! Deterministic fault injection and cooperative deadlines for the
//! OASYS workspace.
//!
//! # The fault plane
//!
//! Production choke points carry named *fail points* — the `fail_point!`
//! macro compiled into `sim::dc`, the plan executor, the style-search
//! engine, and the batch driver. With no faults configured the whole
//! plane is one relaxed atomic load per site hit; configuring
//! `site=spec` pairs (via [`configure`], the `OASYS_FAULTS` environment
//! variable, or the CLI's `--faults` flag) arms it and injects panics,
//! typed errors, delays, or deterministic failure rates at the named
//! sites. See [`FaultSpec`] for the spec grammar and DESIGN.md §11 for
//! the site-naming convention.
//!
//! ```
//! use oasys_faults as faults;
//!
//! fn fallible() -> Result<u32, String> {
//!     faults::fail_point!("example.site", |msg: String| msg);
//!     Ok(7)
//! }
//!
//! assert_eq!(fallible(), Ok(7));
//! faults::set("example.site", faults::FaultSpec::FailOnce);
//! assert!(fallible().unwrap_err().contains("example.site"));
//! assert_eq!(fallible(), Ok(7));
//! faults::remove("example.site");
//! ```
//!
//! # Determinism
//!
//! Everything a fault does is a pure function of the spec and the
//! site's hit counter: `fail_once` fires on hit 1, `fail_rate(p,seed)`
//! hashes `(seed, hit)` — so a run with the same configuration and the
//! same hit order injects exactly the same faults, and a chaos test
//! that resumes a killed sweep reproduces it byte-for-byte.
//!
//! # Deadlines
//!
//! [`Deadline`] is the cooperative-cancellation half: a wall-clock
//! budget plus a shared cancel flag, threaded through `DesignContext`,
//! the plan executor, and the DC solver so a diverging job aborts at a
//! checkpoint inside the computation instead of being abandoned on a
//! detached thread.

mod deadline;
mod registry;
mod spec;

pub use deadline::{Deadline, DeadlineExceeded};
pub use registry::{
    armed, clear, configure, eval_err, eval_unit, fired, init_from_env, remove, set, FAULTS_ENV,
};
pub use spec::{FaultSpec, FaultSpecError};

/// A named fault-injection site.
///
/// Two forms:
///
/// * `fail_point!("site")` — unit form: honors `panic` and `delay(ms)`
///   specs; error-injecting specs are ignored (no error channel).
/// * `fail_point!("site", |msg: String| expr)` — error form, usable in
///   functions returning `Result<_, E>`: when the site's spec injects
///   an error, the closure maps the injected message to `E` and the
///   macro returns `Err` from the enclosing function. `panic` and
///   `delay` specs behave as in the unit form.
///
/// Disabled cost (no site configured anywhere): one relaxed atomic
/// load.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if $crate::armed() {
            $crate::eval_unit($site);
        }
    };
    ($site:expr, $map_err:expr) => {
        if $crate::armed() {
            if let ::std::option::Option::Some(msg) = $crate::eval_err($site) {
                return ::std::result::Result::Err(($map_err)(msg));
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guarded(site: &str) -> Result<u32, String> {
        fail_point!(site, |msg: String| format!("wrapped: {msg}"));
        Ok(1)
    }

    #[test]
    fn error_form_maps_injected_message() {
        assert_eq!(guarded("tests.macro.err"), Ok(1));
        set("tests.macro.err", FaultSpec::Err(Some("boom".to_owned())));
        assert_eq!(guarded("tests.macro.err"), Err("wrapped: boom".to_owned()));
        remove("tests.macro.err");
        assert_eq!(guarded("tests.macro.err"), Ok(1));
    }

    #[test]
    fn unit_form_ignores_error_specs() {
        set("tests.macro.unit", FaultSpec::Err(None));
        fail_point!("tests.macro.unit");
        remove("tests.macro.unit");
    }
}
