//! The fault-spec grammar: what a configured site does when hit.
//!
//! One spec per site, written as `site=spec` in `OASYS_FAULTS` or
//! `--faults`. The spec forms:
//!
//! | spec               | behavior on hit                                  |
//! |--------------------|--------------------------------------------------|
//! | `panic`            | panic with a message naming the site             |
//! | `err`              | inject an error (`err(msg)` sets the message)    |
//! | `delay(ms)`        | sleep `ms` milliseconds, then continue           |
//! | `fail_once`        | inject an error on the first hit only            |
//! | `fail_rate(p,seed)`| inject an error with probability `p`, derived    |
//! |                    | deterministically from `seed` and the hit count  |

use std::error::Error;
use std::fmt;

/// A parsed fault specification. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Panic at the site.
    Panic,
    /// Inject an error, with an optional custom message.
    Err(Option<String>),
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
    /// Inject an error on the first hit only; later hits pass through.
    FailOnce,
    /// Inject an error with probability `p` per hit, decided by a hash
    /// of `seed` and the site's hit counter — the same seed always
    /// fails the same hits.
    FailRate {
        /// Failure probability in `[0, 1]`.
        p: f64,
        /// Seed feeding the per-hit decision hash.
        seed: u64,
    },
}

/// Error from parsing a fault spec or a `site=spec` configuration list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    detail: String,
}

impl FaultSpecError {
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.detail)
    }
}

impl Error for FaultSpecError {}

impl FaultSpec {
    /// Parses one spec (the right-hand side of `site=spec`).
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] for unknown forms or malformed
    /// arguments.
    pub fn parse(text: &str) -> Result<Self, FaultSpecError> {
        let text = text.trim();
        if let Some(args) = call_args(text, "delay") {
            let ms: u64 = args.parse().map_err(|_| {
                FaultSpecError::new(format!("delay wants milliseconds, got `{args}`"))
            })?;
            return Ok(FaultSpec::Delay(ms));
        }
        if let Some(args) = call_args(text, "err") {
            return Ok(FaultSpec::Err(Some(args.to_owned())));
        }
        if let Some(args) = call_args(text, "fail_rate") {
            let (p_text, seed_text) = args.split_once(',').ok_or_else(|| {
                FaultSpecError::new(format!("fail_rate wants `(p,seed)`, got `({args})`"))
            })?;
            let p: f64 = p_text.trim().parse().map_err(|_| {
                FaultSpecError::new(format!("fail_rate probability `{p_text}` is not a number"))
            })?;
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultSpecError::new(format!(
                    "fail_rate probability {p} is outside [0, 1]"
                )));
            }
            let seed: u64 = seed_text.trim().parse().map_err(|_| {
                FaultSpecError::new(format!("fail_rate seed `{seed_text}` is not an integer"))
            })?;
            return Ok(FaultSpec::FailRate { p, seed });
        }
        match text {
            "panic" => Ok(FaultSpec::Panic),
            "err" => Ok(FaultSpec::Err(None)),
            "fail_once" => Ok(FaultSpec::FailOnce),
            other => Err(FaultSpecError::new(format!("unknown spec `{other}`"))),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::Panic => write!(f, "panic"),
            FaultSpec::Err(None) => write!(f, "err"),
            FaultSpec::Err(Some(msg)) => write!(f, "err({msg})"),
            FaultSpec::Delay(ms) => write!(f, "delay({ms})"),
            FaultSpec::FailOnce => write!(f, "fail_once"),
            FaultSpec::FailRate { p, seed } => write!(f, "fail_rate({p},{seed})"),
        }
    }
}

/// `call_args("delay(25)", "delay")` → `Some("25")`; `None` when `text`
/// is not a call of `name`.
fn call_args<'t>(text: &'t str, name: &str) -> Option<&'t str> {
    text.strip_prefix(name)?
        .strip_prefix('(')?
        .strip_suffix(')')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_form() {
        assert_eq!(FaultSpec::parse("panic").unwrap(), FaultSpec::Panic);
        assert_eq!(FaultSpec::parse("err").unwrap(), FaultSpec::Err(None));
        assert_eq!(
            FaultSpec::parse("err(disk on fire)").unwrap(),
            FaultSpec::Err(Some("disk on fire".to_owned()))
        );
        assert_eq!(FaultSpec::parse("delay(25)").unwrap(), FaultSpec::Delay(25));
        assert_eq!(FaultSpec::parse("fail_once").unwrap(), FaultSpec::FailOnce);
        assert_eq!(
            FaultSpec::parse("fail_rate(0.5,42)").unwrap(),
            FaultSpec::FailRate { p: 0.5, seed: 42 }
        );
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "panic",
            "err",
            "err(m)",
            "delay(3)",
            "fail_once",
            "fail_rate(0.25,7)",
        ] {
            let spec = FaultSpec::parse(text).unwrap();
            assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "explode",
            "delay",
            "delay(soon)",
            "delay(-1)",
            "fail_rate(2.0,1)",
            "fail_rate(0.5)",
            "fail_rate(p,s)",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
