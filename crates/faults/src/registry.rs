//! The global fault-site registry.
//!
//! Disabled cost is one relaxed atomic load per [`fail_point!`] hit: the
//! `ARMED` flag flips on only while at least one site is configured, and
//! the registry map is consulted only behind it.
//!
//! [`fail_point!`]: crate::fail_point

use crate::spec::{FaultSpec, FaultSpecError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{OnceLock, RwLock};

/// Environment variable holding a `site=spec,site=spec` configuration,
/// applied by [`init_from_env`].
pub const FAULTS_ENV: &str = "OASYS_FAULTS";

static ARMED: AtomicBool = AtomicBool::new(false);

struct SiteState {
    spec: FaultSpec,
    hits: u64,
}

fn registry() -> &'static RwLock<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// `true` while any fault site is configured — the fast path every
/// [`fail_point!`] checks before touching the registry.
///
/// [`fail_point!`]: crate::fail_point
#[inline]
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Configures one site, replacing any earlier spec (and resetting its
/// hit counter). Arms the plane.
pub fn set(site: impl Into<String>, spec: FaultSpec) {
    let mut map = registry()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.insert(site.into(), SiteState { spec, hits: 0 });
    ARMED.store(true, Ordering::Relaxed);
}

/// Removes one site's configuration. Disarms the plane when it was the
/// last one.
pub fn remove(site: &str) {
    let mut map = registry()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.remove(site);
    if map.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Removes every configured site and disarms the plane.
pub fn clear() {
    let mut map = registry()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Parses and applies a `site=spec,site=spec` list (the `OASYS_FAULTS` /
/// `--faults` syntax). Empty input configures nothing. Returns the
/// number of sites configured.
///
/// # Errors
///
/// Returns [`FaultSpecError`] for entries without `=` or with a spec
/// [`FaultSpec::parse`] rejects; earlier entries in the list stay
/// applied.
pub fn configure(text: &str) -> Result<usize, FaultSpecError> {
    let mut count = 0;
    for entry in split_entries(text) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, spec_text) = entry
            .split_once('=')
            .ok_or_else(|| FaultSpecError::new(format!("expected `site=spec`, got `{entry}`")))?;
        let spec = FaultSpec::parse(spec_text)?;
        set(site.trim(), spec);
        count += 1;
    }
    Ok(count)
}

/// Splits a configuration list on commas that are *outside* parentheses,
/// so `a=fail_rate(0.5,7),b=err` yields two entries.
fn split_entries(text: &str) -> Vec<&str> {
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, ch) in text.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                entries.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    entries.push(&text[start..]);
    entries
}

/// Applies the configuration in the `OASYS_FAULTS` environment variable,
/// if set. Call once at process startup (the `oasys` CLI does). Returns
/// the number of sites configured.
///
/// # Errors
///
/// Returns [`FaultSpecError`] when the variable's value does not parse.
pub fn init_from_env() -> Result<usize, FaultSpecError> {
    match std::env::var(FAULTS_ENV) {
        Ok(value) => configure(&value),
        Err(_) => Ok(0),
    }
}

/// What a hit at a configured site resolved to.
enum Hit {
    Continue,
    Error(String),
    Panic(String),
    Delay(u64),
}

/// Registers a hit at `site` and decides the action. Increments the
/// site's hit counter even when the spec decides not to fire.
fn hit(site: &str) -> Hit {
    let mut map = registry()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(state) = map.get_mut(site) else {
        return Hit::Continue;
    };
    state.hits += 1;
    let message = |custom: &Option<String>| {
        custom
            .clone()
            .unwrap_or_else(|| format!("injected fault at {site}"))
    };
    match &state.spec {
        FaultSpec::Panic => Hit::Panic(format!("injected panic at {site}")),
        FaultSpec::Err(msg) => Hit::Error(message(msg)),
        FaultSpec::Delay(ms) => Hit::Delay(*ms),
        FaultSpec::FailOnce => {
            if state.hits == 1 {
                Hit::Error(format!("injected fault at {site} (once)"))
            } else {
                Hit::Continue
            }
        }
        FaultSpec::FailRate { p, seed } => {
            if unit_hash(*seed, state.hits) < *p {
                Hit::Error(format!("injected fault at {site} (hit {})", state.hits))
            } else {
                Hit::Continue
            }
        }
    }
}

/// Evaluates a unit-form fail point: honors `panic` and `delay(ms)`;
/// error-injecting specs configured on a unit site are ignored (the
/// site has no error channel to inject into).
pub fn eval_unit(site: &str) {
    match hit(site) {
        Hit::Panic(msg) => panic!("{msg}"),
        Hit::Delay(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Hit::Continue | Hit::Error(_) => {}
    }
}

/// Evaluates an error-form fail point: `Some(message)` when an error
/// should be injected; `panic`/`delay` specs act as in [`eval_unit`].
#[must_use]
pub fn eval_err(site: &str) -> Option<String> {
    match hit(site) {
        Hit::Panic(msg) => panic!("{msg}"),
        Hit::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Hit::Error(msg) => Some(msg),
        Hit::Continue => None,
    }
}

/// `true` when the site's spec decides this hit should fire — for call
/// sites that implement a custom failure (e.g. a torn checkpoint write)
/// instead of returning an error. `err`, `fail_once` and `fail_rate`
/// specs drive it; `delay` sleeps and reports `false`.
#[must_use]
pub fn fired(site: &str) -> bool {
    if !armed() {
        return false;
    }
    eval_err(site).is_some()
}

/// SplitMix64-style hash of `(seed, n)` mapped to `[0, 1)` — the
/// deterministic per-hit coin for `fail_rate`.
fn unit_hash(seed: u64, n: u64) -> f64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    #[allow(clippy::cast_precision_loss)]
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    unit
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; each test uses its own site names
    // so the suite stays order- and parallelism-independent.

    #[test]
    fn unconfigured_sites_are_inert() {
        assert_eq!(eval_err("tests.registry.nosuch"), None);
        eval_unit("tests.registry.nosuch");
        assert!(!fired("tests.registry.nosuch"));
    }

    #[test]
    fn err_fires_every_hit_until_removed() {
        set("tests.registry.err", FaultSpec::Err(None));
        assert!(armed());
        assert!(eval_err("tests.registry.err").is_some());
        assert!(eval_err("tests.registry.err").is_some());
        remove("tests.registry.err");
        assert_eq!(eval_err("tests.registry.err"), None);
    }

    #[test]
    fn err_message_names_the_site() {
        set("tests.registry.named", FaultSpec::Err(None));
        let msg = eval_err("tests.registry.named").unwrap();
        assert!(msg.contains("tests.registry.named"), "{msg}");
        remove("tests.registry.named");
    }

    #[test]
    fn fail_once_fires_exactly_once() {
        set("tests.registry.once", FaultSpec::FailOnce);
        assert!(eval_err("tests.registry.once").is_some());
        assert_eq!(eval_err("tests.registry.once"), None);
        assert_eq!(eval_err("tests.registry.once"), None);
        remove("tests.registry.once");
    }

    #[test]
    fn fail_rate_is_deterministic_per_seed() {
        let run = || -> Vec<bool> {
            set(
                "tests.registry.rate",
                FaultSpec::FailRate { p: 0.5, seed: 7 },
            );
            let fires = (0..32)
                .map(|_| eval_err("tests.registry.rate").is_some())
                .collect();
            remove("tests.registry.rate");
            fires
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must fail the same hits");
        assert!(
            a.iter().any(|f| *f) && a.iter().any(|f| !*f),
            "p=0.5 over 32 hits mixes"
        );
    }

    #[test]
    fn fail_rate_extremes() {
        set(
            "tests.registry.always",
            FaultSpec::FailRate { p: 1.0, seed: 1 },
        );
        set(
            "tests.registry.never",
            FaultSpec::FailRate { p: 0.0, seed: 1 },
        );
        assert!(eval_err("tests.registry.always").is_some());
        assert_eq!(eval_err("tests.registry.never"), None);
        remove("tests.registry.always");
        remove("tests.registry.never");
    }

    #[test]
    #[should_panic(expected = "injected panic at tests.registry.panic")]
    fn panic_spec_panics_with_site_name() {
        set("tests.registry.panic", FaultSpec::Panic);
        // Clean up from the panicking thread is impossible; the site name
        // is unique to this test so no other test sees it.
        eval_unit("tests.registry.panic");
    }

    #[test]
    fn delay_spec_sleeps_then_continues() {
        set("tests.registry.delay", FaultSpec::Delay(20));
        let start = std::time::Instant::now();
        eval_unit("tests.registry.delay");
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(
            eval_err("tests.registry.delay"),
            None,
            "delay is not an error"
        );
        remove("tests.registry.delay");
    }

    #[test]
    fn configure_parses_lists_and_reports_errors() {
        let n = configure("tests.registry.a=err, tests.registry.b=fail_once").unwrap();
        assert_eq!(n, 2);
        assert!(eval_err("tests.registry.a").is_some());
        assert!(fired("tests.registry.b"));
        remove("tests.registry.a");
        remove("tests.registry.b");

        assert_eq!(configure("").unwrap(), 0);
        assert!(configure("justasite").is_err());
        assert!(configure("site=explode").is_err());
    }

    #[test]
    fn configure_keeps_commas_inside_parentheses() {
        let n = configure("tests.registry.r=fail_rate(1.0,3),tests.registry.d=delay(1)").unwrap();
        assert_eq!(n, 2);
        assert!(eval_err("tests.registry.r").is_some());
        assert_eq!(eval_err("tests.registry.d"), None);
        remove("tests.registry.r");
        remove("tests.registry.d");
    }
}
