//! Typed engineering quantities for the OASYS analog-synthesis reproduction.
//!
//! Analog design equations mix volts, amps, farads, hertz and micrometers
//! freely; confusing a `Cox` in F/m² with one in fF/µm² silently ruins a
//! sizing computation. This crate provides thin `f64` newtypes for the
//! quantities that cross crate boundaries (specifications, process
//! parameters, datasheets), each carrying:
//!
//! * constructors from the natural engineering magnitude
//!   (e.g. [`Capacitance::from_pico`]),
//! * accessors back to SI base units ([`Capacitance::farads`]),
//! * arithmetic against scalars and like quantities,
//! * engineering-notation [`std::fmt::Display`] (`"5.00 pF"`), and
//! * SI-suffix parsing (`"5p"`, `"2.2meg"`, `"100n"`) via [`std::str::FromStr`].
//!
//! A handful of cross-unit operations used by the device equations are also
//! provided (`V / Ω = A`, `A / V = S`, `S / F` → rad/s, …).
//!
//! # Examples
//!
//! ```
//! use oasys_units::{Capacitance, Voltage, Decibels};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let load: Capacitance = "5p".parse()?;
//! assert_eq!(load, Capacitance::from_pico(5.0));
//! assert_eq!(load.to_string(), "5.00 pF");
//!
//! let gain = Decibels::new(40.0);
//! assert!((gain.to_voltage_ratio() - 100.0).abs() < 1e-9);
//!
//! let v = Voltage::new(2.5) + Voltage::from_milli(500.0);
//! assert!((v.volts() - 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod dimension;
mod parse;

pub use dimension::Dimension;
pub use parse::ParseQuantityError;

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Formats a raw SI magnitude in engineering notation with the given unit
/// symbol, e.g. `eng(5.0e-12, "F") == "5.00 pF"`.
///
/// Exponents outside the femto–tera range fall back to scientific notation.
///
/// # Examples
///
/// ```
/// assert_eq!(oasys_units::eng(5.0e-12, "F"), "5.00 pF");
/// assert_eq!(oasys_units::eng(2.2e6, "Hz"), "2.20 MHz");
/// assert_eq!(oasys_units::eng(0.0, "V"), "0.00 V");
/// ```
pub fn eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0.00 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    let magnitude = value.abs();
    let exp3 = (magnitude.log10() / 3.0).floor() as i32;
    let exp3 = exp3.clamp(-5, 4);
    let prefix = match exp3 {
        -5 => "f",
        -4 => "p",
        -3 => "n",
        -2 => "µ",
        -1 => "m",
        0 => "",
        1 => "k",
        2 => "M",
        3 => "G",
        4 => "T",
        _ => unreachable!("exp3 clamped to [-5, 4]"),
    };
    let scaled = value / 10f64.powi(exp3 * 3);
    // Three-to-four significant digits, matching datasheet conventions.
    if scaled.abs() >= 100.0 {
        format!("{scaled:.1} {prefix}{unit}")
    } else {
        format!("{scaled:.2} {prefix}{unit}")
    }
}

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $base:ident
        $(, alt: [$(($alt_ctor:ident, $alt_get:ident, $scale:expr)),* $(,)?])?
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a magnitude in SI base units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the magnitude in SI base units.
            #[must_use]
            pub const fn $base(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of this quantity.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the magnitude is a finite number.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the dimensionless ratio `self / other`.
            ///
            /// Dividing by a zero quantity yields an infinite or NaN ratio,
            /// exactly as `f64` division does.
            #[must_use]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }

            $($(
                /// Creates a quantity from the indicated engineering magnitude.
                #[must_use]
                pub fn $alt_ctor(value: f64) -> Self {
                    Self(value * $scale)
                }

                /// Returns the magnitude in the indicated engineering unit.
                #[must_use]
                pub fn $alt_get(self) -> f64 {
                    self.0 / $scale
                }
            )*)?
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&eng(self.0, $unit))
            }
        }

        impl FromStr for $name {
            type Err = ParseQuantityError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                parse::parse_si(s, $unit).map(Self)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// An electric potential in volts.
    Voltage, "V", volts,
    alt: [(from_milli, millivolts, 1e-3), (from_micro, microvolts, 1e-6)]
);

quantity!(
    /// An electric current in amperes.
    Current, "A", amps,
    alt: [
        (from_milli, milliamps, 1e-3),
        (from_micro, microamps, 1e-6),
        (from_nano, nanoamps, 1e-9),
    ]
);

quantity!(
    /// A capacitance in farads.
    Capacitance, "F", farads,
    alt: [
        (from_pico, picofarads, 1e-12),
        (from_femto, femtofarads, 1e-15),
        (from_nano, nanofarads, 1e-9),
    ]
);

quantity!(
    /// A resistance in ohms.
    Resistance, "Ω", ohms,
    alt: [(from_kilo, kilohms, 1e3), (from_mega, megohms, 1e6)]
);

quantity!(
    /// A frequency in hertz.
    Frequency, "Hz", hertz,
    alt: [(from_kilo, kilohertz, 1e3), (from_mega, megahertz, 1e6), (from_giga, gigahertz, 1e9)]
);

quantity!(
    /// A transconductance in siemens.
    Conductance, "S", siemens,
    alt: [(from_micro, microsiemens, 1e-6), (from_milli, millisiemens, 1e-3)]
);

quantity!(
    /// A power in watts.
    Power, "W", watts,
    alt: [(from_milli, milliwatts, 1e-3), (from_micro, microwatts, 1e-6)]
);

quantity!(
    /// A length in meters. Device geometry is usually expressed in µm.
    Length, "m", meters,
    alt: [(from_micro, micrometers, 1e-6), (from_nano, nanometers, 1e-9)]
);

quantity!(
    /// An area in square meters. Layout area is usually expressed in µm².
    Area, "m²", square_meters,
    alt: [(from_square_micro, square_micrometers, 1e-12)]
);

quantity!(
    /// A slew rate in volts per second. Datasheets quote V/µs.
    SlewRate, "V/s", volts_per_second,
    alt: [(from_volts_per_micro, volts_per_microsecond, 1e6)]
);

quantity!(
    /// A time duration in seconds.
    Time, "s", seconds,
    alt: [(from_micro, microseconds, 1e-6), (from_nano, nanoseconds, 1e-9)]
);

impl Div<Resistance> for Voltage {
    type Output = Current;
    fn div(self, rhs: Resistance) -> Current {
        Current::new(self.volts() / rhs.ohms())
    }
}

impl Div<Current> for Voltage {
    type Output = Resistance;
    fn div(self, rhs: Current) -> Resistance {
        Resistance::new(self.volts() / rhs.amps())
    }
}

impl Mul<Resistance> for Current {
    type Output = Voltage;
    fn mul(self, rhs: Resistance) -> Voltage {
        Voltage::new(self.amps() * rhs.ohms())
    }
}

impl Mul<Current> for Resistance {
    type Output = Voltage;
    fn mul(self, rhs: Current) -> Voltage {
        rhs * self
    }
}

impl Div<Voltage> for Current {
    type Output = Conductance;
    fn div(self, rhs: Voltage) -> Conductance {
        Conductance::new(self.amps() / rhs.volts())
    }
}

impl Mul<Voltage> for Conductance {
    type Output = Current;
    fn mul(self, rhs: Voltage) -> Current {
        Current::new(self.siemens() * rhs.volts())
    }
}

impl Mul<Current> for Voltage {
    type Output = Power;
    fn mul(self, rhs: Current) -> Power {
        Power::new(self.volts() * rhs.amps())
    }
}

impl Mul<Length> for Length {
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area::new(self.meters() * rhs.meters())
    }
}

impl Conductance {
    /// Reciprocal conductance as a resistance.
    ///
    /// A zero conductance yields an infinite resistance.
    ///
    /// # Examples
    ///
    /// ```
    /// use oasys_units::Conductance;
    /// let g = Conductance::from_micro(100.0);
    /// assert!((g.to_resistance().kilohms() - 10.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn to_resistance(self) -> Resistance {
        Resistance::new(1.0 / self.siemens())
    }
}

impl Resistance {
    /// Reciprocal resistance as a conductance.
    ///
    /// A zero resistance yields an infinite conductance.
    #[must_use]
    pub fn to_conductance(self) -> Conductance {
        Conductance::new(1.0 / self.ohms())
    }
}

impl Frequency {
    /// The angular frequency `2πf` in radians per second.
    #[must_use]
    pub fn radians_per_second(self) -> f64 {
        2.0 * std::f64::consts::PI * self.hertz()
    }

    /// Creates a frequency from an angular frequency in radians per second.
    #[must_use]
    pub fn from_radians_per_second(omega: f64) -> Self {
        Self::new(omega / (2.0 * std::f64::consts::PI))
    }
}

/// A voltage gain (or loss) expressed in decibels (`20·log10` convention).
///
/// # Examples
///
/// ```
/// use oasys_units::Decibels;
/// let g = Decibels::from_voltage_ratio(1000.0);
/// assert!((g.db() - 60.0).abs() < 1e-9);
/// assert!((g.to_voltage_ratio() - 1000.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Decibels(f64);

impl Decibels {
    /// Zero decibels (unity gain).
    pub const ZERO: Self = Self(0.0);

    /// Creates a value directly in decibels.
    #[must_use]
    pub const fn new(db: f64) -> Self {
        Self(db)
    }

    /// Returns the value in decibels.
    #[must_use]
    pub const fn db(self) -> f64 {
        self.0
    }

    /// Converts a linear voltage ratio to decibels (`20·log10(ratio)`).
    ///
    /// Non-positive ratios produce `-inf` or NaN, following `f64::log10`.
    #[must_use]
    pub fn from_voltage_ratio(ratio: f64) -> Self {
        Self(20.0 * ratio.log10())
    }

    /// Converts back to a linear voltage ratio.
    #[must_use]
    pub fn to_voltage_ratio(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

impl fmt::Debug for Decibels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Decibels({})", self.0)
    }
}

impl fmt::Display for Decibels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

impl Add for Decibels {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Decibels {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Neg for Decibels {
    type Output = Self;
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

/// An angle in degrees, used for phase margins and phase responses.
///
/// # Examples
///
/// ```
/// use oasys_units::Degrees;
/// let pm = Degrees::new(60.0);
/// assert!((pm.radians() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Degrees(f64);

impl Degrees {
    /// Zero degrees.
    pub const ZERO: Self = Self(0.0);

    /// Creates an angle in degrees.
    #[must_use]
    pub const fn new(deg: f64) -> Self {
        Self(deg)
    }

    /// Returns the angle in degrees.
    #[must_use]
    pub const fn degrees(self) -> f64 {
        self.0
    }

    /// Returns the angle in radians.
    #[must_use]
    pub fn radians(self) -> f64 {
        self.0.to_radians()
    }

    /// Creates an angle from radians.
    #[must_use]
    pub fn from_radians(rad: f64) -> Self {
        Self(rad.to_degrees())
    }
}

impl fmt::Debug for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Degrees({})", self.0)
    }
}

impl fmt::Display for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.0)
    }
}

impl Add for Degrees {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Degrees {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Neg for Degrees {
    type Output = Self;
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formats_common_magnitudes() {
        assert_eq!(eng(5.0e-12, "F"), "5.00 pF");
        assert_eq!(eng(2.5, "V"), "2.50 V");
        assert_eq!(eng(1.0e6, "Hz"), "1.00 MHz");
        assert_eq!(eng(-3.3e-3, "A"), "-3.30 mA");
        assert_eq!(eng(0.0, "V"), "0.00 V");
        assert_eq!(eng(999.0, "Ω"), "999.0 Ω");
    }

    #[test]
    fn eng_handles_extremes() {
        // Outside femto..tera the prefix clamps rather than panicking.
        assert!(eng(1e20, "Hz").contains('T'));
        assert!(eng(1e-20, "F").contains('f'));
        assert!(eng(f64::INFINITY, "V").contains("inf"));
    }

    #[test]
    fn voltage_arithmetic() {
        let a = Voltage::new(1.5);
        let b = Voltage::from_milli(500.0);
        assert!(((a + b).volts() - 2.0).abs() < 1e-12);
        assert!(((a - b).volts() - 1.0).abs() < 1e-12);
        assert!(((a * 2.0).volts() - 3.0).abs() < 1e-12);
        assert!(((a / 3.0).volts() - 0.5).abs() < 1e-12);
        assert!(((-a).volts() + 1.5).abs() < 1e-12);
    }

    #[test]
    fn ohms_law_cross_units() {
        let v = Voltage::new(5.0);
        let r = Resistance::from_kilo(1.0);
        let i = v / r;
        assert!((i.milliamps() - 5.0).abs() < 1e-9);
        assert!(((i * r).volts() - 5.0).abs() < 1e-9);
        assert!(((v / i).ohms() - 1000.0).abs() < 1e-6);
        let g = i / v;
        assert!((g.millisiemens() - 1.0).abs() < 1e-9);
        let p = v * i;
        assert!((p.milliwatts() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn conductance_resistance_reciprocals() {
        let g = Conductance::from_micro(50.0);
        let r = g.to_resistance();
        assert!((r.kilohms() - 20.0).abs() < 1e-9);
        assert!((r.to_conductance().microsiemens() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_angular_roundtrip() {
        let f = Frequency::from_mega(1.0);
        let w = f.radians_per_second();
        let f2 = Frequency::from_radians_per_second(w);
        assert!((f.ratio(f2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decibel_roundtrip() {
        for ratio in [1.0, 10.0, 316.2278, 1e5] {
            let db = Decibels::from_voltage_ratio(ratio);
            assert!((db.to_voltage_ratio() / ratio - 1.0).abs() < 1e-9);
        }
        assert!((Decibels::from_voltage_ratio(100.0).db() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn degrees_radians_roundtrip() {
        let d = Degrees::new(45.0);
        assert!((d.radians() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((Degrees::from_radians(d.radians()).degrees() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn length_area_product() {
        let w = Length::from_micro(10.0);
        let l = Length::from_micro(5.0);
        let a = w * l;
        assert!((a.square_micrometers() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn slew_rate_units() {
        let sr = SlewRate::from_volts_per_micro(2.0);
        assert!((sr.volts_per_second() - 2.0e6).abs() < 1e-3);
    }

    #[test]
    fn min_max_abs() {
        let a = Current::from_micro(10.0);
        let b = Current::from_micro(-20.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!((b.abs().microamps() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_currents() {
        let total: Current = [10.0, 20.0, 30.0]
            .iter()
            .map(|&ua| Current::from_micro(ua))
            .sum();
        assert!((total.microamps() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(Capacitance::from_pico(5.0).to_string(), "5.00 pF");
        assert_eq!(Current::from_micro(25.0).to_string(), "25.00 µA");
        assert_eq!(Decibels::new(66.0).to_string(), "66.0 dB");
        assert_eq!(Degrees::new(32.0).to_string(), "32.0°");
    }

    #[test]
    fn debug_is_nonempty_and_named() {
        let s = format!("{:?}", Voltage::new(1.0));
        assert!(s.contains("Voltage"));
    }

    #[test]
    fn quantities_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Voltage>();
        assert_send_sync::<Decibels>();
        assert_send_sync::<Degrees>();
    }
}
