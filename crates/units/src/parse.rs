//! SPICE-style SI-suffix parsing for engineering quantities.
//!
//! Accepts the customary SPICE magnitude suffixes (`f p n u m k meg g t`,
//! case-insensitive, with `µ` accepted for `u`) optionally followed by the
//! unit symbol, e.g. `"5p"`, `"5pF"`, `"2.2meg"`, `"100 n"`.

use std::error::Error;
use std::fmt;

/// Error returned when a quantity string cannot be parsed.
///
/// # Examples
///
/// ```
/// use oasys_units::Capacitance;
/// let err = "abc".parse::<Capacitance>().unwrap_err();
/// assert!(err.to_string().contains("invalid quantity"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuantityError {
    input: String,
    reason: &'static str,
}

impl ParseQuantityError {
    fn new(input: &str, reason: &'static str) -> Self {
        Self {
            input: input.to_owned(),
            reason,
        }
    }
}

impl fmt::Display for ParseQuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid quantity `{}`: {}", self.input, self.reason)
    }
}

impl Error for ParseQuantityError {}

/// Parses `input` as a magnitude with an optional SI suffix and optional
/// trailing `unit` symbol, returning the value in SI base units.
pub(crate) fn parse_si(input: &str, unit: &str) -> Result<f64, ParseQuantityError> {
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Err(ParseQuantityError::new(input, "empty string"));
    }

    // Split the leading numeric part from the suffix.
    let numeric_end = trimmed
        .char_indices()
        .take_while(|&(i, c)| {
            c.is_ascii_digit()
                || c == '.'
                || c == '-'
                || c == '+'
                // Exponent marker only counts as numeric when followed by a
                // digit or sign; otherwise it's an SI/unit suffix like "E".
                || (matches!(c, 'e' | 'E')
                    && trimmed[i + c.len_utf8()..]
                        .chars()
                        .next()
                        .is_some_and(|n| n.is_ascii_digit() || n == '-' || n == '+'))
        })
        .last()
        .map_or(0, |(i, c)| i + c.len_utf8());

    let (num_str, rest) = trimmed.split_at(numeric_end);
    let value: f64 = num_str
        .parse()
        .map_err(|_| ParseQuantityError::new(input, "no numeric magnitude"))?;

    let suffix = rest.trim();
    let multiplier = match_suffix(suffix, unit)
        .ok_or_else(|| ParseQuantityError::new(input, "unrecognized suffix"))?;
    let scaled = value * multiplier;
    // `f64::from_str` happily yields ±inf for overflowing exponents
    // ("9e999"); a hostile or typo'd input must not smuggle a non-finite
    // magnitude into the sizing equations.
    if !scaled.is_finite() {
        return Err(ParseQuantityError::new(input, "non-finite magnitude"));
    }
    Ok(scaled)
}

/// Maps an SI suffix (with optional trailing unit symbol) to a multiplier.
///
/// Follows the SPICE convention: the magnitude prefix, when present, is
/// matched first (`meg` before `m`), and whatever follows it must be the
/// unit symbol (or nothing). `"1f"` with unit `F` is therefore one
/// femtofarad, not one farad; a bare `"1F"` without a prefix is one farad
/// because the suffix then matches the unit symbol exactly.
fn match_suffix(suffix: &str, unit: &str) -> Option<f64> {
    let lower = suffix.to_lowercase().replace('µ', "u");
    let unit_lower = unit.to_lowercase();
    if lower.is_empty() {
        return Some(1.0);
    }

    // Longest prefixes first so `meg` is not read as milli.
    const PREFIXES: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (prefix, factor) in PREFIXES {
        if let Some(rest) = lower.strip_prefix(prefix) {
            let rest = rest.trim();
            if rest.is_empty() || rest == unit_lower {
                return Some(factor);
            }
        }
    }
    // No magnitude prefix: the suffix must be exactly the unit symbol.
    (lower == unit_lower).then_some(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_si("5", "F").unwrap(), 5.0);
        assert_eq!(parse_si("-2.5", "V").unwrap(), -2.5);
        assert_eq!(parse_si("1e3", "Hz").unwrap(), 1000.0);
        assert_eq!(parse_si("1.5e-6", "A").unwrap(), 1.5e-6);
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(parse_si("5p", "F").unwrap(), 5e-12);
        assert_eq!(parse_si("5pF", "F").unwrap(), 5e-12);
        assert!((parse_si("100n", "A").unwrap() / 100e-9 - 1.0).abs() < 1e-12);
        assert_eq!(parse_si("2.2meg", "Hz").unwrap(), 2.2e6);
        assert_eq!(parse_si("1k", "Ω").unwrap(), 1e3);
        assert_eq!(parse_si("3u", "m").unwrap(), 3e-6);
        assert_eq!(parse_si("3µ", "m").unwrap(), 3e-6);
        assert_eq!(parse_si("1f", "F").unwrap(), 1e-15);
        assert_eq!(parse_si("4g", "Hz").unwrap(), 4e9);
        assert_eq!(parse_si("1t", "Hz").unwrap(), 1e12);
    }

    #[test]
    fn whitespace_and_case() {
        assert_eq!(parse_si("  5 P ", "F").unwrap(), 5e-12);
        assert_eq!(parse_si("2.2MEG", "Hz").unwrap(), 2.2e6);
        assert_eq!(parse_si("10 pf", "F").unwrap(), 10e-12);
    }

    #[test]
    fn unit_symbol_alone_is_unity() {
        assert_eq!(parse_si("5V", "V").unwrap(), 5.0);
        assert_eq!(parse_si("60Hz", "Hz").unwrap(), 60.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_si("", "V").is_err());
        assert!(parse_si("abc", "V").is_err());
        assert!(parse_si("5x", "V").is_err());
        assert!(parse_si("--5", "V").is_err());
    }

    #[test]
    fn rejects_non_finite_magnitudes() {
        assert!(parse_si("9e999", "V").is_err(), "overflowing exponent");
        assert!(parse_si("-9e999", "V").is_err());
        assert!(parse_si("inf", "V").is_err());
        assert!(parse_si("NaN", "V").is_err());
    }

    #[test]
    fn error_is_displayable() {
        let err = parse_si("zzz", "V").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("zzz"));
        assert!(!msg.is_empty());
    }
}
