//! Physical dimensions as exponent vectors, for static unit checking.
//!
//! The quantity newtypes in this crate give *runtime* values their units;
//! [`Dimension`] gives the **static analyzers** a way to talk about units
//! without a value attached. A dimension is a vector of integer exponents
//! over a four-element basis chosen for analog design — volts, amperes,
//! seconds, micrometers — which spans every quantity this workspace uses:
//! resistance is `V·A⁻¹`, capacitance is `A·s·V⁻¹`, slew rate is `V·s⁻¹`,
//! area is `µm²`, and so on.
//!
//! Dimensions multiply and divide by adding and subtracting exponents, so
//! an abstract interpreter can propagate them through plan arithmetic and
//! flag an addition whose operands disagree — the static analogue of the
//! runtime `V / Ω = A` impls on the quantity types.
//!
//! # Examples
//!
//! ```
//! use oasys_units::Dimension;
//!
//! // Ohm's law, statically: V / A = Ω.
//! let ohms = Dimension::VOLTAGE.div(Dimension::CURRENT);
//! assert_eq!(ohms, Dimension::RESISTANCE);
//!
//! // gm · Vov = I.
//! let i = Dimension::CONDUCTANCE.mul(Dimension::VOLTAGE);
//! assert_eq!(i, Dimension::CURRENT);
//!
//! assert_eq!(Dimension::RESISTANCE.to_string(), "V·A^-1");
//! assert!(Dimension::NONE.is_none());
//! ```

use std::fmt;

/// A physical dimension: exponents over the (V, A, s, µm) basis.
///
/// `Dimension::NONE` (all exponents zero) is the dimensionless unit —
/// ratios, counts, gains. Construct compound dimensions with
/// [`Dimension::mul`], [`Dimension::div`], [`Dimension::recip`] and
/// [`Dimension::pow`], or start from the named constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dimension {
    /// Exponent of volts.
    volt: i16,
    /// Exponent of amperes.
    amp: i16,
    /// Exponent of seconds.
    second: i16,
    /// Exponent of micrometers.
    meter: i16,
}

impl Dimension {
    /// Dimensionless: ratios, gains, counts.
    pub const NONE: Self = Self::new(0, 0, 0, 0);
    /// Volts.
    pub const VOLTAGE: Self = Self::new(1, 0, 0, 0);
    /// Amperes.
    pub const CURRENT: Self = Self::new(0, 1, 0, 0);
    /// Seconds.
    pub const TIME: Self = Self::new(0, 0, 1, 0);
    /// Micrometers.
    pub const LENGTH: Self = Self::new(0, 0, 0, 1);
    /// Square micrometers.
    pub const AREA: Self = Self::new(0, 0, 0, 2);
    /// Hertz (s⁻¹).
    pub const FREQUENCY: Self = Self::new(0, 0, -1, 0);
    /// Ohms (V·A⁻¹).
    pub const RESISTANCE: Self = Self::new(1, -1, 0, 0);
    /// Siemens (A·V⁻¹).
    pub const CONDUCTANCE: Self = Self::new(-1, 1, 0, 0);
    /// Farads (A·s·V⁻¹).
    pub const CAPACITANCE: Self = Self::new(-1, 1, 1, 0);
    /// Watts (V·A).
    pub const POWER: Self = Self::new(1, 1, 0, 0);
    /// Volts per second.
    pub const SLEW_RATE: Self = Self::new(1, 0, -1, 0);

    /// A dimension from raw basis exponents (volts, amperes, seconds,
    /// micrometers).
    #[must_use]
    pub const fn new(volt: i16, amp: i16, second: i16, meter: i16) -> Self {
        Self {
            volt,
            amp,
            second,
            meter,
        }
    }

    /// True for the dimensionless unit.
    #[must_use]
    pub const fn is_none(self) -> bool {
        self.volt == 0 && self.amp == 0 && self.second == 0 && self.meter == 0
    }

    /// The dimension of a product: exponents add (saturating, so
    /// pathological chains stay panic-free).
    #[must_use]
    pub const fn mul(self, rhs: Self) -> Self {
        Self {
            volt: self.volt.saturating_add(rhs.volt),
            amp: self.amp.saturating_add(rhs.amp),
            second: self.second.saturating_add(rhs.second),
            meter: self.meter.saturating_add(rhs.meter),
        }
    }

    /// The dimension of a quotient: exponents subtract.
    #[must_use]
    pub const fn div(self, rhs: Self) -> Self {
        self.mul(rhs.recip())
    }

    /// The dimension of a reciprocal: exponents negate.
    #[must_use]
    pub const fn recip(self) -> Self {
        Self {
            volt: self.volt.saturating_neg(),
            amp: self.amp.saturating_neg(),
            second: self.second.saturating_neg(),
            meter: self.meter.saturating_neg(),
        }
    }

    /// The dimension raised to an integer power.
    #[must_use]
    pub const fn pow(self, n: i16) -> Self {
        Self {
            volt: self.volt.saturating_mul(n),
            amp: self.amp.saturating_mul(n),
            second: self.second.saturating_mul(n),
            meter: self.meter.saturating_mul(n),
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("dimensionless");
        }
        let mut first = true;
        for (symbol, exp) in [
            ("V", self.volt),
            ("A", self.amp),
            ("s", self.second),
            ("um", self.meter),
        ] {
            if exp == 0 {
                continue;
            }
            if !first {
                f.write_str("\u{b7}")?;
            }
            first = false;
            if exp == 1 {
                f.write_str(symbol)?;
            } else {
                write!(f, "{symbol}^{exp}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_compose() {
        assert_eq!(
            Dimension::VOLTAGE.div(Dimension::CURRENT),
            Dimension::RESISTANCE
        );
        assert_eq!(Dimension::RESISTANCE.recip(), Dimension::CONDUCTANCE);
        assert_eq!(
            Dimension::CONDUCTANCE.mul(Dimension::VOLTAGE),
            Dimension::CURRENT
        );
        assert_eq!(Dimension::LENGTH.pow(2), Dimension::AREA);
        assert_eq!(Dimension::TIME.recip(), Dimension::FREQUENCY);
        assert_eq!(Dimension::VOLTAGE.mul(Dimension::CURRENT), Dimension::POWER);
        assert_eq!(
            Dimension::VOLTAGE.div(Dimension::TIME),
            Dimension::SLEW_RATE
        );
        // 2π·f·C has the dimension of a conductance.
        assert_eq!(
            Dimension::FREQUENCY.mul(Dimension::CAPACITANCE),
            Dimension::CONDUCTANCE
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Dimension::NONE.to_string(), "dimensionless");
        assert_eq!(Dimension::VOLTAGE.to_string(), "V");
        assert_eq!(Dimension::RESISTANCE.to_string(), "V\u{b7}A^-1");
        assert_eq!(Dimension::AREA.to_string(), "um^2");
    }

    #[test]
    fn saturating_arithmetic_never_wraps() {
        let big = Dimension::new(i16::MAX, i16::MIN, 0, 0);
        let doubled = big.mul(big);
        assert_eq!(doubled, Dimension::new(i16::MAX, i16::MIN, 0, 0));
        let neg = big.recip();
        assert_eq!(neg.pow(3), Dimension::new(i16::MIN, i16::MAX, 0, 0));
    }
}
