//! Property-based tests for the unit types: round-trips, algebraic laws,
//! and formatting/parsing consistency.

use oasys_testutil::prelude::*;
use oasys_units::{Capacitance, Current, Decibels, Degrees, Frequency, Resistance, Voltage};

/// Magnitudes that stay well inside f64's exact territory for the
/// relative-error bounds used below.
fn magnitude() -> impl Strategy<Value = f64> {
    prop_oneof![(1e-15..1e15f64), (1e-15..1e15f64).prop_map(|v| -v),]
}

proptest! {
    #[test]
    fn voltage_addition_commutes(a in magnitude(), b in magnitude()) {
        let (x, y) = (Voltage::new(a), Voltage::new(b));
        prop_assert_eq!((x + y).volts(), (y + x).volts());
    }

    #[test]
    fn voltage_sub_is_add_neg(a in magnitude(), b in magnitude()) {
        let (x, y) = (Voltage::new(a), Voltage::new(b));
        prop_assert_eq!((x - y).volts(), (x + (-y)).volts());
    }

    #[test]
    fn scalar_distributes(a in -1e12..1e12f64, k in -1e3..1e3f64) {
        let x = Current::new(a);
        let lhs = (x * k).amps();
        let rhs = k * a;
        prop_assert!((lhs - rhs).abs() <= 1e-12 * rhs.abs().max(1.0));
    }

    #[test]
    fn ohms_law_roundtrip(v in 1e-6..1e3f64, r in 1e-3..1e9f64) {
        let voltage = Voltage::new(v);
        let resistance = Resistance::new(r);
        let current = voltage / resistance;
        let back = current * resistance;
        prop_assert!((back.volts() / v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_reciprocal_involution(r in 1e-6..1e12f64) {
        let resistance = Resistance::new(r);
        let twice = resistance.to_conductance().to_resistance();
        prop_assert!((twice.ohms() / r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decibel_ratio_roundtrip(ratio in 1e-6..1e7f64) {
        let db = Decibels::from_voltage_ratio(ratio);
        prop_assert!((db.to_voltage_ratio() / ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decibel_product_is_sum(a in 1e-3..1e3f64, b in 1e-3..1e3f64) {
        let da = Decibels::from_voltage_ratio(a);
        let db = Decibels::from_voltage_ratio(b);
        let combined = Decibels::from_voltage_ratio(a * b);
        prop_assert!(((da + db).db() - combined.db()).abs() < 1e-9);
    }

    #[test]
    fn degrees_radians_roundtrip(deg in -1e4..1e4f64) {
        let d = Degrees::new(deg);
        prop_assert!((Degrees::from_radians(d.radians()).degrees() - deg).abs() < 1e-9);
    }

    #[test]
    fn angular_frequency_roundtrip(hz in 1e-3..1e12f64) {
        let f = Frequency::new(hz);
        let back = Frequency::from_radians_per_second(f.radians_per_second());
        prop_assert!((back.hertz() / hz - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_then_parse_is_close(pf in 0.001..1e6f64) {
        // Engineering display keeps 3-4 significant figures; parsing the
        // rendered text must land within that precision.
        let c = Capacitance::from_pico(pf);
        let text = c.to_string();
        let parsed: Capacitance = text.parse().unwrap();
        prop_assert!(
            (parsed.farads() / c.farads() - 1.0).abs() < 5e-3,
            "{} reparsed as {}", text, parsed
        );
    }

    #[test]
    fn parse_si_suffix_scales(mantissa in 0.1..999.0f64) {
        let micro: Current = format!("{mantissa}u").parse().unwrap();
        let milli: Current = format!("{mantissa}m").parse().unwrap();
        prop_assert!((milli.amps() / micro.amps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_ordering(a in magnitude(), b in magnitude()) {
        let (x, y) = (Voltage::new(a), Voltage::new(b));
        prop_assert!(x.min(y).volts() <= x.max(y).volts());
        prop_assert_eq!(x.min(y).volts() + x.max(y).volts(), a + b);
    }
}

/// Arbitrary printable-ASCII tokens plus number-shaped near-misses — the
/// hostile-input surface of the SI-suffix parser.
fn hostile_token() -> impl Strategy<Value = String> {
    prop_oneof![
        "[ -~]{0,24}".boxed(),
        "[0-9.eE+-]{1,16}".boxed(),
        "[0-9]{1,4}[fpnumkgtFPNUMKGT]{0,4}".boxed(),
    ]
}

proptest! {
    /// The parser is total: any input yields `Ok` with a finite value
    /// or a displayable error — never a panic, never NaN/inf.
    #[test]
    fn hostile_input_never_panics_or_yields_nonfinite(tok in hostile_token()) {
        match tok.parse::<Voltage>() {
            Ok(v) => prop_assert!(v.volts().is_finite(), "`{}` -> {}", tok, v.volts()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        match tok.parse::<Capacitance>() {
            Ok(c) => prop_assert!(c.farads().is_finite()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        match tok.parse::<Frequency>() {
            Ok(f) => prop_assert!(f.hertz().is_finite()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Overflowing exponents and textual non-finites are rejected with
    /// whatever suffix noise surrounds them.
    #[test]
    fn nonfinite_magnitudes_rejected(exp in 309..999u32, suffix in "[fpnumkgt]{0,1}") {
        let tok = format!("9e{exp}{suffix}");
        prop_assert!(tok.parse::<Voltage>().is_err(), "`{}` must not parse", tok);
    }
}
