//! Specification files: the op-amp requirements as a `key = value` text
//! file, mirroring the technology-file format so a whole synthesis run is
//! reproducible from two plain-text inputs.
//!
//! ```text
//! # case-B-like op amp
//! dc_gain_db        = 75
//! unity_gain_mhz    = 0.5
//! phase_margin_deg  = 45
//! load_pf           = 5
//! slew_rate_v_per_us = 2       # optional from here down
//! output_swing_v    = 4.0
//! max_offset_mv     = 1.0
//! max_power_mw      = 5.0
//! min_cmrr_db       = 60
//! max_noise_nv_rthz = 200
//! ```

use crate::spec::{OpAmpSpec, SpecError};
use std::error::Error;
use std::fmt;

/// Error returned by [`parse`].
#[derive(Debug)]
pub enum ParseSpecError {
    /// A malformed line (1-based line number and detail).
    Line {
        /// Line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The assembled specification failed validation.
    Invalid(SpecError),
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpecError::Line { line, detail } => {
                write!(f, "invalid specification file at line {line}: {detail}")
            }
            ParseSpecError::Invalid(e) => write!(f, "invalid specification file: {e}"),
        }
    }
}

impl Error for ParseSpecError {}

/// Parses the `key = value` specification format into an [`OpAmpSpec`].
///
/// # Errors
///
/// Returns [`ParseSpecError`] for unknown keys, non-numeric values, or a
/// set of values the [`OpAmpSpec`] builder rejects.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = oasys::specfile::parse(
///     "dc_gain_db = 60\nunity_gain_mhz = 1\nphase_margin_deg = 55\nload_pf = 5\n",
/// )?;
/// assert!((spec.dc_gain().db() - 60.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<OpAmpSpec, ParseSpecError> {
    let mut builder = OpAmpSpec::builder();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| ParseSpecError::Line {
            line: lineno,
            detail: format!("expected `key = value`, got `{line}`"),
        })?;
        let key = key.trim().to_lowercase();
        let value: f64 = value.trim().parse().map_err(|_| ParseSpecError::Line {
            line: lineno,
            detail: format!("value for `{key}` is not a number"),
        })?;
        // `f64::from_str` accepts "inf"/"NaN" and overflows to ±inf;
        // none of those are meaningful specification values.
        if !value.is_finite() {
            return Err(ParseSpecError::Line {
                line: lineno,
                detail: format!("value for `{key}` is not finite"),
            });
        }
        builder = match key.as_str() {
            "dc_gain_db" => builder.dc_gain_db(value),
            "unity_gain_mhz" => builder.unity_gain_mhz(value),
            "phase_margin_deg" => builder.phase_margin_deg(value),
            "load_pf" => builder.load_pf(value),
            "slew_rate_v_per_us" => builder.slew_rate_v_per_us(value),
            "output_swing_v" => builder.output_swing_v(value),
            "max_offset_mv" => builder.max_offset_mv(value),
            "max_power_mw" => builder.max_power_mw(value),
            "min_cmrr_db" => builder.min_cmrr_db(value),
            "max_noise_nv_rthz" => builder.max_noise_nv_rthz(value),
            other => {
                return Err(ParseSpecError::Line {
                    line: lineno,
                    detail: format!("unknown key `{other}`"),
                })
            }
        };
    }
    builder.build().map_err(ParseSpecError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_parses() {
        let text = "\
# everything specified
dc_gain_db         = 75
unity_gain_mhz     = 0.5
phase_margin_deg   = 45
load_pf            = 5
slew_rate_v_per_us = 2
output_swing_v     = 4.0
max_offset_mv      = 1.0
max_power_mw       = 5.0
min_cmrr_db        = 60
max_noise_nv_rthz  = 200
";
        let spec = parse(text).unwrap();
        assert!((spec.dc_gain().db() - 75.0).abs() < 1e-12);
        assert!(spec.has_slew());
        assert!(spec.has_swing());
        assert!(spec.has_offset());
        assert!(spec.has_power());
        assert!(spec.has_cmrr());
        assert!(spec.has_noise());
    }

    #[test]
    fn minimal_spec_parses() {
        let spec =
            parse("dc_gain_db=60\nunity_gain_mhz=1\nphase_margin_deg=55\nload_pf=5").unwrap();
        assert!(!spec.has_swing());
    }

    #[test]
    fn unknown_key_reports_line() {
        let err = parse("dc_gain_db = 60\nbogus = 1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn non_numeric_value_rejected() {
        let err = parse("dc_gain_db = sixty\n").unwrap_err();
        assert!(err.to_string().contains("not a number"));
    }

    #[test]
    fn missing_required_entries_rejected() {
        let err = parse("dc_gain_db = 60\n").unwrap_err();
        assert!(matches!(err, ParseSpecError::Invalid(_)));
    }
}
