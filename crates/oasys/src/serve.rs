//! `oasys serve`: synthesis-as-a-service over a Unix domain socket.
//!
//! A resident server turns the one-shot CLI into a long-lived synthesis
//! daemon: the process keeps its warm, bounded, fingerprint-namespaced
//! [`MemoCache`] across requests, so a client asking for a spec the
//! server has (partly) designed before gets sub-block hits immediately.
//!
//! # Wire protocol
//!
//! Transport framing is deliberately minimal: every message — request
//! or response — is one **frame**, a big-endian `u32` byte length
//! followed by that many bytes of UTF-8 JSON. Frames above
//! [`MAX_FRAME_BYTES`] are rejected at the transport layer. Each
//! connection carries exactly one request and one response; the server
//! closes the stream after answering.
//!
//! Requests are versioned JSON objects (schema `oasys-serve/1`):
//!
//! ```json
//! {"proto": "oasys-serve/1", "op": "synth",
//!  "spec": "<spec file text>", "tech": "<tech file text>",
//!  "timeout_ms": 2000}
//! ```
//!
//! Ops: `synth` (design the spec on the tech), `ping` (liveness probe),
//! `shutdown` (request a graceful drain). Unknown protos and ops are
//! rejected with a structured error so the schema can grow.
//!
//! Responses are JSON objects keyed by `status`:
//!
//! * `{"status":"ok", "style":…, "area_um2":…, "netlist":…}` — a
//!   synthesized design with its SPICE deck;
//! * `{"status":"busy", "max_inflight":N}` — admission control turned
//!   the connection away before reading the request; retry later;
//! * `{"status":"error", "kind":…, "message":…}` — the request failed
//!   **alone**; kinds: `protocol`, `spec`, `tech`, `infeasible`,
//!   `deadline`, `panic`, `fault`.
//!
//! # Concurrency and drain
//!
//! The server owns a **dedicated** [`oasys_pool::Pool`] (never the
//! process-global one, whose worker count may be zero — handler jobs
//! must not be able to starve the accept loop). Each admitted
//! connection becomes one pool job; admission is a bounded in-flight
//! counter checked before the request is read, so overload produces an
//! immediate `busy` frame instead of an unbounded queue. The accept
//! loop is non-blocking and polls a shutdown flag (set by the
//! `shutdown` op, [`Server::shutdown_flag`], or SIGTERM via
//! [`install_sigterm_drain`]); on shutdown it stops accepting and the
//! surrounding pool scope joins every in-flight handler before
//! [`Server::run`] returns — that join **is** the graceful drain.
//!
//! Every handler runs under `catch_unwind`: a panicking request (or an
//! injected `serve.request.read` fault) is converted into a structured
//! error response on its own connection while the server keeps serving.

use crate::synth::synthesize_with_cache;
use crate::SearchOptions;
use oasys_faults::{fail_point, Deadline};
use oasys_plan::MemoCache;
use oasys_telemetry::json::{self, Json};
use oasys_telemetry::Telemetry;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Protocol identifier every request must carry.
pub const PROTOCOL: &str = "oasys-serve/1";
/// Hard ceiling on a single frame's payload, requests and responses
/// alike. Spec and tech files are a few KiB; this is pure headroom.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;
/// Default handler-pool size.
pub const DEFAULT_WORKERS: usize = 2;
/// Default admission bound: connections admitted concurrently before
/// the server answers `busy`.
pub const DEFAULT_MAX_INFLIGHT: usize = 8;
/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    socket: PathBuf,
    workers: usize,
    max_inflight: usize,
    cache_entries: usize,
    timeout: Option<Duration>,
}

impl ServeOptions {
    /// Options serving on `socket` with default pool size, admission
    /// bound, cache capacity, and no default per-request deadline.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            workers: DEFAULT_WORKERS,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            cache_entries: crate::batch::DEFAULT_CACHE_ENTRIES,
            timeout: None,
        }
    }

    /// Sets the handler-pool size (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Sets the shared design-cache capacity (clamped to at least 1).
    #[must_use]
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Sets the default per-request deadline; `None` means requests
    /// without a `timeout_ms` field run unbounded.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// The socket path served on.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Handler-pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admission bound.
    #[must_use]
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Shared design-cache capacity.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.cache_entries
    }

    /// Default per-request deadline.
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }
}

/// End-of-run accounting returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Requests admitted and answered (ok or structured error).
    pub served: u64,
    /// Connections turned away by admission control.
    pub rejected_busy: u64,
    /// Design-cache hits accumulated over the server's lifetime.
    pub cache_hits: u64,
    /// Design-cache misses accumulated over the server's lifetime.
    pub cache_misses: u64,
    /// Design-cache evictions accumulated over the server's lifetime.
    pub cache_evictions: u64,
}

/// A bound, not-yet-running synthesis server.
pub struct Server {
    listener: UnixListener,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the Unix socket (replacing a stale socket file from a
    /// previous run, if any) without accepting yet.
    pub fn bind(options: ServeOptions) -> io::Result<Self> {
        if options.socket.exists() {
            std::fs::remove_file(&options.socket)?;
        }
        let listener = UnixListener::bind(&options.socket)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A flag that, once set, makes [`Server::run`] stop accepting and
    /// drain. Clone it before calling `run` to stop the server from
    /// another thread (tests, embedding).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The options the server was bound with.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Accepts and serves requests until the shutdown flag (or a
    /// SIGTERM routed through [`install_sigterm_drain`]) is raised,
    /// then drains in-flight handlers and removes the socket file.
    pub fn run(self) -> io::Result<ServeReport> {
        let cache = Arc::new(MemoCache::bounded(self.options.cache_entries));
        let inflight = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let pool = oasys_pool::Pool::new(self.options.workers);
        let shutdown = &self.shutdown;

        pool.scope(|scope| {
            while !shutdown.load(Ordering::SeqCst) && !sigterm_pending() {
                let stream = match self.listener.accept() {
                    Ok((stream, _addr)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                        continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    // Accept errors are connection-scoped (e.g. the
                    // peer hung up mid-handshake); keep serving.
                    Err(_) => continue,
                };
                if inflight.load(Ordering::SeqCst) >= self.options.max_inflight {
                    rejected.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_frame(&mut stream, busy_response(self.options.max_inflight));
                    continue;
                }
                inflight.fetch_add(1, Ordering::SeqCst);
                let ctx = RequestContext {
                    cache: Arc::clone(&cache),
                    default_timeout: self.options.timeout,
                    shutdown: Arc::clone(shutdown),
                    inflight: Arc::clone(&inflight),
                    served: Arc::clone(&served),
                };
                // The handle is dropped, not joined: the scope's exit
                // barrier joins every handler, which is exactly the
                // graceful drain. Handlers catch their own panics, so
                // no payload can surface at scope exit.
                drop(scope.spawn(move || handle_connection(stream, &ctx)));
            }
            // Falling out of the loop stops accepting; the scope now
            // waits for in-flight handlers before `run` returns.
        });

        let _ = std::fs::remove_file(&self.options.socket);
        Ok(ServeReport {
            served: served.load(Ordering::SeqCst),
            rejected_busy: rejected.load(Ordering::SeqCst),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
        })
    }
}

/// Everything a handler job needs, owned so the job is `'static`-free
/// of the accept loop's locals except through `Arc`s.
struct RequestContext {
    cache: Arc<MemoCache>,
    default_timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    served: Arc<AtomicU64>,
}

/// Decrements the in-flight gauge when the handler exits, normally or
/// by panic.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(mut stream: UnixStream, ctx: &RequestContext) {
    let _guard = InflightGuard(&ctx.inflight);
    let outcome = catch_unwind(AssertUnwindSafe(|| process_request(&mut stream, ctx)));
    let response = match outcome {
        Ok(response) => response,
        Err(payload) => error_response("panic", &panic_message(payload.as_ref())),
    };
    ctx.served.fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(&mut stream, response);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A request that could not be served, mapped to a structured error
/// response. `kind` is part of the wire contract (see module docs).
struct Rejection {
    kind: &'static str,
    message: String,
}

impl Rejection {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

fn process_request(stream: &mut UnixStream, ctx: &RequestContext) -> String {
    match serve_one(stream, ctx) {
        Ok(response) => response,
        Err(rejection) => error_response(rejection.kind, &rejection.message),
    }
}

fn serve_one(stream: &mut UnixStream, ctx: &RequestContext) -> Result<String, Rejection> {
    let payload = read_request(stream)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| Rejection::new("protocol", "request frame is not UTF-8"))?;
    let request =
        json::parse(text).map_err(|e| Rejection::new("protocol", format!("bad JSON: {e}")))?;
    match field(&request, "proto")? {
        PROTOCOL => {}
        other => {
            return Err(Rejection::new(
                "protocol",
                format!("unsupported proto {other:?} (expected {PROTOCOL:?})"),
            ))
        }
    }
    match field(&request, "op")? {
        "ping" => Ok(ok_ping_response()),
        "shutdown" => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Ok(ok_draining_response())
        }
        "synth" => synth(&request, ctx),
        other => Err(Rejection::new("protocol", format!("unknown op {other:?}"))),
    }
}

/// Reads the request frame. The `serve.request.read` fail point sits
/// here so the chaos suite can panic, stall, or fail exactly one
/// request's ingress without touching the accept loop.
fn read_request(stream: &mut UnixStream) -> Result<Vec<u8>, Rejection> {
    fail_point!("serve.request.read", |msg: String| Rejection::new(
        "fault", msg
    ));
    read_frame(stream).map_err(|e| Rejection::new("protocol", format!("reading request: {e}")))
}

fn field<'a>(request: &'a Json, key: &str) -> Result<&'a str, Rejection> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| Rejection::new("protocol", format!("missing string field {key:?}")))
}

fn synth(request: &Json, ctx: &RequestContext) -> Result<String, Rejection> {
    let spec_text = field(request, "spec")?;
    let tech_text = field(request, "tech")?;
    let spec =
        crate::specfile::parse(spec_text).map_err(|e| Rejection::new("spec", e.to_string()))?;
    let process = oasys_process::techfile::parse(tech_text)
        .map_err(|e| Rejection::new("tech", e.to_string()))?;

    let timeout = match request.get("timeout_ms").and_then(Json::as_num) {
        Some(ms) if ms >= 0.0 => Some(Duration::from_millis(ms as u64)),
        Some(_) => return Err(Rejection::new("protocol", "timeout_ms must be >= 0")),
        None => ctx.default_timeout,
    };
    let deadline = match timeout {
        Some(budget) => Deadline::within(budget),
        None => Deadline::none(),
    };
    let search = SearchOptions::default()
        .with_deadline(deadline.clone())
        .with_cache_namespace(format!("{:016x}", crate::batch::fingerprint("", tech_text)));

    // The server answers from synthesis alone; clients wanting the
    // simulator's cross-check run `oasys` or the batch sweep, which
    // verify by default.
    match synthesize_with_cache(&spec, &process, &search, &Telemetry::disabled(), &ctx.cache) {
        Ok(synthesis) => {
            let design = synthesis.selected();
            let netlist = oasys_netlist::spice::to_spice(design.circuit(), &process);
            Ok(ok_synth_response(
                &design.style().to_string(),
                design.area().total_um2(),
                &netlist,
            ))
        }
        Err(e) => {
            if deadline.check().is_err() {
                return Err(Rejection::new(
                    "deadline",
                    format!("synthesis aborted by deadline: {e}"),
                ));
            }
            Err(Rejection::new("infeasible", e.to_string()))
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn ok_synth_response(style: &str, area_um2: f64, netlist: &str) -> String {
    format!(
        "{{\"status\":\"ok\",\"style\":{},\"area_um2\":{},\"netlist\":{}}}",
        json::string(style),
        json::number(area_um2),
        json::string(netlist)
    )
}

fn ok_ping_response() -> String {
    format!("{{\"status\":\"ok\",\"proto\":{}}}", json::string(PROTOCOL))
}

fn ok_draining_response() -> String {
    "{\"status\":\"ok\",\"draining\":true}".to_owned()
}

fn busy_response(max_inflight: usize) -> String {
    // usize -> f64 is exact for any realistic admission bound.
    format!(
        "{{\"status\":\"busy\",\"max_inflight\":{}}}",
        json::number(max_inflight as f64)
    )
}

fn error_response(kind: &str, message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"kind\":{},\"message\":{}}}",
        json::string(kind),
        json::string(message)
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("request handler panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("request handler panicked: {s}")
    } else {
        "request handler panicked".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: impl AsRef<[u8]>) -> io::Result<()> {
    let payload = payload.as_ref();
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Client helpers (used by `oasys client`, the smoke test, and tests)
// ---------------------------------------------------------------------------

/// Builds a versioned `synth` request body.
#[must_use]
pub fn synth_request(spec_text: &str, tech_text: &str, timeout_ms: Option<u64>) -> String {
    let timeout = match timeout_ms {
        // u64 -> f64 is fine here: millisecond budgets are small.
        Some(ms) => format!(",\"timeout_ms\":{}", json::number(ms as f64)),
        None => String::new(),
    };
    format!(
        "{{\"proto\":{},\"op\":\"synth\",\"spec\":{},\"tech\":{}{timeout}}}",
        json::string(PROTOCOL),
        json::string(spec_text),
        json::string(tech_text)
    )
}

/// Builds a versioned single-op request body (`ping`, `shutdown`).
#[must_use]
pub fn op_request(op: &str) -> String {
    format!(
        "{{\"proto\":{},\"op\":{}}}",
        json::string(PROTOCOL),
        json::string(op)
    )
}

/// Connects to `socket`, sends one request frame, and returns the
/// response payload as text.
pub fn request(socket: &Path, body: &str) -> io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, body)?;
    let response = read_frame(&mut stream)?;
    String::from_utf8(response)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response frame is not UTF-8"))
}

// ---------------------------------------------------------------------------
// SIGTERM → graceful drain
// ---------------------------------------------------------------------------

static SIGTERM_PENDING: AtomicBool = AtomicBool::new(false);

fn sigterm_pending() -> bool {
    SIGTERM_PENDING.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SIGTERM_PENDING.store(true, Ordering::SeqCst);
}

/// Routes SIGTERM to a graceful drain of every [`Server::run`] loop in
/// this process. Called by the `oasys serve` CLI; embedders who manage
/// their own signals can skip it and use [`Server::shutdown_flag`].
#[cfg(unix)]
pub fn install_sigterm_drain() {
    // Hand-declared to stay dependency-free; `signal(2)` with a
    // function pointer is portable across the Unix targets we build.
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "hello frames").unwrap();
        assert_eq!(&buffer[..4], &12u32.to_be_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frames");
    }

    #[test]
    fn oversized_frames_are_rejected_on_read() {
        let mut buffer = Vec::from((MAX_FRAME_BYTES + 1).to_be_bytes());
        buffer.extend_from_slice(b"ignored");
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn request_builders_emit_valid_versioned_json() {
        let body = synth_request("spec \"text\"", "tech\nlines", Some(250));
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("proto").and_then(Json::as_str), Some(PROTOCOL));
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("synth"));
        assert_eq!(
            parsed.get("spec").and_then(Json::as_str),
            Some("spec \"text\"")
        );
        assert_eq!(parsed.get("timeout_ms").and_then(Json::as_num), Some(250.0));

        let ping = json::parse(&op_request("ping")).unwrap();
        assert_eq!(ping.get("op").and_then(Json::as_str), Some("ping"));
    }

    #[test]
    fn responses_are_parseable_json() {
        let ok = json::parse(&ok_synth_response("two_stage", 1234.5, "* deck\n.END\n")).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(ok.get("area_um2").and_then(Json::as_num), Some(1234.5));

        let busy = json::parse(&busy_response(8)).unwrap();
        assert_eq!(busy.get("status").and_then(Json::as_str), Some("busy"));

        let error = json::parse(&error_response("deadline", "ran \"out\"\nof time")).unwrap();
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("deadline"));
        assert_eq!(
            error.get("message").and_then(Json::as_str),
            Some("ran \"out\"\nof time")
        );
    }

    #[test]
    fn server_answers_ping_synth_and_shutdown_and_drains() {
        let dir = std::env::temp_dir().join(format!("oasys-serve-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("unit.sock");
        let server = Server::bind(
            ServeOptions::new(&socket)
                .with_workers(1)
                .with_max_inflight(2)
                .with_cache_entries(64),
        )
        .unwrap();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let pong = request(&socket, &op_request("ping")).unwrap();
        let pong = json::parse(&pong).unwrap();
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));

        let spec_text = "dc_gain_db = 60\nunity_gain_mhz = 0.5\nphase_margin_deg = 45\n\
                         load_pf = 5\nslew_rate_v_per_us = 2\n";
        let tech_text = oasys_process::techfile::write(&oasys_process::builtin::cmos_5um());
        let answer = request(&socket, &synth_request(spec_text, &tech_text, None)).unwrap();
        let answer = json::parse(&answer).unwrap();
        assert_eq!(answer.get("status").and_then(Json::as_str), Some("ok"));
        let netlist = answer.get("netlist").and_then(Json::as_str).unwrap();
        assert!(netlist.contains(".END"), "netlist should be a SPICE deck");

        let bad = request(&socket, "{\"proto\":\"oasys-serve/1\",\"op\":\"launch\"}").unwrap();
        let bad = json::parse(&bad).unwrap();
        assert_eq!(bad.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(bad.get("kind").and_then(Json::as_str), Some("protocol"));

        let drain = request(&socket, &op_request("shutdown")).unwrap();
        let drain = json::parse(&drain).unwrap();
        assert_eq!(drain.get("draining").and_then(Json::as_bool), Some(true));

        let report = runner.join().unwrap();
        assert!(report.served >= 4);
        assert!(!socket.exists(), "drain must remove the socket file");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
