//! `oasys serve`: synthesis-as-a-service over a Unix domain socket.
//!
//! A resident server turns the one-shot CLI into a long-lived synthesis
//! daemon: the process keeps its warm, bounded, fingerprint-namespaced
//! [`MemoCache`] across requests, so a client asking for a spec the
//! server has (partly) designed before gets sub-block hits immediately.
//!
//! # Wire protocol
//!
//! Transport framing is deliberately minimal: every message — request
//! or response — is one **frame**, a big-endian `u32` byte length
//! followed by that many bytes of UTF-8 JSON. Frames above
//! [`MAX_FRAME_BYTES`] are rejected at the transport layer, and request
//! frames above [`MAX_REQUEST_BYTES`] are rejected with a structured
//! error — the length prefix is attacker-controlled, so the reader
//! never allocates ahead of the bytes actually received. Each
//! connection carries exactly one request and one response; the server
//! closes the stream after answering.
//!
//! Requests are versioned JSON objects (schema `oasys-serve/1`):
//!
//! ```json
//! {"proto": "oasys-serve/1", "op": "synth",
//!  "spec": "<spec file text>", "tech": "<tech file text>",
//!  "timeout_ms": 2000}
//! ```
//!
//! Ops: `synth` (design the spec on the tech), `ping` (liveness probe),
//! `health` (overload/supervision stats), `shutdown` (request a
//! graceful drain). Unknown protos and ops are rejected with a
//! structured error so the schema can grow.
//!
//! Responses are JSON objects keyed by `status`:
//!
//! * `{"status":"ok", "style":…, "area_um2":…, "netlist":…,
//!   "meets_spec":…}` — a synthesized design with its SPICE deck;
//!   under brownout the response carries `"degraded":true` and no
//!   `meets_spec` (verification was skipped to shed load);
//! * `{"status":"busy", "shed":true, "reason":…}` — overload control
//!   turned the connection away (admission queue full, or the
//!   connection outwaited the I/O deadline in the queue); retry later;
//! * `{"status":"error", "kind":…, "message":…}` — the request failed
//!   **alone**; kinds: `protocol`, `spec`, `tech`, `infeasible`,
//!   `deadline`, `verify`, `panic`, `fault`.
//!
//! # Overload degradation
//!
//! Admitted connections carry socket read/write deadlines
//! ([`ServeOptions::with_io_timeout`]): a client that connects and then
//! stalls is **evicted** when the deadline fires, so a slow peer can
//! hold an in-flight slot for at most one I/O timeout, never forever.
//! Behind admission sits a bounded queue ([`ServeOptions::with_queue_depth`]);
//! connections are shed with a `busy` frame when the queue overflows or
//! when they have waited longer than the I/O deadline (their own socket
//! deadline would expire mid-service anyway). Sustained congestion —
//! the queue at or above half its depth, or any shed — trips
//! **brownout**: synthesis keeps answering but skips simulator
//! verification and marks responses `"degraded":true`. Brownout exits
//! after the queue drains and stays empty for the cooldown.
//!
//! # Concurrency and drain
//!
//! The server owns a **dedicated** [`oasys_pool::Pool`] (never the
//! process-global one, whose worker count may be zero — handler jobs
//! must not be able to starve the accept loop). The pool is supervised:
//! a panicking worker thread is replaced, and the `health` op reports
//! `workers_replaced`. Each admitted connection becomes one pool job.
//! The accept loop is non-blocking and polls a shutdown flag (set by
//! the `shutdown` op, [`Server::shutdown_flag`], or SIGTERM via
//! [`install_sigterm_drain`]); on shutdown it stops accepting, sheds
//! the queue, and the surrounding pool scope joins every in-flight
//! handler before [`Server::run`] returns — that join **is** the
//! graceful drain.
//!
//! Every handler runs under `catch_unwind`: a panicking request (or an
//! injected `serve.request.read` fault) is converted into a structured
//! error response on its own connection while the server keeps serving.

use crate::datasheet::Datasheet;
use crate::synth::synthesize_with_cache;
use crate::verify::verify_with;
use crate::SearchOptions;
use oasys_faults::{fail_point, Deadline};
use oasys_plan::MemoCache;
use oasys_telemetry::json::{self, Json};
use oasys_telemetry::Telemetry;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Protocol identifier every request must carry.
pub const PROTOCOL: &str = "oasys-serve/1";
/// Hard ceiling on a single frame's payload, requests and responses
/// alike (responses carry whole SPICE decks).
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;
/// Tighter ceiling on *request* frames: spec and tech files are a few
/// KiB, so 4 MiB is pure headroom — and the cap bounds what a lying
/// length prefix can make the server read.
pub const MAX_REQUEST_BYTES: u32 = 4 * 1024 * 1024;
/// Default handler-pool size.
pub const DEFAULT_WORKERS: usize = 2;
/// Default admission bound: connections served concurrently.
pub const DEFAULT_MAX_INFLIGHT: usize = 8;
/// Default bounded admission-queue depth (connections waiting for an
/// in-flight slot before new arrivals are shed).
pub const DEFAULT_QUEUE_DEPTH: usize = 16;
/// Default socket read/write deadline for admitted connections.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Default quiet period after congestion before brownout exits.
pub const DEFAULT_BROWNOUT_COOLDOWN: Duration = Duration::from_millis(500);
/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    socket: PathBuf,
    workers: usize,
    max_inflight: usize,
    queue_depth: usize,
    cache_entries: usize,
    timeout: Option<Duration>,
    io_timeout: Duration,
    brownout_cooldown: Duration,
}

impl ServeOptions {
    /// Options serving on `socket` with default pool size, admission
    /// bound, queue depth, cache capacity, I/O deadline, and no default
    /// per-request deadline.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            workers: DEFAULT_WORKERS,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            cache_entries: crate::batch::DEFAULT_CACHE_ENTRIES,
            timeout: None,
            io_timeout: DEFAULT_IO_TIMEOUT,
            brownout_cooldown: DEFAULT_BROWNOUT_COOLDOWN,
        }
    }

    /// Sets the handler-pool size (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Sets the admission-queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Sets the shared design-cache capacity (clamped to at least 1).
    #[must_use]
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Sets the default per-request deadline; `None` means requests
    /// without a `timeout_ms` field run unbounded.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the socket read/write deadline for admitted connections
    /// (clamped to at least 1 ms). A stalled peer is evicted when it
    /// fires; a queued connection older than it is shed.
    #[must_use]
    pub fn with_io_timeout(mut self, io_timeout: Duration) -> Self {
        self.io_timeout = io_timeout.max(Duration::from_millis(1));
        self
    }

    /// Sets the congestion-free period after which brownout exits.
    #[must_use]
    pub fn with_brownout_cooldown(mut self, cooldown: Duration) -> Self {
        self.brownout_cooldown = cooldown;
        self
    }

    /// The socket path served on.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Handler-pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admission bound.
    #[must_use]
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Admission-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Shared design-cache capacity.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.cache_entries
    }

    /// Default per-request deadline.
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Socket read/write deadline for admitted connections.
    #[must_use]
    pub fn io_timeout(&self) -> Duration {
        self.io_timeout
    }

    /// Congestion-free period after which brownout exits.
    #[must_use]
    pub fn brownout_cooldown(&self) -> Duration {
        self.brownout_cooldown
    }
}

/// End-of-run accounting returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Requests admitted and answered (ok or structured error).
    pub served: u64,
    /// Connections turned away with a `busy` frame (queue overflow or
    /// shed after outwaiting the I/O deadline in the queue).
    pub shed: u64,
    /// Admitted connections evicted by the socket I/O deadline (the
    /// peer stalled mid-request).
    pub evicted: u64,
    /// Synthesis responses served degraded (brownout skipped
    /// verification).
    pub degraded: u64,
    /// Times the server entered brownout.
    pub brownout_entries: u64,
    /// Handler-pool workers the supervisor replaced after a panic.
    pub workers_replaced: u64,
    /// Design-cache hits accumulated over the server's lifetime.
    pub cache_hits: u64,
    /// Design-cache misses accumulated over the server's lifetime.
    pub cache_misses: u64,
    /// Design-cache evictions accumulated over the server's lifetime.
    pub cache_evictions: u64,
}

/// Live counters shared between the accept loop and handlers. All
/// relaxed except the gauges the dispatcher decides admission on.
#[derive(Default)]
struct ServeStats {
    served: AtomicU64,
    shed: AtomicU64,
    evicted: AtomicU64,
    degraded: AtomicU64,
    brownout_entries: AtomicU64,
    brownout_exits: AtomicU64,
    inflight: AtomicUsize,
    queued: AtomicUsize,
    brownout: AtomicBool,
}

/// A bound, not-yet-running synthesis server.
pub struct Server {
    listener: UnixListener,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the Unix socket (replacing a stale socket file from a
    /// previous run, if any) without accepting yet.
    pub fn bind(options: ServeOptions) -> io::Result<Self> {
        if options.socket.exists() {
            std::fs::remove_file(&options.socket)?;
        }
        let listener = UnixListener::bind(&options.socket)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A flag that, once set, makes [`Server::run`] stop accepting and
    /// drain. Clone it before calling `run` to stop the server from
    /// another thread (tests, embedding).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The options the server was bound with.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Accepts and serves requests until the shutdown flag (or a
    /// SIGTERM routed through [`install_sigterm_drain`]) is raised,
    /// then sheds the queue, drains in-flight handlers, and removes the
    /// socket file.
    #[allow(clippy::too_many_lines)]
    pub fn run(self) -> io::Result<ServeReport> {
        let cache = MemoCache::bounded(self.options.cache_entries);
        let stats = ServeStats::default();
        let pool = oasys_pool::Pool::new(self.options.workers);
        let options = &self.options;
        let shutdown: &AtomicBool = &self.shutdown;
        // Brownout entry threshold: congestion is a queue at or above
        // half its depth (or any shed, which implies a full queue).
        let high_water = (options.queue_depth / 2).max(1);
        let ctx = RequestContext {
            cache: &cache,
            options,
            stats: &stats,
            shutdown,
            pool: &pool,
        };
        let ctx = &ctx;

        pool.scope(|scope| {
            let mut queue: VecDeque<(UnixStream, Instant)> = VecDeque::new();
            let mut last_congestion: Option<Instant> = None;
            loop {
                if shutdown.load(Ordering::SeqCst) || sigterm_pending() {
                    break;
                }
                let mut progressed = false;
                let mut congested = false;
                // Drain pending accepts into the bounded queue; overflow
                // is shed immediately with a retryable busy frame.
                loop {
                    match self.listener.accept() {
                        Ok((stream, _addr)) => {
                            progressed = true;
                            let _ = stream.set_read_timeout(Some(options.io_timeout));
                            let _ = stream.set_write_timeout(Some(options.io_timeout));
                            if queue.len() >= options.queue_depth {
                                congested = true;
                                stats.shed.fetch_add(1, Ordering::Relaxed);
                                let mut stream = stream;
                                let _ =
                                    write_frame(&mut stream, shed_response("admission queue full"));
                            } else {
                                queue.push_back((stream, Instant::now()));
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        // WouldBlock: no more pending connections. Other
                        // accept errors are connection-scoped (e.g. the
                        // peer hung up mid-handshake); keep serving.
                        Err(_) => break,
                    }
                }
                // Deadline-aware shedding: a connection that has already
                // outwaited the I/O deadline in the queue would see its
                // own socket deadline expire mid-service — turn it away
                // now instead of wasting an in-flight slot on it.
                while queue
                    .front()
                    .is_some_and(|(_, enqueued)| enqueued.elapsed() >= options.io_timeout)
                {
                    let (mut stream, _) = queue.pop_front().expect("front checked above");
                    congested = true;
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    let _ = write_frame(&mut stream, shed_response("queued past the I/O deadline"));
                }
                // Dispatch while in-flight slots are free.
                while !queue.is_empty()
                    && stats.inflight.load(Ordering::SeqCst) < options.max_inflight
                {
                    let (stream, _) = queue.pop_front().expect("queue is non-empty");
                    stats.inflight.fetch_add(1, Ordering::SeqCst);
                    progressed = true;
                    // The handle is dropped, not joined: the scope's exit
                    // barrier joins every handler, which is exactly the
                    // graceful drain. Handlers catch their own panics, so
                    // no payload can surface at scope exit.
                    drop(scope.spawn(move || handle_connection(stream, ctx)));
                }
                stats.queued.store(queue.len(), Ordering::Relaxed);
                // Brownout state machine: enter on congestion, exit only
                // after the queue drains and stays quiet for the cooldown.
                if congested || queue.len() >= high_water {
                    last_congestion = Some(Instant::now());
                    if !stats.brownout.swap(true, Ordering::SeqCst) {
                        stats.brownout_entries.fetch_add(1, Ordering::Relaxed);
                    }
                } else if stats.brownout.load(Ordering::SeqCst)
                    && queue.is_empty()
                    && last_congestion.is_none_or(|at| at.elapsed() >= options.brownout_cooldown)
                {
                    stats.brownout.store(false, Ordering::SeqCst);
                    stats.brownout_exits.fetch_add(1, Ordering::Relaxed);
                }
                if !progressed {
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
            // Shutdown: stop accepting and shed whatever is still
            // queued; the scope then joins every in-flight handler.
            for (mut stream, _) in queue.drain(..) {
                stats.shed.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut stream, shed_response("server draining"));
            }
            stats.queued.store(0, Ordering::Relaxed);
        });

        let _ = std::fs::remove_file(&self.options.socket);
        Ok(ServeReport {
            served: stats.served.load(Ordering::SeqCst),
            shed: stats.shed.load(Ordering::SeqCst),
            evicted: stats.evicted.load(Ordering::SeqCst),
            degraded: stats.degraded.load(Ordering::SeqCst),
            brownout_entries: stats.brownout_entries.load(Ordering::SeqCst),
            workers_replaced: pool.workers_replaced(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
        })
    }
}

/// Everything a handler job needs, borrowed from [`Server::run`]'s
/// stack frame (the pool scope's exit barrier keeps the borrows sound).
struct RequestContext<'a> {
    cache: &'a MemoCache,
    options: &'a ServeOptions,
    stats: &'a ServeStats,
    shutdown: &'a AtomicBool,
    pool: &'a oasys_pool::Pool,
}

/// Decrements the in-flight gauge when the handler exits, normally or
/// by panic.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(mut stream: UnixStream, ctx: &RequestContext) {
    let _guard = InflightGuard(&ctx.stats.inflight);
    let outcome = catch_unwind(AssertUnwindSafe(|| process_request(&mut stream, ctx)));
    let (response, served) = match outcome {
        Ok(pair) => pair,
        Err(payload) => (
            error_response("panic", &panic_message(payload.as_ref())),
            true,
        ),
    };
    if served {
        ctx.stats.served.fetch_add(1, Ordering::Relaxed);
    }
    let _ = write_frame(&mut stream, response);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A request that could not be served, mapped to a structured error
/// response. `kind` is part of the wire contract (see module docs).
struct Rejection {
    kind: &'static str,
    message: String,
    /// `true` when the peer stalled past the socket I/O deadline: the
    /// connection is evicted (counted separately, not served).
    evicted: bool,
}

impl Rejection {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            evicted: false,
        }
    }

    fn evicted(message: impl Into<String>) -> Self {
        Self {
            kind: "protocol",
            message: message.into(),
            evicted: true,
        }
    }
}

/// Returns the response payload and whether it counts as served
/// (evictions do not — the peer never delivered a request).
fn process_request(stream: &mut UnixStream, ctx: &RequestContext) -> (String, bool) {
    match serve_one(stream, ctx) {
        Ok(response) => (response, true),
        Err(rejection) => {
            if rejection.evicted {
                ctx.stats.evicted.fetch_add(1, Ordering::Relaxed);
            }
            (
                error_response(rejection.kind, &rejection.message),
                !rejection.evicted,
            )
        }
    }
}

fn serve_one(stream: &mut UnixStream, ctx: &RequestContext) -> Result<String, Rejection> {
    let payload = read_request(stream, ctx)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| Rejection::new("protocol", "request frame is not UTF-8"))?;
    let request =
        json::parse(text).map_err(|e| Rejection::new("protocol", format!("bad JSON: {e}")))?;
    match field(&request, "proto")? {
        PROTOCOL => {}
        other => {
            return Err(Rejection::new(
                "protocol",
                format!("unsupported proto {other:?} (expected {PROTOCOL:?})"),
            ))
        }
    }
    match field(&request, "op")? {
        "ping" => Ok(ok_ping_response()),
        "health" => Ok(health_response(ctx)),
        "shutdown" => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Ok(ok_draining_response())
        }
        "synth" => synth(&request, ctx),
        other => Err(Rejection::new("protocol", format!("unknown op {other:?}"))),
    }
}

/// Reads the request frame under the [`MAX_REQUEST_BYTES`] cap. The
/// `serve.request.read` fail point sits here so the chaos suite can
/// panic, stall, or fail exactly one request's ingress without touching
/// the accept loop. A read that trips the socket I/O deadline evicts
/// the connection (a stalled peer must not hold its slot).
fn read_request(stream: &mut UnixStream, ctx: &RequestContext) -> Result<Vec<u8>, Rejection> {
    fail_point!("serve.request.read", |msg: String| Rejection::new(
        "fault", msg
    ));
    read_frame_limited(stream, MAX_REQUEST_BYTES).map_err(|e| {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            Rejection::evicted(format!(
                "request stalled past the {} ms I/O deadline",
                ctx.options.io_timeout.as_millis()
            ))
        } else {
            Rejection::new("protocol", format!("reading request: {e}"))
        }
    })
}

fn field<'a>(request: &'a Json, key: &str) -> Result<&'a str, Rejection> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| Rejection::new("protocol", format!("missing string field {key:?}")))
}

fn synth(request: &Json, ctx: &RequestContext) -> Result<String, Rejection> {
    let spec_text = field(request, "spec")?;
    let tech_text = field(request, "tech")?;
    let spec =
        crate::specfile::parse(spec_text).map_err(|e| Rejection::new("spec", e.to_string()))?;
    let process = oasys_process::techfile::parse(tech_text)
        .map_err(|e| Rejection::new("tech", e.to_string()))?;

    let timeout = match request.get("timeout_ms").and_then(Json::as_num) {
        Some(ms) if ms >= 0.0 => Some(Duration::from_millis(ms as u64)),
        Some(_) => return Err(Rejection::new("protocol", "timeout_ms must be >= 0")),
        None => ctx.options.timeout(),
    };
    let deadline = match timeout {
        Some(budget) => Deadline::within(budget),
        None => Deadline::none(),
    };
    let search = SearchOptions::default()
        .with_deadline(deadline.clone())
        .with_cache_namespace(format!("{:016x}", crate::batch::fingerprint("", tech_text)));

    match synthesize_with_cache(&spec, &process, &search, &Telemetry::disabled(), ctx.cache) {
        Ok(synthesis) => {
            let design = synthesis.selected();
            let netlist = oasys_netlist::spice::to_spice(design.circuit(), &process);
            // Brownout: keep answering, but shed the simulator
            // cross-check and say so. Normal mode verifies the design
            // and reports the measured verdict.
            let degraded = ctx.stats.brownout.load(Ordering::SeqCst);
            let meets_spec = if degraded {
                ctx.stats.degraded.fetch_add(1, Ordering::Relaxed);
                None
            } else {
                let verification = verify_with(
                    design,
                    &process,
                    spec.load().farads(),
                    &Telemetry::disabled(),
                )
                .map_err(|e| Rejection::new("verify", format!("verification failed: {e}")))?;
                let sheet = Datasheet::new(
                    format!("{} op amp", design.style()),
                    &spec,
                    design.predicted(),
                    Some(&verification.measured),
                );
                Some(sheet.all_measured_pass())
            };
            Ok(ok_synth_response(
                &design.style().to_string(),
                design.area().total_um2(),
                &netlist,
                meets_spec,
                degraded,
            ))
        }
        Err(e) => {
            if deadline.check().is_err() {
                return Err(Rejection::new(
                    "deadline",
                    format!("synthesis aborted by deadline: {e}"),
                ));
            }
            Err(Rejection::new("infeasible", e.to_string()))
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn ok_synth_response(
    style: &str,
    area_um2: f64,
    netlist: &str,
    meets_spec: Option<bool>,
    degraded: bool,
) -> String {
    let mut out = format!(
        "{{\"status\":\"ok\",\"style\":{},\"area_um2\":{},\"netlist\":{}",
        json::string(style),
        json::number(area_um2),
        json::string(netlist)
    );
    if let Some(meets) = meets_spec {
        out.push_str(&format!(",\"meets_spec\":{meets}"));
    }
    if degraded {
        out.push_str(",\"degraded\":true");
    }
    out.push('}');
    out
}

fn ok_ping_response() -> String {
    format!("{{\"status\":\"ok\",\"proto\":{}}}", json::string(PROTOCOL))
}

fn health_response(ctx: &RequestContext) -> String {
    let stats = ctx.stats;
    format!(
        "{{\"status\":\"ok\",\"proto\":{},\"brownout\":{},\"inflight\":{},\"queued\":{},\
         \"served\":{},\"shed\":{},\"evicted\":{},\"degraded_served\":{},\
         \"brownout_entries\":{},\"brownout_exits\":{},\"workers\":{},\"workers_replaced\":{}}}",
        json::string(PROTOCOL),
        stats.brownout.load(Ordering::SeqCst),
        stats.inflight.load(Ordering::SeqCst),
        stats.queued.load(Ordering::Relaxed),
        stats.served.load(Ordering::Relaxed),
        stats.shed.load(Ordering::Relaxed),
        stats.evicted.load(Ordering::Relaxed),
        stats.degraded.load(Ordering::Relaxed),
        stats.brownout_entries.load(Ordering::Relaxed),
        stats.brownout_exits.load(Ordering::Relaxed),
        ctx.pool.workers(),
        ctx.pool.workers_replaced()
    )
}

fn ok_draining_response() -> String {
    "{\"status\":\"ok\",\"draining\":true}".to_owned()
}

fn shed_response(reason: &str) -> String {
    format!(
        "{{\"status\":\"busy\",\"shed\":true,\"reason\":{}}}",
        json::string(reason)
    )
}

fn error_response(kind: &str, message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"kind\":{},\"message\":{}}}",
        json::string(kind),
        json::string(message)
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("request handler panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("request handler panicked: {s}")
    } else {
        "request handler panicked".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: impl AsRef<[u8]>) -> io::Result<()> {
    let payload = payload.as_ref();
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame (response-sized cap).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    read_frame_limited(r, MAX_FRAME_BYTES)
}

/// Reads one length-prefixed frame, rejecting payloads above `cap`.
/// The allocation follows the bytes actually received — a lying length
/// prefix cannot make the reader balloon memory ahead of the data.
pub fn read_frame_limited(r: &mut impl Read, cap: u32) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {cap}-byte cap"),
        ));
    }
    let mut payload = Vec::new();
    r.take(u64::from(len)).read_to_end(&mut payload)?;
    if payload.len() != len as usize {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "frame truncated: header promised {len} bytes, got {}",
                payload.len()
            ),
        ));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Client helpers (used by `oasys client`, the smoke test, and tests)
// ---------------------------------------------------------------------------

/// Builds a versioned `synth` request body.
#[must_use]
pub fn synth_request(spec_text: &str, tech_text: &str, timeout_ms: Option<u64>) -> String {
    let timeout = match timeout_ms {
        // u64 -> f64 is fine here: millisecond budgets are small.
        Some(ms) => format!(",\"timeout_ms\":{}", json::number(ms as f64)),
        None => String::new(),
    };
    format!(
        "{{\"proto\":{},\"op\":\"synth\",\"spec\":{},\"tech\":{}{timeout}}}",
        json::string(PROTOCOL),
        json::string(spec_text),
        json::string(tech_text)
    )
}

/// Builds a versioned single-op request body (`ping`, `health`,
/// `shutdown`).
#[must_use]
pub fn op_request(op: &str) -> String {
    format!(
        "{{\"proto\":{},\"op\":{}}}",
        json::string(PROTOCOL),
        json::string(op)
    )
}

/// Connects to `socket`, sends one request frame, and returns the
/// response payload as text. The `serve.client.stall` fail point sits
/// between connect and write so the chaos suite can turn this client
/// into a slow-loris peer and prove the server's I/O deadline evicts
/// it.
pub fn request(socket: &Path, body: &str) -> io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    fail_point!("serve.client.stall");
    write_frame(&mut stream, body)?;
    let response = read_frame(&mut stream)?;
    String::from_utf8(response)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response frame is not UTF-8"))
}

// ---------------------------------------------------------------------------
// SIGTERM → graceful drain
// ---------------------------------------------------------------------------

static SIGTERM_PENDING: AtomicBool = AtomicBool::new(false);

fn sigterm_pending() -> bool {
    SIGTERM_PENDING.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SIGTERM_PENDING.store(true, Ordering::SeqCst);
}

/// Routes SIGTERM to a graceful drain of every [`Server::run`] loop in
/// this process. Called by the `oasys serve` CLI; embedders who manage
/// their own signals can skip it and use [`Server::shutdown_flag`].
#[cfg(unix)]
pub fn install_sigterm_drain() {
    // Hand-declared to stay dependency-free; `signal(2)` with a
    // function pointer is portable across the Unix targets we build.
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "hello frames").unwrap();
        assert_eq!(&buffer[..4], &12u32.to_be_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frames");
    }

    #[test]
    fn oversized_frames_are_rejected_on_read() {
        let mut buffer = Vec::from((MAX_FRAME_BYTES + 1).to_be_bytes());
        buffer.extend_from_slice(b"ignored");
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn request_cap_rejects_without_allocating_the_lie() {
        // A header promising just over the request cap, with no data
        // behind it: the limited reader must reject on the prefix alone.
        let buffer = Vec::from((MAX_REQUEST_BYTES + 1).to_be_bytes());
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame_limited(&mut cursor, MAX_REQUEST_BYTES).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn truncated_frames_error_instead_of_hanging_on_the_header() {
        // Header promises 100 bytes; the stream ends after 3. The
        // reader must report the truncation, not return a short frame.
        let mut buffer = Vec::from(100u32.to_be_bytes());
        buffer.extend_from_slice(b"abc");
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame_limited(&mut cursor, MAX_REQUEST_BYTES).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("promised 100"), "{err}");
    }

    #[test]
    fn request_builders_emit_valid_versioned_json() {
        let body = synth_request("spec \"text\"", "tech\nlines", Some(250));
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("proto").and_then(Json::as_str), Some(PROTOCOL));
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("synth"));
        assert_eq!(
            parsed.get("spec").and_then(Json::as_str),
            Some("spec \"text\"")
        );
        assert_eq!(parsed.get("timeout_ms").and_then(Json::as_num), Some(250.0));

        let ping = json::parse(&op_request("ping")).unwrap();
        assert_eq!(ping.get("op").and_then(Json::as_str), Some("ping"));
    }

    #[test]
    fn responses_are_parseable_json() {
        let ok = json::parse(&ok_synth_response(
            "two_stage",
            1234.5,
            "* deck\n.END\n",
            Some(true),
            false,
        ))
        .unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(ok.get("area_um2").and_then(Json::as_num), Some(1234.5));
        assert_eq!(ok.get("meets_spec").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("degraded"), None);

        let degraded = json::parse(&ok_synth_response(
            "two_stage",
            1234.5,
            "* deck",
            None,
            true,
        ))
        .unwrap();
        assert_eq!(degraded.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(degraded.get("meets_spec"), None);

        let busy = json::parse(&shed_response("admission queue full")).unwrap();
        assert_eq!(busy.get("status").and_then(Json::as_str), Some("busy"));
        assert_eq!(busy.get("shed").and_then(Json::as_bool), Some(true));

        let error = json::parse(&error_response("deadline", "ran \"out\"\nof time")).unwrap();
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("deadline"));
        assert_eq!(
            error.get("message").and_then(Json::as_str),
            Some("ran \"out\"\nof time")
        );
    }

    #[test]
    fn server_answers_ping_synth_health_and_shutdown_and_drains() {
        let dir = std::env::temp_dir().join(format!("oasys-serve-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("unit.sock");
        let server = Server::bind(
            ServeOptions::new(&socket)
                .with_workers(1)
                .with_max_inflight(2)
                .with_cache_entries(64),
        )
        .unwrap();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let pong = request(&socket, &op_request("ping")).unwrap();
        let pong = json::parse(&pong).unwrap();
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));

        let spec_text = "dc_gain_db = 60\nunity_gain_mhz = 0.5\nphase_margin_deg = 45\n\
                         load_pf = 5\nslew_rate_v_per_us = 2\n";
        let tech_text = oasys_process::techfile::write(&oasys_process::builtin::cmos_5um());
        let answer = request(&socket, &synth_request(spec_text, &tech_text, None)).unwrap();
        let answer = json::parse(&answer).unwrap();
        assert_eq!(answer.get("status").and_then(Json::as_str), Some("ok"));
        let netlist = answer.get("netlist").and_then(Json::as_str).unwrap();
        assert!(netlist.contains(".END"), "netlist should be a SPICE deck");
        // An unloaded server answers in normal (verified) mode.
        assert!(
            answer.get("meets_spec").and_then(Json::as_bool).is_some(),
            "normal mode verifies: {answer:?}"
        );
        assert_eq!(answer.get("degraded"), None);

        let health = request(&socket, &op_request("health")).unwrap();
        let health = json::parse(&health).unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("brownout").and_then(Json::as_bool), Some(false));
        assert_eq!(health.get("workers").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            health.get("workers_replaced").and_then(Json::as_num),
            Some(0.0)
        );
        assert!(health.get("served").and_then(Json::as_num).unwrap() >= 2.0);

        let bad = request(&socket, "{\"proto\":\"oasys-serve/1\",\"op\":\"launch\"}").unwrap();
        let bad = json::parse(&bad).unwrap();
        assert_eq!(bad.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(bad.get("kind").and_then(Json::as_str), Some("protocol"));

        let drain = request(&socket, &op_request("shutdown")).unwrap();
        let drain = json::parse(&drain).unwrap();
        assert_eq!(drain.get("draining").and_then(Json::as_bool), Some(true));

        let report = runner.join().unwrap();
        assert!(report.served >= 5);
        assert_eq!(report.evicted, 0);
        assert_eq!(report.workers_replaced, 0);
        assert!(!socket.exists(), "drain must remove the socket file");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
