//! End-to-end verification of synthesized designs against the bundled
//! analog simulator.
//!
//! The paper verifies each synthesized circuit by detailed SPICE
//! simulation; this module does the same with [`oasys_sim`]: it builds an
//! open-loop test bench around the design's ports, nulls the systematic
//! input offset by bisection, sweeps the small-signal frequency response,
//! and extracts the Table 2 measured columns.
//!
//! Before any simulation runs, the design's netlist goes through the
//! electrical-rule checker ([`oasys_netlist::lint`]); the resulting
//! [`oasys_lint::Report`] rides along in [`Verification::erc`] so callers
//! can gate on it (the CLI's `--deny-warnings`).

use crate::styles::OpAmpDesign;
use oasys_netlist::{Circuit, NodeId, SourceValue};
use oasys_process::Process;
use oasys_sim::ac::{self, AcSweepSpec, SolveAcError};
use oasys_sim::dc::{self, SolveDcError};
use oasys_sim::metrics::{output_swing, AcMetrics, Bode};
use oasys_sim::sweep;
use oasys_sim::tran;
use oasys_telemetry::{sym, sym_display, Sym, Telemetry};
use std::error::Error;
use std::fmt;

/// Pre-interned symbols for the verifier's root span, its nine phase
/// spans, and the `style` annotation key.
struct VerifySyms {
    root: Sym,
    style: Sym,
    erc: Sym,
    offset_null: Sym,
    dc: Sym,
    ac: Sym,
    swing: Sym,
    slew: Sym,
    cmrr: Sym,
    noise: Sym,
    psrr: Sym,
}

fn verify_syms() -> &'static VerifySyms {
    static SYMS: std::sync::OnceLock<VerifySyms> = std::sync::OnceLock::new();
    SYMS.get_or_init(|| VerifySyms {
        root: sym("verify"),
        style: sym("style"),
        erc: sym("verify:erc"),
        offset_null: sym("verify:offset-null"),
        dc: sym("verify:dc"),
        ac: sym("verify:ac"),
        swing: sym("verify:swing"),
        slew: sym("verify:slew"),
        cmrr: sym("verify:cmrr"),
        noise: sym("verify:noise"),
        psrr: sym("verify:psrr"),
    })
}

/// Error returned when the verification bench cannot be built or solved.
#[derive(Debug)]
pub enum VerifyError {
    /// The design's circuit lacks one of the required ports.
    MissingPort(&'static str),
    /// The test bench failed to assemble.
    Bench(String),
    /// The DC operating point failed even after continuation.
    Dc(SolveDcError),
    /// The AC sweep failed.
    Ac(SolveAcError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingPort(port) => {
                write!(f, "design circuit has no `{port}` port")
            }
            VerifyError::Bench(detail) => write!(f, "test bench assembly failed: {detail}"),
            VerifyError::Dc(e) => write!(f, "verification dc analysis failed: {e}"),
            VerifyError::Ac(e) => write!(f, "verification ac analysis failed: {e}"),
        }
    }
}

impl Error for VerifyError {}

impl From<SolveDcError> for VerifyError {
    fn from(e: SolveDcError) -> Self {
        VerifyError::Dc(e)
    }
}

impl From<SolveAcError> for VerifyError {
    fn from(e: SolveAcError) -> Self {
        VerifyError::Ac(e)
    }
}

/// Simulator-measured performance: the "actual" half of a Table 2 row.
/// Optional entries are `None` when the quantity could not be measured
/// (e.g. the gain never crosses 0 dB inside the sweep).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measured {
    /// Open-loop DC gain, dB.
    pub dc_gain_db: f64,
    /// Unity-gain frequency, Hz.
    pub unity_gain_hz: Option<f64>,
    /// Phase margin, degrees.
    pub phase_margin_deg: Option<f64>,
    /// Slew rate, V/s (requires transient analysis).
    pub slew_v_per_s: Option<f64>,
    /// Symmetric output swing, ±V.
    pub swing_symmetric_v: Option<f64>,
    /// Systematic input offset, V (signed).
    pub offset_v: Option<f64>,
    /// Quiescent power, W.
    pub power_w: f64,
    /// Common-mode rejection ratio at low frequency, dB.
    pub cmrr_db: Option<f64>,
    /// Input-referred noise density at 1 kHz, V/√Hz.
    pub noise_v_rthz: Option<f64>,
    /// Positive-supply rejection ratio at low frequency, dB.
    pub psrr_db: Option<f64>,
}

/// The verification bench plus intermediate artifacts, for callers that
/// want the Bode data (Figure 6) and not just the scalar metrics.
#[derive(Clone, Debug)]
pub struct Verification {
    /// Scalar measurements.
    pub measured: Measured,
    /// The open-loop gain/phase response at the nulled offset.
    pub bode: Bode,
    /// Electrical-rule-check findings on the design netlist (the bench
    /// elements are not linted). Empty for a healthy design.
    pub erc: oasys_lint::Report,
}

/// Builds the open-loop bench around a design: supplies, a differential
/// input pair of sources, and the specified load capacitor.
///
/// Returns the bench circuit and its output node.
fn build_bench(
    design: &OpAmpDesign,
    process: &Process,
    load_f: f64,
) -> Result<(Circuit, NodeId), VerifyError> {
    let mut bench = design.circuit().clone();
    let inp = bench.port("inp").ok_or(VerifyError::MissingPort("inp"))?;
    let inn = bench.port("inn").ok_or(VerifyError::MissingPort("inn"))?;
    let out = bench.port("out").ok_or(VerifyError::MissingPort("out"))?;
    let vdd = bench.port("vdd").ok_or(VerifyError::MissingPort("vdd"))?;
    let vss = bench.port("vss").ok_or(VerifyError::MissingPort("vss"))?;
    let gnd = bench.ground();

    let map_err = |e: oasys_netlist::ValidateError| VerifyError::Bench(e.to_string());
    bench
        .add_vsource("VDD", vdd, gnd, SourceValue::dc(process.vdd().volts()))
        .map_err(map_err)?;
    bench
        .add_vsource("VSS", vss, gnd, SourceValue::dc(process.vss().volts()))
        .map_err(map_err)?;
    bench
        .add_vsource("VIP", inp, gnd, SourceValue::new(0.0, 1.0))
        .map_err(map_err)?;
    bench
        .add_vsource("VIN", inn, gnd, SourceValue::dc(0.0))
        .map_err(map_err)?;
    bench
        .add_capacitor("CLOAD", out, gnd, load_f)
        .map_err(map_err)?;
    Ok((bench, out))
}

/// Measures a synthesized design on the simulator.
///
/// The systematic offset is nulled first (bisecting the non-inverting
/// input for a 0 V output); the AC sweep and DC transfer sweep then run
/// at that bias. Output swing and slew rate are measured in closed-loop
/// benches (an inverting stage holds the input common mode fixed); power
/// comes from the nulled DC point.
///
/// # Errors
///
/// Returns [`VerifyError`] if the bench cannot be assembled or the
/// underlying analyses fail outright. Individual unmeasurable quantities
/// are reported as `None` rather than errors.
pub fn verify(
    design: &OpAmpDesign,
    process: &Process,
    load_f: f64,
) -> Result<Verification, VerifyError> {
    verify_with(design, process, load_f, &Telemetry::disabled())
}

/// [`verify`] with run telemetry recorded into `tel`.
///
/// Opens a root `verify` span with one `verify:<phase>` child per
/// measurement phase; the simulator's own spans and counters
/// (`sim.dc.newton_iterations`, `sim.ac.points`, `sim.tran.steps`) nest
/// underneath.
///
/// # Errors
///
/// Same failure modes as [`verify`].
pub fn verify_with(
    design: &OpAmpDesign,
    process: &Process,
    load_f: f64,
    tel: &Telemetry,
) -> Result<Verification, VerifyError> {
    let v = verify_syms();
    let root = tel.span_sym(v.root);
    if tel.is_enabled() {
        root.annotate_sym(v.style, sym_display("", &design.style()));
    }

    // Static electrical-rule check of the raw design (before the bench
    // adds supplies — the checker treats declared ports as driven).
    let erc = {
        let _s = tel.span_sym(v.erc);
        oasys_netlist::lint::lint(design.circuit(), Some(process))
    };

    let (mut bench, out) = build_bench(design, process, load_f)?;

    // Null the systematic offset. The open-loop gain makes the transfer
    // essentially a step; ±0.5 V of differential input always brackets it.
    let offset = {
        let _s = tel.span_sym(v.offset_null);
        sweep::bisect_input(&bench, process, "VIP", out, 0.0, -0.5, 0.5).ok()
    };
    if let Some(v) = offset {
        bench
            .set_source_dc("VIP", v)
            .map_err(|e| VerifyError::Bench(e.to_string()))?;
    }

    // DC point for power.
    let dc_solution = {
        let _s = tel.span_sym(v.dc);
        dc::solve_with(&bench, process, tel)?
    };
    let power = dc_solution.supply_power(&bench).abs();

    // AC response at the nulled bias.
    let spec = AcSweepSpec::standard();
    let ac_solution = {
        let _s = tel.span_sym(v.ac);
        ac::solve_at_with(&bench, process, &dc_solution, &spec, tel)?
    };
    let bode = Bode::from_ac(&ac_solution, out);
    let metrics = AcMetrics::extract(&bode);

    // Output swing from a DC transfer sweep in an inverting
    // configuration (fixed input common mode, the datasheet method).
    let swing = {
        let _s = tel.span_sym(v.swing);
        measure_swing(design, process)
    };

    // Slew rate from a large-signal step in an inverting unity-gain
    // bench (transient analysis).
    let slew = {
        let _s = tel.span_sym(v.slew);
        measure_slew(design, process, load_f, tel)
    };

    // Common-mode gain: re-run the low-frequency point with the AC
    // stimulus on both inputs; CMRR = A_dm / A_cm.
    let cmrr = {
        let _s = tel.span_sym(v.cmrr);
        measure_cmrr(&bench, process, out, metrics.dc_gain.db())
    };

    // Input-referred noise at 1 kHz (well inside the open-loop passband).
    let noise = {
        let _s = tel.span_sym(v.noise);
        oasys_sim::noise::analyze(&bench, process, &dc_solution, out, 1e3)
            .ok()
            .map(|r| r.input_density)
    };

    // Positive-supply rejection: re-excite with the AC stimulus on VDD.
    let psrr = {
        let _s = tel.span_sym(v.psrr);
        measure_rejection(&bench, process, out, metrics.dc_gain.db(), "VDD")
    };

    let measured = Measured {
        dc_gain_db: metrics.dc_gain.db(),
        unity_gain_hz: metrics.unity_gain_freq.map(|f| f.hertz()),
        phase_margin_deg: metrics.phase_margin.map(|d| d.degrees()),
        slew_v_per_s: slew,
        swing_symmetric_v: swing,
        offset_v: offset,
        power_w: power,
        cmrr_db: cmrr,
        noise_v_rthz: noise,
        psrr_db: psrr,
    };
    Ok(Verification {
        measured,
        bode,
        erc,
    })
}

/// Measures the common-mode rejection ratio: the open-loop bench is
/// re-excited with the AC stimulus on *both* inputs, and
/// `CMRR = A_dm − A_cm` in dB at low frequency.
fn measure_cmrr(bench: &Circuit, process: &Process, out: NodeId, adm_db: f64) -> Option<f64> {
    let mut cm_bench = bench.clone();
    // VIN gets the same unit AC stimulus VIP already carries.
    if let Some(oasys_netlist::Element::Vsource(v)) = cm_bench.element_mut("VIN") {
        v.value = SourceValue::new(v.value.dc_value(), 1.0);
    } else {
        return None;
    }
    let spec = AcSweepSpec::new(1.0, 100.0, 1).ok()?;
    let ac_solution = ac::solve(&cm_bench, process, &spec).ok()?;
    let acm = ac_solution.transfer(out)[0].abs().max(1e-12);
    Some(adm_db - 20.0 * acm.log10())
}

/// Measures a supply-rejection ratio: move the unit AC stimulus from the
/// input onto the named supply source and compare against the
/// differential gain: `xSRR = A_dm − A_supply` in dB.
fn measure_rejection(
    bench: &Circuit,
    process: &Process,
    out: NodeId,
    adm_db: f64,
    supply: &str,
) -> Option<f64> {
    let mut sr_bench = bench.clone();
    if let Some(oasys_netlist::Element::Vsource(v)) = sr_bench.element_mut("VIP") {
        v.value = SourceValue::new(v.value.dc_value(), 0.0);
    }
    if let Some(oasys_netlist::Element::Vsource(v)) = sr_bench.element_mut(supply) {
        v.value = SourceValue::new(v.value.dc_value(), 1.0);
    } else {
        return None;
    }
    let spec = AcSweepSpec::new(1.0, 100.0, 1).ok()?;
    let ac_solution = ac::solve(&sr_bench, process, &spec).ok()?;
    let a_supply = ac_solution.transfer(out)[0].abs().max(1e-12);
    Some(adm_db - 20.0 * a_supply.log10())
}

/// Closed-loop gain of the swing-measurement amplifier.
const SWING_GAIN: f64 = 10.0;

/// Measures the output swing with the amp in an inverting gain-of-10
/// configuration: the feedback holds the input common mode at the
/// mid-rail virtual ground, so the measurement reflects the output
/// stage's compliance limits — the quantity the spec constrains — rather
/// than the input stage's common-mode range.
fn measure_swing(design: &OpAmpDesign, process: &Process) -> Option<f64> {
    let mut bench = design.circuit().clone();
    let inp = bench.port("inp")?;
    let inn = bench.port("inn")?;
    let out = bench.port("out")?;
    let vdd = bench.port("vdd")?;
    let vss = bench.port("vss")?;
    let gnd = bench.ground();
    let vin = bench.node("swing_vin");

    bench
        .add_vsource("VDD", vdd, gnd, SourceValue::dc(process.vdd().volts()))
        .ok()?;
    bench
        .add_vsource("VSS", vss, gnd, SourceValue::dc(process.vss().volts()))
        .ok()?;
    bench
        .add_vsource("VINP", inp, gnd, SourceValue::dc(0.0))
        .ok()?;
    bench
        .add_vsource("VSW", vin, gnd, SourceValue::dc(0.0))
        .ok()?;
    // Inverting amp: R1 into the virtual ground, R2 as feedback. Large
    // values so the feedback network does not load the output stage.
    let r1 = 1e6;
    bench.add_resistor("R1", vin, inn, r1).ok()?;
    bench.add_resistor("R2", inn, out, r1 * SWING_GAIN).ok()?;

    let span = process.supply_span().volts();
    let delta = 1.2 * span / (2.0 * SWING_GAIN);
    let points = sweep::linspace(-delta, delta, 241);
    let swept = sweep::dc_transfer(&bench, process, "VSW", &points).ok()?;
    let (lo, hi) = output_swing(&swept, out, 0.25)?;
    Some(lo.abs().min(hi.abs()))
}

/// Output transition amplitude for the slew measurement, ±V (large enough
/// that the mid-transition error fully steers the input stage, small
/// enough to stay inside every design's output range).
const SLEW_STEP_V: f64 = 2.0;

/// Measures the slew rate with the amp in an inverting *unity*-gain
/// configuration: a ±[`SLEW_STEP_V`] input step commands a ∓2·SLEW_STEP_V
/// output transition. Inverting (rather than follower) topology keeps the
/// input pair's capacitance off the output node; unity (rather than
/// higher) closed-loop gain keeps the summing-node error large enough to
/// fully steer the input stage throughout the measured window.
fn measure_slew(
    design: &OpAmpDesign,
    process: &Process,
    load_f: f64,
    tel: &Telemetry,
) -> Option<f64> {
    let mut bench = design.circuit().clone();
    let inp = bench.port("inp")?;
    let inn = bench.port("inn")?;
    let out = bench.port("out")?;
    let vdd = bench.port("vdd")?;
    let vss = bench.port("vss")?;
    let gnd = bench.ground();
    let vin = bench.node("slew_vin");
    bench
        .add_vsource("VDD", vdd, gnd, SourceValue::dc(process.vdd().volts()))
        .ok()?;
    bench
        .add_vsource("VSS", vss, gnd, SourceValue::dc(process.vss().volts()))
        .ok()?;
    bench
        .add_vsource("VINP", inp, gnd, SourceValue::dc(0.0))
        .ok()?;
    bench
        .add_vsource("VSW", vin, gnd, SourceValue::dc(0.0))
        .ok()?;
    let r1 = 1e6;
    bench.add_resistor("R1", vin, inn, r1).ok()?;
    bench.add_resistor("R2", inn, out, r1).ok()?;
    bench.add_capacitor("CLOAD", out, gnd, load_f).ok()?;

    // Budget the time axis from the predicted slew so the transition is
    // well resolved regardless of the design's speed.
    let sr_pred = design.predicted().slew_v_per_s.max(1e4);
    let transition = 2.0 * SLEW_STEP_V / sr_pred;
    let t_stop = 6.0 * transition;
    let dt = transition / 150.0;
    let spec = tran::TranSpec::new(t_stop, dt).ok()?;

    let run = |v0: f64, v1: f64| -> Option<f64> {
        let mut stimuli = tran::Stimuli::new();
        stimuli.step("VSW", v0, v1, 2.0 * dt);
        let solution = tran::solve_with(&bench, process, &spec, &stimuli, tel).ok()?;
        // Inverting unity gain: the output mirrors the input step.
        solution.slew_between(out, -v0, -v1, 0.15, 0.65)
    };
    let rising = run(SLEW_STEP_V, -SLEW_STEP_V)?;
    let falling = run(-SLEW_STEP_V, SLEW_STEP_V)?;
    Some(rising.min(falling))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;
    use crate::synth::synthesize;
    use oasys_process::builtin;

    #[test]
    fn case_a_measures_close_to_prediction() {
        let process = builtin::cmos_5um();
        let spec = test_cases::spec_a();
        let result = synthesize(&spec, &process).unwrap();
        let design = result.selected();
        let v = verify(design, &process, spec.load().farads()).unwrap();
        let m = &v.measured;
        let p = design.predicted();

        // Gain within a couple of dB of the square-law prediction.
        assert!(
            (m.dc_gain_db - p.dc_gain_db).abs() < 6.0,
            "predicted {:.1} dB, measured {:.1} dB",
            p.dc_gain_db,
            m.dc_gain_db
        );
        // Unity-gain frequency within 40% (device parasitics shift it).
        let fu = m.unity_gain_hz.expect("gain crosses 0 dB");
        assert!(
            (fu / p.unity_gain_hz - 1.0).abs() < 0.4,
            "predicted {:.3e}, measured {fu:.3e}",
            p.unity_gain_hz
        );
        // Spec satisfaction in simulation.
        assert!(m.dc_gain_db >= spec.dc_gain().db() - 1.0);
        assert!(fu >= spec.unity_gain_freq().hertz() * 0.9);
        let pm = m.phase_margin_deg.expect("phase margin measurable");
        assert!(pm >= 40.0, "measured PM {pm:.1}°");
        assert!(m.power_w > 0.0);
    }

    #[test]
    fn synthesized_designs_pass_erc_clean() {
        // Every style's schematic should come out of synthesis with no
        // electrical-rule findings — floating gates or sub-minimum
        // geometry here would mean a template bug.
        let process = builtin::cmos_5um();
        for spec in [test_cases::spec_a(), test_cases::spec_b()] {
            let result = synthesize(&spec, &process).unwrap();
            for outcome in result.outcomes() {
                let Some(design) = outcome.design() else {
                    continue;
                };
                let erc = oasys_netlist::lint::lint(design.circuit(), Some(&process));
                assert!(
                    erc.is_empty(),
                    "{} ERC findings:\n{}",
                    design.style(),
                    erc.render_human()
                );
            }
            let v = verify(result.selected(), &process, spec.load().farads()).unwrap();
            assert!(v.erc.is_empty(), "{}", v.erc.render_human());
        }
    }

    #[test]
    fn offset_is_nulled_to_millivolts() {
        let process = builtin::cmos_5um();
        let spec = test_cases::spec_a();
        let result = synthesize(&spec, &process).unwrap();
        let v = verify(result.selected(), &process, spec.load().farads()).unwrap();
        let off = v.measured.offset_v.expect("bisection converges");
        assert!(off.abs() < 0.05, "offset {off} V");
    }

    #[test]
    fn cmrr_is_measured_and_substantial() {
        let process = builtin::cmos_5um();
        let spec = test_cases::spec_a();
        let result = synthesize(&spec, &process).unwrap();
        let v = verify(result.selected(), &process, spec.load().farads()).unwrap();
        let cmrr = v.measured.cmrr_db.expect("cmrr measurable");
        assert!(cmrr > 40.0, "CMRR {cmrr:.1} dB");
    }

    #[test]
    fn cascoded_tail_improves_cmrr() {
        // Case C's plan cascodes the tail; its measured CMRR should beat
        // case B's simple-tail first stage.
        let process = builtin::cmos_5um();
        let measure = |spec: &crate::OpAmpSpec| {
            let result = synthesize(spec, &process).unwrap();
            verify(result.selected(), &process, spec.load().farads())
                .unwrap()
                .measured
                .cmrr_db
                .unwrap()
        };
        let b = measure(&test_cases::spec_b());
        let c = measure(&test_cases::spec_c());
        assert!(
            c > b + 10.0,
            "cascoded tail should add CMRR: case B {b:.1} dB, case C {c:.1} dB"
        );
    }

    #[test]
    fn measured_noise_tracks_prediction() {
        let process = builtin::cmos_5um();
        let spec = test_cases::spec_a();
        let result = synthesize(&spec, &process).unwrap();
        let design = result.selected();
        let v = verify(design, &process, spec.load().farads()).unwrap();
        let measured = v.measured.noise_v_rthz.expect("noise measurable");
        let predicted = design.predicted().noise_v_rthz;
        // The hand formula counts only the signal-path devices; the full
        // analysis adds bias branches, so measured ≥ predicted but within 2×.
        assert!(
            measured >= predicted * 0.8 && measured <= predicted * 2.5,
            "predicted {:.1} nV/√Hz, measured {:.1} nV/√Hz",
            predicted * 1e9,
            measured * 1e9
        );
        // Sanity: tens of nV/√Hz for a µA-biased 5 µm input stage.
        assert!(measured > 5e-9 && measured < 500e-9);
    }

    #[test]
    fn noise_spec_forces_larger_gm() {
        // A tight noise ceiling should still synthesize (the lower-vov
        // rule raises gm1) or fail with the noise diagnosis.
        let spec = crate::OpAmpSpec::builder()
            .dc_gain_db(55.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .max_noise_nv_rthz(40.0)
            .build()
            .unwrap();
        let process = builtin::cmos_5um();
        match synthesize(&spec, &process) {
            Ok(result) => {
                assert!(result.selected().predicted().noise_v_rthz <= 40e-9 * 1.01);
            }
            Err(e) => {
                assert!(e.to_string().contains("noise") || !e.rejections().is_empty());
            }
        }
    }

    #[test]
    fn psrr_is_measured_and_positive() {
        let process = builtin::cmos_5um();
        let spec = test_cases::spec_b();
        let result = synthesize(&spec, &process).unwrap();
        let v = verify(result.selected(), &process, spec.load().farads()).unwrap();
        let psrr = v.measured.psrr_db.expect("psrr measurable");
        assert!(psrr > 20.0, "PSRR {psrr:.1} dB");
    }

    #[test]
    fn bode_data_spans_the_sweep() {
        let process = builtin::cmos_5um();
        let spec = test_cases::spec_a();
        let result = synthesize(&spec, &process).unwrap();
        let v = verify(result.selected(), &process, spec.load().farads()).unwrap();
        assert!(v.bode.frequencies().len() > 50);
        // Gain falls with frequency overall.
        let g = v.bode.gain_db();
        assert!(g[0] > *g.last().unwrap());
    }
}
