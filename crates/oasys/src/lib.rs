//! OASYS: knowledge-based synthesis of sized CMOS op-amp schematics.
//!
//! This crate reproduces the system described in *"A Prototype Framework
//! for Knowledge-Based Analog Circuit Synthesis"* (Harjani, Rutenbar,
//! Carley — DAC 1987): from a set of performance specifications
//! ([`OpAmpSpec`]) and a fabrication process description
//! ([`oasys_process::Process`]), produce a sized transistor-level
//! schematic.
//!
//! The architecture follows the paper:
//!
//! * **Fixed, hierarchical topology templates** ([`styles`]) — a one-stage
//!   operational transconductance amplifier and a two-stage unbuffered op
//!   amp (plus a folded-cascode extension), each an interconnection of
//!   reusable sub-blocks from [`oasys_blocks`];
//! * **Plan-driven translation** — each style owns a plan
//!   ([`oasys_plan::Plan`]) of ~20 algorithmic steps that translate op-amp
//!   specifications into sub-block specifications, with ~10 patch rules
//!   that fire on failures (cascode a stage, skew the gain partition,
//!   insert a level shifter, re-run from an earlier step);
//! * **Breadth-first design-style selection** ([`synth`]) — every style is
//!   designed; among the successes the smallest estimated area (active +
//!   compensation capacitor) wins;
//! * **Verification** ([`mod@verify`]) — every synthesized design is
//!   re-measured end-to-end with the [`oasys_sim`] analog simulator, the
//!   reproduction's stand-in for the paper's SPICE runs.
//!
//! # Examples
//!
//! Synthesize the paper's "ordinary" test case A:
//!
//! ```
//! use oasys::{synthesize, OpAmpSpec};
//! use oasys_process::builtin;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = OpAmpSpec::builder()
//!     .dc_gain_db(60.0)
//!     .unity_gain_mhz(0.5)
//!     .phase_margin_deg(45.0)
//!     .load_pf(5.0)
//!     .slew_rate_v_per_us(2.0)
//!     .build()?;
//! let process = builtin::cmos_5um();
//! let result = synthesize(&spec, &process)?;
//! println!("selected: {}", result.selected().style());
//! println!("{}", result.selected().predicted());
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod comparator;
pub mod dataset;
pub mod datasheet;
pub mod fully_differential;
pub mod hierarchy;
pub mod integrity;
pub mod serve;
pub mod spec;
pub mod specfile;
pub mod styles;
pub mod synth;
pub mod verify;

pub use datasheet::{Datasheet, Predicted};
pub use oasys_plan::SearchOptions;
pub use spec::{OpAmpSpec, OpAmpSpecBuilder, SpecError};
pub use styles::{analyze_all_plans, analyze_plan, OpAmpDesign, OpAmpStyle, StyleError};
pub use synth::{
    synthesize, synthesize_with, synthesize_with_cache, synthesize_with_options, OpAmpDesigner,
    StyleOutcome, Synthesis, SynthesisError, STYLE_THREADS_ENV,
};
pub use verify::{verify, verify_with, Measured, VerifyError};
