//! Predicted performance and spec/predicted/measured datasheets.

use crate::spec::OpAmpSpec;
use crate::verify::Measured;
use oasys_units::eng;
use std::fmt;

/// The performance a style plan predicts from its circuit equations —
/// the "design values" half of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Predicted {
    /// Open-loop DC gain, dB.
    pub dc_gain_db: f64,
    /// Unity-gain frequency, Hz.
    pub unity_gain_hz: f64,
    /// Phase margin, degrees.
    pub phase_margin_deg: f64,
    /// Slew rate, V/s.
    pub slew_v_per_s: f64,
    /// Most negative output the amp can drive linearly, V.
    pub swing_neg_v: f64,
    /// Most positive output, V.
    pub swing_pos_v: f64,
    /// Systematic input offset magnitude, V.
    pub offset_v: f64,
    /// Quiescent power, W.
    pub power_w: f64,
    /// Common-mode rejection ratio, dB.
    pub cmrr_db: f64,
    /// Input-referred thermal noise density, V/√Hz.
    pub noise_v_rthz: f64,
}

impl Predicted {
    /// Symmetric swing magnitude: `min(|neg|, pos)`.
    #[must_use]
    pub fn swing_symmetric(&self) -> f64 {
        self.swing_neg_v.abs().min(self.swing_pos_v)
    }
}

impl fmt::Display for Predicted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  gain          {:.1} dB", self.dc_gain_db)?;
        writeln!(f, "  unity-gain f  {}", eng(self.unity_gain_hz, "Hz"))?;
        writeln!(f, "  phase margin  {:.1}°", self.phase_margin_deg)?;
        writeln!(f, "  slew rate     {:.2} V/µs", self.slew_v_per_s / 1e6)?;
        writeln!(
            f,
            "  output swing  {:+.2} V … {:+.2} V",
            self.swing_neg_v, self.swing_pos_v
        )?;
        writeln!(f, "  offset        {}", eng(self.offset_v, "V"))?;
        writeln!(f, "  CMRR          {:.0} dB", self.cmrr_db)?;
        writeln!(f, "  input noise   {:.0} nV/√Hz", self.noise_v_rthz * 1e9)?;
        write!(f, "  power         {}", eng(self.power_w, "W"))
    }
}

/// A spec / predicted / measured comparison table — one Table 2 column
/// triple for one test case.
#[derive(Clone, Debug)]
pub struct Datasheet {
    title: String,
    rows: Vec<Row>,
}

#[derive(Clone, Debug)]
struct Row {
    name: &'static str,
    spec: String,
    predicted: String,
    measured: String,
    pass: Option<bool>,
}

impl Datasheet {
    /// Assembles the comparison for one design.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        spec: &OpAmpSpec,
        predicted: &Predicted,
        measured: Option<&Measured>,
    ) -> Self {
        let mut rows = Vec::new();
        let fmt_db = |v: f64| format!("{v:.1} dB");
        let na = || "—".to_owned();

        let m_gain = measured.map(|m| m.dc_gain_db);
        rows.push(Row {
            name: "DC gain",
            spec: format!("≥ {}", fmt_db(spec.dc_gain().db())),
            predicted: fmt_db(predicted.dc_gain_db),
            measured: m_gain.map_or_else(na, fmt_db),
            pass: m_gain.map(|g| g >= spec.dc_gain().db() - 0.5),
        });

        let m_fu = measured.and_then(|m| m.unity_gain_hz);
        rows.push(Row {
            name: "unity-gain freq",
            spec: format!("≥ {}", eng(spec.unity_gain_freq().hertz(), "Hz")),
            predicted: eng(predicted.unity_gain_hz, "Hz"),
            measured: m_fu.map_or_else(na, |v| eng(v, "Hz")),
            pass: m_fu.map(|v| v >= spec.unity_gain_freq().hertz() * 0.9),
        });

        let m_pm = measured.and_then(|m| m.phase_margin_deg);
        rows.push(Row {
            name: "phase margin",
            spec: format!("≥ {:.0}°", spec.phase_margin().degrees()),
            predicted: format!("{:.1}°", predicted.phase_margin_deg),
            measured: m_pm.map_or_else(na, |v| format!("{v:.1}°")),
            pass: m_pm.map(|v| v >= spec.phase_margin().degrees() * 0.7),
        });

        if spec.has_slew() {
            let m_slew = measured.and_then(|m| m.slew_v_per_s);
            rows.push(Row {
                name: "slew rate",
                spec: format!("≥ {:.1} V/µs", spec.slew_rate().volts_per_microsecond()),
                predicted: format!("{:.1} V/µs", predicted.slew_v_per_s / 1e6),
                measured: m_slew.map_or_else(na, |v| format!("{:.1} V/µs", v / 1e6)),
                // First-cut tolerance: flag only gross (>2×) shortfalls.
                pass: m_slew.map(|v| v >= spec.slew_rate().volts_per_second() * 0.5),
            });
        }
        if spec.has_swing() {
            let m_swing = measured.and_then(|m| m.swing_symmetric_v);
            rows.push(Row {
                name: "output swing",
                spec: format!("≥ ±{:.1} V", spec.output_swing().volts()),
                predicted: format!("±{:.2} V", predicted.swing_symmetric()),
                measured: m_swing.map_or_else(na, |v| format!("±{v:.2} V")),
                pass: m_swing.map(|v| v >= spec.output_swing().volts() * 0.9),
            });
        }
        if spec.has_offset() {
            let m_off = measured.and_then(|m| m.offset_v);
            rows.push(Row {
                name: "offset",
                spec: format!("≤ {}", eng(spec.max_offset().volts(), "V")),
                predicted: eng(predicted.offset_v, "V"),
                measured: m_off.map_or_else(na, |v| eng(v.abs(), "V")),
                pass: m_off.map(|v| v.abs() <= spec.max_offset().volts() * 1.5),
            });
        }
        if spec.has_cmrr() {
            let m_cmrr = measured.and_then(|m| m.cmrr_db);
            rows.push(Row {
                name: "CMRR",
                spec: format!("≥ {:.0} dB", spec.min_cmrr().db()),
                predicted: format!("{:.0} dB", predicted.cmrr_db),
                measured: m_cmrr.map_or_else(na, |v| format!("{v:.0} dB")),
                pass: m_cmrr.map(|v| v >= spec.min_cmrr().db() - 3.0),
            });
        }
        if spec.has_noise() {
            let m_noise = measured.and_then(|m| m.noise_v_rthz);
            rows.push(Row {
                name: "input noise",
                spec: format!("≤ {:.0} nV/√Hz", spec.max_noise_v_rthz() * 1e9),
                predicted: format!("{:.0} nV/√Hz", predicted.noise_v_rthz * 1e9),
                measured: m_noise.map_or_else(na, |v| format!("{:.0} nV/√Hz", v * 1e9)),
                pass: m_noise.map(|v| v <= spec.max_noise_v_rthz() * 1.3),
            });
        }
        let m_pow = measured.map(|m| m.power_w);
        rows.push(Row {
            name: "power",
            spec: if spec.has_power() {
                format!("≤ {}", eng(spec.max_power().watts(), "W"))
            } else {
                na()
            },
            predicted: eng(predicted.power_w, "W"),
            measured: m_pow.map_or_else(na, |v| eng(v, "W")),
            pass: None,
        });

        Self {
            title: title.into(),
            rows,
        }
    }

    /// `true` when every measured row with a pass criterion passed.
    #[must_use]
    pub fn all_measured_pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass.unwrap_or(true))
    }

    /// Names of rows whose measured value missed the spec.
    #[must_use]
    pub fn failures(&self) -> Vec<&'static str> {
        self.rows
            .iter()
            .filter(|r| r.pass == Some(false))
            .map(|r| r.name)
            .collect()
    }
}

impl fmt::Display for Datasheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── {} ──", self.title)?;
        writeln!(
            f,
            "{:<16} {:>14} {:>14} {:>14}  ",
            "parameter", "spec", "predicted", "measured"
        )?;
        for row in &self.rows {
            let mark = match row.pass {
                Some(true) => "✓",
                Some(false) => "✗",
                None => " ",
            };
            writeln!(
                f,
                "{:<16} {:>14} {:>14} {:>14} {mark}",
                row.name, row.spec, row.predicted, row.measured
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;

    fn predicted() -> Predicted {
        Predicted {
            dc_gain_db: 66.0,
            unity_gain_hz: 600e3,
            phase_margin_deg: 62.0,
            slew_v_per_s: 2.5e6,
            swing_neg_v: -3.4,
            swing_pos_v: 3.6,
            offset_v: 2e-3,
            power_w: 0.4e-3,
            cmrr_db: 80.0,
            noise_v_rthz: 60e-9,
        }
    }

    #[test]
    fn swing_symmetric_takes_worse_side() {
        assert!((predicted().swing_symmetric() - 3.4).abs() < 1e-12);
    }

    #[test]
    fn datasheet_without_measurement_renders() {
        let sheet = Datasheet::new("case A", &test_cases::spec_a(), &predicted(), None);
        let text = sheet.to_string();
        assert!(text.contains("DC gain"));
        assert!(text.contains("66.0 dB"));
        assert!(text.contains("—"));
        assert!(sheet.all_measured_pass(), "no measurements → vacuous pass");
    }

    #[test]
    fn datasheet_flags_failures() {
        let measured = Measured {
            dc_gain_db: 50.0, // below the 60 dB spec
            unity_gain_hz: Some(600e3),
            phase_margin_deg: Some(50.0),
            slew_v_per_s: None,
            swing_symmetric_v: Some(3.4),
            offset_v: Some(1e-3),
            power_w: 0.5e-3,
            cmrr_db: None,
            noise_v_rthz: None,
            psrr_db: None,
        };
        let sheet = Datasheet::new(
            "case A",
            &test_cases::spec_a(),
            &predicted(),
            Some(&measured),
        );
        assert!(!sheet.all_measured_pass());
        assert_eq!(sheet.failures(), vec!["DC gain"]);
        assert!(sheet.to_string().contains('✗'));
    }

    #[test]
    fn cmrr_and_noise_rows_appear_when_specified() {
        let spec = crate::OpAmpSpec::builder()
            .dc_gain_db(60.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .min_cmrr_db(70.0)
            .max_noise_nv_rthz(100.0)
            .build()
            .unwrap();
        let measured = Measured {
            dc_gain_db: 62.0,
            unity_gain_hz: Some(600e3),
            phase_margin_deg: Some(50.0),
            slew_v_per_s: None,
            swing_symmetric_v: None,
            offset_v: None,
            power_w: 1e-3,
            cmrr_db: Some(85.0),
            noise_v_rthz: Some(60e-9),
            psrr_db: Some(70.0),
        };
        let sheet = Datasheet::new("t", &spec, &predicted(), Some(&measured));
        let text = sheet.to_string();
        assert!(text.contains("CMRR"), "{text}");
        assert!(text.contains("85 dB"));
        assert!(text.contains("input noise"));
        assert!(text.contains("60 nV/√Hz"));
        assert!(sheet.all_measured_pass(), "{text}");

        // A failing CMRR measurement is flagged.
        let bad = Measured {
            cmrr_db: Some(40.0),
            ..measured
        };
        let sheet = Datasheet::new("t", &spec, &predicted(), Some(&bad));
        assert_eq!(sheet.failures(), vec!["CMRR"]);
    }

    #[test]
    fn predicted_display_mentions_all_quantities() {
        let text = predicted().to_string();
        for needle in ["gain", "phase margin", "slew", "swing", "offset", "power"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
