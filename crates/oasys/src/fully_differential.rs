//! Fully-differential amplifier synthesis — the last extension the paper
//! names: *"…to include more op amp topologies (e.g., folded cascade and
//! fully differential styles)."*
//!
//! Template: an NMOS differential pair with two PMOS *current-source*
//! loads (no mirror — both drains are outputs), plus the piece every
//! fully-differential amplifier must add: a **common-mode feedback loop**.
//! Two large resistors average the outputs into a sense node; a small 5T
//! OTA (reused from the same sub-block designers) compares that average
//! against ground and drives the PMOS load gates, servoing the output
//! common mode to 0 V. A small capacitor on the loads' gate line
//! stabilizes the loop.
//!
//! Because both outputs are live, this module has its own spec/design/
//! verify types rather than plugging into the single-ended
//! [`crate::OpAmpStyle`] machinery; the differential measurements drive
//! the inputs antiphase and read `v(outp) − v(outn)`.

use crate::spec::SpecError;
use oasys_blocks::area::AreaEstimate;
use oasys_blocks::diffpair::{DiffPair, DiffPairSpec};
use oasys_blocks::mirror::{CurrentMirror, MirrorSpec, MirrorStyle};
use oasys_mos::{sizing, Geometry};
use oasys_netlist::Circuit;
use oasys_plan::{PatchAction, Plan, PlanExecutor, StepOutcome, Trace};
use oasys_process::{Polarity, Process};
use std::fmt;

/// Load-device overdrive, V.
const VOV_LOAD: f64 = 0.25;
/// Initial pair overdrive, V.
const VOV1_INIT: f64 = 0.20;
/// Longest channel, in multiples of the process minimum.
const MAX_L_FACTOR: f64 = 4.0;
/// Design the gain with this safety factor over the spec.
const GAIN_MARGIN: f64 = 1.3;
/// CMFB loop compensation capacitor, F.
const C_CMFB: f64 = 2e-12;

/// Specification for a fully-differential amplifier.
///
/// # Examples
///
/// ```
/// use oasys::fully_differential::FdSpec;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = FdSpec::builder()
///     .diff_gain_db(45.0)
///     .unity_gain_mhz(1.0)
///     .load_pf_per_side(2.0)
///     .build()?;
/// assert!((spec.diff_gain_linear() - 177.8).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FdSpec {
    gain_db: f64,
    unity_gain_hz: f64,
    load_f: f64,
    /// Largest tolerable output common-mode error, V.
    cm_error_v: f64,
}

impl FdSpec {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> FdSpecBuilder {
        FdSpecBuilder::default()
    }

    /// Minimum differential DC gain, dB.
    #[must_use]
    pub fn diff_gain_db(&self) -> f64 {
        self.gain_db
    }

    /// Minimum differential DC gain as a linear ratio.
    #[must_use]
    pub fn diff_gain_linear(&self) -> f64 {
        10f64.powf(self.gain_db / 20.0)
    }

    /// Minimum unity-gain frequency, Hz.
    #[must_use]
    pub fn unity_gain_hz(&self) -> f64 {
        self.unity_gain_hz
    }

    /// Per-side load capacitance, F.
    #[must_use]
    pub fn load_f(&self) -> f64 {
        self.load_f
    }

    /// Output common-mode error budget, V.
    #[must_use]
    pub fn cm_error_v(&self) -> f64 {
        self.cm_error_v
    }
}

impl fmt::Display for FdSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff gain ≥ {:.1} dB, f_u ≥ {:.2} MHz, {:.1} pF/side, CM error ≤ {:.0} mV",
            self.gain_db,
            self.unity_gain_hz / 1e6,
            self.load_f * 1e12,
            self.cm_error_v * 1e3
        )
    }
}

/// Builder for [`FdSpec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FdSpecBuilder {
    gain_db: Option<f64>,
    unity_gain_mhz: Option<f64>,
    load_pf: Option<f64>,
    cm_error_mv: Option<f64>,
}

impl FdSpecBuilder {
    /// Minimum differential DC gain, dB. Required.
    #[must_use]
    pub fn diff_gain_db(mut self, db: f64) -> Self {
        self.gain_db = Some(db);
        self
    }

    /// Minimum unity-gain frequency, MHz. Required.
    #[must_use]
    pub fn unity_gain_mhz(mut self, mhz: f64) -> Self {
        self.unity_gain_mhz = Some(mhz);
        self
    }

    /// Per-side load capacitance, pF. Required.
    #[must_use]
    pub fn load_pf_per_side(mut self, pf: f64) -> Self {
        self.load_pf = Some(pf);
        self
    }

    /// Output common-mode error budget, mV (default 100 mV).
    #[must_use]
    pub fn cm_error_mv(mut self, mv: f64) -> Self {
        self.cm_error_mv = Some(mv);
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for missing or non-positive entries.
    pub fn build(self) -> Result<FdSpec, SpecError> {
        let need = |name: &str, v: Option<f64>| {
            v.filter(|x| *x > 0.0 && x.is_finite()).ok_or_else(|| {
                SpecError::new_public(format!(
                    "fully-differential: `{name}` missing or non-positive"
                ))
            })
        };
        Ok(FdSpec {
            gain_db: need("diff_gain_db", self.gain_db)?,
            unity_gain_hz: need("unity_gain_mhz", self.unity_gain_mhz)? * 1e6,
            load_f: need("load_pf_per_side", self.load_pf)? * 1e-12,
            cm_error_v: self.cm_error_mv.unwrap_or(100.0) * 1e-3,
        })
    }
}

/// A designed fully-differential amplifier.
///
/// Ports: `inp`, `inn`, `outp`, `outn`, `vdd`, `vss`.
#[derive(Clone, Debug)]
pub struct FdDesign {
    spec: FdSpec,
    circuit: Circuit,
    predicted_gain: f64,
    predicted_unity_hz: f64,
    area: AreaEstimate,
    trace: Trace,
}

impl FdDesign {
    /// The specification.
    #[must_use]
    pub fn spec(&self) -> &FdSpec {
        &self.spec
    }

    /// The sized schematic.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Predicted differential gain (linear).
    #[must_use]
    pub fn predicted_gain(&self) -> f64 {
        self.predicted_gain
    }

    /// Predicted unity-gain frequency, Hz.
    #[must_use]
    pub fn predicted_unity_hz(&self) -> f64 {
        self.predicted_unity_hz
    }

    /// Estimated layout area.
    #[must_use]
    pub fn area(&self) -> AreaEstimate {
        self.area
    }

    /// The plan trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of MOSFETs.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.circuit.mosfets().count()
    }
}

/// Fully-differential synthesis error.
#[derive(Debug)]
pub struct FdError {
    reason: String,
}

impl fmt::Display for FdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fully-differential synthesis failed: {}", self.reason)
    }
}

impl std::error::Error for FdError {}

struct State {
    spec: FdSpec,
    process: Process,
    vov1: f64,
    gm1: f64,
    i_tail: f64,
    pair_l_um: f64,
    load_l_um: f64,
    /// Common-mode sense resistance, Ω (sized so it takes only a fifth of
    /// the output-conductance budget; a production design would use
    /// switched-capacitor CMFB to avoid the resistors entirely).
    r_sense: f64,
    pair: Option<DiffPair>,
    load_geom: Option<Geometry>,
    tail: Option<CurrentMirror>,
    cmfb_pair: Option<DiffPair>,
    cmfb_load: Option<CurrentMirror>,
    cmfb_tail: Option<CurrentMirror>,
    r_bias: f64,
    r_bias_cmfb: f64,
    predicted_gain: f64,
}

impl State {
    fn new(spec: &FdSpec, process: &Process) -> Self {
        Self {
            spec: *spec,
            process: process.clone(),
            vov1: VOV1_INIT,
            gm1: 0.0,
            i_tail: 0.0,
            pair_l_um: 0.0,
            load_l_um: 0.0,
            r_sense: 0.0,
            pair: None,
            load_geom: None,
            tail: None,
            cmfb_pair: None,
            cmfb_load: None,
            cmfb_tail: None,
            r_bias: 0.0,
            r_bias_cmfb: 0.0,
            predicted_gain: 0.0,
        }
    }

    fn cmfb_current(&self) -> f64 {
        (self.i_tail / 4.0).max(2e-6)
    }
}

fn build_plan() -> Plan<State> {
    Plan::<State>::builder("fully differential")
        .step("size-input", |s: &mut State| {
            let gm_min = 2.0 * std::f64::consts::PI * s.spec.unity_gain_hz() * s.spec.load_f();
            s.i_tail = (gm_min * s.vov1).max(2e-6);
            s.gm1 = s.i_tail / s.vov1;
            StepOutcome::Done
        })
        .step("gain-budget", |s: &mut State| {
            // The output conductance budget covers three loads per side:
            // the pair device, the current-source load, and the CM sense
            // resistor (which sees a virtual ground differentially). Give
            // the resistor a fifth and split the rest evenly.
            let gout_allowed = s.gm1 / (GAIN_MARGIN * s.spec.diff_gain_linear());
            s.r_sense = 5.0 / gout_allowed;
            let budget = 0.4 * gout_allowed;
            let l_min = s.process.min_length().micrometers();
            let id = s.i_tail / 2.0;
            s.pair_l_um = (s.process.nmos().lambda_l() * id / budget).max(l_min);
            s.load_l_um = (s.process.pmos().lambda_l() * id / budget).max(l_min);
            if s.pair_l_um > MAX_L_FACTOR * l_min || s.load_l_um > MAX_L_FACTOR * l_min {
                return StepOutcome::failed(
                    "gain-short",
                    format!(
                        "needs L = {:.1}/{:.1} µm for {:.1} dB",
                        s.pair_l_um,
                        s.load_l_um,
                        s.spec.diff_gain_db()
                    ),
                );
            }
            StepOutcome::Done
        })
        .step("design-pair", |s: &mut State| {
            let spec =
                DiffPairSpec::new(Polarity::Nmos, s.gm1, s.i_tail).with_length_um(s.pair_l_um);
            match DiffPair::design(&spec, &s.process) {
                Ok(p) => {
                    s.pair = Some(p);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("block-design", e.to_string()),
            }
        })
        .step("design-loads", |s: &mut State| {
            // Plain PMOS current sources sized for half the tail each.
            let p = s.process.pmos();
            let wl = sizing::w_over_l_from_id_vov(s.i_tail / 2.0, VOV_LOAD, p.kprime());
            let w =
                ((wl * s.load_l_um).max(s.process.min_width().micrometers()) / 0.5).ceil() * 0.5;
            match Geometry::new_um(w, s.load_l_um) {
                Ok(g) => {
                    s.load_geom = Some(g);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("block-design", e.to_string()),
            }
        })
        .step("design-tail", |s: &mut State| {
            let spec = MirrorSpec::new(Polarity::Nmos, s.i_tail)
                .with_headroom(1.5)
                .with_only_style(MirrorStyle::Simple);
            match CurrentMirror::design(&spec, &s.process) {
                Ok(m) => {
                    let span = s.process.supply_span().volts();
                    s.r_bias = (span - m.input_voltage()).max(0.5) / m.spec().input_current();
                    s.tail = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("block-design", e.to_string()),
            }
        })
        .step("design-cmfb", |s: &mut State| {
            // A small 5T OTA: enough gain to hold the CM error inside the
            // budget (error ≈ required gate offset / loop gain).
            let i = s.cmfb_current();
            let gm = i / 0.25;
            let pair = DiffPairSpec::new(Polarity::Nmos, gm, i);
            let load = MirrorSpec::new(Polarity::Pmos, i / 2.0)
                .with_headroom(2.0)
                .with_only_style(MirrorStyle::Simple);
            let tail = MirrorSpec::new(Polarity::Nmos, i)
                .with_headroom(1.5)
                .with_only_style(MirrorStyle::Simple);
            let (p, l, t) = match (
                DiffPair::design(&pair, &s.process),
                CurrentMirror::design(&load, &s.process),
                CurrentMirror::design(&tail, &s.process),
            ) {
                (Ok(p), Ok(l), Ok(t)) => (p, l, t),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                    return StepOutcome::failed("block-design", e.to_string())
                }
            };
            let span = s.process.supply_span().volts();
            s.r_bias_cmfb = (span - t.input_voltage()).max(0.5) / t.spec().input_current();
            s.cmfb_pair = Some(p);
            s.cmfb_load = Some(l);
            s.cmfb_tail = Some(t);
            StepOutcome::Done
        })
        .step("predict", |s: &mut State| {
            let pair = s.pair.as_ref().expect("pair designed");
            let id = s.i_tail / 2.0;
            let gds_load = s.process.pmos().lambda(s.load_l_um) * id;
            s.predicted_gain = s.gm1 / (pair.gds() + gds_load + 1.0 / s.r_sense);
            if s.predicted_gain < s.spec.diff_gain_linear() {
                return StepOutcome::failed(
                    "gain-short",
                    format!("predicted gain {:.0}", s.predicted_gain),
                );
            }
            StepOutcome::Done
        })
        .rule(
            "lower-pair-overdrive",
            |s: &State, f| f.code() == "gain-short" && s.vov1 > 0.08,
            |s: &mut State| {
                s.vov1 /= 1.5;
                PatchAction::RestartFrom("size-input".into())
            },
        )
        .rule(
            "give-up",
            |_, f| matches!(f.code(), "gain-short" | "block-design"),
            |_s: &mut State| PatchAction::Abort("fully-differential style infeasible".into()),
        )
        .build()
}

/// Synthesizes a fully-differential amplifier.
///
/// # Errors
///
/// Returns [`FdError`] when the single-stage template cannot reach the
/// gain, or a sub-block designer rejects its translated spec.
pub fn design_fully_differential(spec: &FdSpec, process: &Process) -> Result<FdDesign, FdError> {
    let plan = build_plan();
    let mut state = State::new(spec, process);
    let trace = PlanExecutor::new()
        .run(&plan, &mut state)
        .map_err(|e| FdError {
            reason: e.to_string(),
        })?;
    let circuit = emit(&state).map_err(|e| FdError {
        reason: format!("netlist assembly failed: {e}"),
    })?;
    circuit.validate().map_err(|e| FdError {
        reason: format!("netlist validation failed: {e}"),
    })?;

    let pair = state.pair.as_ref().expect("plan completed");
    let tail = state.tail.as_ref().expect("plan completed");
    let load = state.load_geom.expect("plan completed");
    let cmfb_area = state.cmfb_pair.as_ref().expect("plan completed").area()
        + state.cmfb_load.as_ref().expect("plan completed").area()
        + state.cmfb_tail.as_ref().expect("plan completed").area();
    let w_min = process.min_width().micrometers();
    let r_total = state.r_bias + state.r_bias_cmfb + 2.0 * state.r_sense;
    let area = pair.area()
        + tail.area()
        + AreaEstimate::for_device(&load, process) * 2.0
        + cmfb_area
        + AreaEstimate::for_capacitor(C_CMFB, process)
        + AreaEstimate::from_um2(r_total / 10_000.0 * w_min * w_min, 0.0);

    let gm1 = state.gm1;
    Ok(FdDesign {
        spec: *spec,
        circuit,
        predicted_gain: state.predicted_gain,
        predicted_unity_hz: gm1 / (2.0 * std::f64::consts::PI * spec.load_f()),
        area,
        trace,
    })
}

/// Assembles the amplifier plus its CMFB loop.
fn emit(state: &State) -> Result<Circuit, oasys_netlist::ValidateError> {
    let pair = state.pair.as_ref().expect("plan completed");
    let tail = state.tail.as_ref().expect("plan completed");
    let load = state.load_geom.expect("plan completed");
    let cmfb_pair = state.cmfb_pair.as_ref().expect("plan completed");
    let cmfb_load = state.cmfb_load.as_ref().expect("plan completed");
    let cmfb_tail = state.cmfb_tail.as_ref().expect("plan completed");

    let mut c = Circuit::new("fully-differential amplifier");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let outp = c.node("outp");
    let outn = c.node("outn");
    let tail_node = c.node("tail");
    let nbias = c.node("nbias");
    let pbias = c.node("pbias");
    let vcm = c.node("vcm_sense");
    let gnd = c.ground();
    for (label, node) in [
        ("inp", inp),
        ("inn", inn),
        ("outp", outp),
        ("outn", outn),
        ("vdd", vdd),
        ("vss", vss),
    ] {
        c.mark_port(label, node);
    }

    // Main pair: M1 (gate inp) drains to outn, M2 to outp.
    pair.emit(&mut c, "DP_", inp, inn, outp, outn, tail_node, vss)?;
    // PMOS current-source loads, gates servoed by the CMFB loop.
    c.add_mosfet("LD_M3", Polarity::Pmos, load, outn, pbias, vdd, vdd)?;
    c.add_mosfet("LD_M4", Polarity::Pmos, load, outp, pbias, vdd, vdd)?;
    // Tail mirror and bias.
    tail.emit(&mut c, "TL_", nbias, tail_node, vss, None)?;
    c.add_resistor("RBIAS", vdd, nbias, state.r_bias)?;

    // Common-mode sense and the CMFB error amplifier.
    c.add_resistor("RCM1", outp, vcm, state.r_sense)?;
    c.add_resistor("RCM2", outn, vcm, state.r_sense)?;
    let cm_tail = c.node("cmfb_tail");
    let cm_d1 = c.node("cmfb_d1");
    let cm_nbias = c.node("cmfb_nbias");
    // Error amp output IS the load gate line: inputs (vcm_sense, gnd).
    cmfb_pair.emit(&mut c, "CM_DP_", vcm, gnd, pbias, cm_d1, cm_tail, vss)?;
    cmfb_load.emit(&mut c, "CM_LD_", cm_d1, pbias, vdd, None)?;
    cmfb_tail.emit(&mut c, "CM_TL_", cm_nbias, cm_tail, vss, None)?;
    c.add_resistor("RBIAS_CM", vdd, cm_nbias, state.r_bias_cmfb)?;
    // Loop compensation.
    c.add_capacitor("CCMFB", pbias, gnd, C_CMFB)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_netlist::SourceValue;
    use oasys_process::builtin;
    use oasys_sim::ac::AcSweepSpec;
    use oasys_sim::{ac, dc};

    fn spec() -> FdSpec {
        FdSpec::builder()
            .diff_gain_db(45.0)
            .unity_gain_mhz(1.0)
            .load_pf_per_side(2.0)
            .build()
            .unwrap()
    }

    fn bench(
        design: &FdDesign,
        antiphase: bool,
    ) -> (Circuit, oasys_netlist::NodeId, oasys_netlist::NodeId) {
        let mut c = design.circuit().clone();
        let inp = c.port("inp").unwrap();
        let inn = c.port("inn").unwrap();
        let outp = c.port("outp").unwrap();
        let outn = c.port("outn").unwrap();
        let vdd = c.port("vdd").unwrap();
        let vss = c.port("vss").unwrap();
        let gnd = c.ground();
        c.add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0))
            .unwrap();
        c.add_vsource("VSS", vss, gnd, SourceValue::dc(-5.0))
            .unwrap();
        let (acp, acn) = if antiphase { (0.5, -0.5) } else { (0.5, 0.5) };
        c.add_vsource("VIP", inp, gnd, SourceValue::new(0.0, acp))
            .unwrap();
        c.add_vsource("VIN", inn, gnd, SourceValue::new(0.0, acn))
            .unwrap();
        c.add_capacitor("CLP", outp, gnd, 2e-12).unwrap();
        c.add_capacitor("CLN", outn, gnd, 2e-12).unwrap();
        (c, outp, outn)
    }

    #[test]
    fn designs_and_has_cmfb_loop() {
        let d = design_fully_differential(&spec(), &builtin::cmos_5um()).unwrap();
        assert!(d.predicted_gain() >= 177.0);
        // Main amp 2+2+2, CMFB OTA 6, sense Rs and cap.
        assert!(d.device_count() >= 12, "{} devices", d.device_count());
        assert!(d.circuit().element("RCM1").is_some());
        assert!(d.circuit().element("CCMFB").is_some());
        d.circuit().validate().unwrap();
    }

    #[test]
    fn cmfb_servoes_output_common_mode() {
        let process = builtin::cmos_5um();
        let d = design_fully_differential(&spec(), &process).unwrap();
        let (c, outp, outn) = bench(&d, true);
        let sol = dc::solve(&c, &process).unwrap();
        let cm = 0.5 * (sol.voltage(outp) + sol.voltage(outn));
        assert!(
            cm.abs() <= d.spec().cm_error_v(),
            "output CM {cm:.3} V exceeds the {:.0} mV budget",
            d.spec().cm_error_v() * 1e3
        );
        // And the outputs are balanced.
        assert!((sol.voltage(outp) - sol.voltage(outn)).abs() < 0.1);
    }

    #[test]
    fn differential_gain_meets_spec_in_simulation() {
        let process = builtin::cmos_5um();
        let d = design_fully_differential(&spec(), &process).unwrap();
        let (c, outp, outn) = bench(&d, true);
        let sweep = AcSweepSpec::new(10.0, 1e8, 5).unwrap();
        let acs = ac::solve(&c, &process, &sweep).unwrap();
        let hd = acs.value(0, outp) - acs.value(0, outn);
        let gain_db = 20.0 * hd.abs().log10();
        assert!(
            gain_db >= 45.0 - 1.0,
            "differential gain {gain_db:.1} dB (predicted {:.1})",
            20.0 * d.predicted_gain().log10()
        );
        // Unity crossing near gm/2πC.
        let f = acs.frequencies();
        let crossing = f
            .iter()
            .enumerate()
            .find(|&(k, _)| (acs.value(k, outp) - acs.value(k, outn)).abs() < 1.0)
            .map(|(_, &f)| f)
            .expect("crosses unity inside the sweep");
        assert!(
            crossing >= 0.5e6,
            "unity at {crossing:.3e} Hz, spec 1 MHz (with parasitics)"
        );
    }

    #[test]
    fn common_mode_gain_is_suppressed() {
        let process = builtin::cmos_5um();
        let d = design_fully_differential(&spec(), &process).unwrap();
        // Common-mode excitation: both inputs together.
        let (c, outp, outn) = bench(&d, false);
        let sweep = AcSweepSpec::new(10.0, 100.0, 1).unwrap();
        let acs = ac::solve(&c, &process, &sweep).unwrap();
        // The differential response to a CM stimulus is ideally zero.
        let h_dm_from_cm = (acs.value(0, outp) - acs.value(0, outn)).abs();
        assert!(h_dm_from_cm < 0.2, "CM→DM conversion {h_dm_from_cm:.3}");
        // The CM response itself is crushed by the feedback loop.
        let h_cm = 0.5 * (acs.value(0, outp) + acs.value(0, outn)).abs();
        assert!(h_cm < 3.0, "CM gain {h_cm:.2}");
    }

    #[test]
    fn impossible_gain_fails() {
        let spec = FdSpec::builder()
            .diff_gain_db(90.0)
            .unity_gain_mhz(1.0)
            .load_pf_per_side(2.0)
            .build()
            .unwrap();
        assert!(design_fully_differential(&spec, &builtin::cmos_5um()).is_err());
    }

    #[test]
    fn builder_validates() {
        assert!(FdSpec::builder().build().is_err());
        let s = spec();
        assert!(s.to_string().contains("45.0 dB"));
    }
}
