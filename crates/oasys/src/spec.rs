//! Op-amp performance specifications (the paper's Table 2 inputs).

use oasys_units::{Capacitance, Decibels, Degrees, Frequency, Power, SlewRate, Voltage};
use std::error::Error;
use std::fmt;

/// Error returned when a specification is internally inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    pub(crate) fn new_public(message: impl Into<String>) -> Self {
        Self::new(message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid op-amp specification: {}", self.message)
    }
}

impl Error for SpecError {}

/// The performance parameters OASYS designs to (Table 2 of the paper).
///
/// Required entries: DC gain, unity-gain frequency, phase margin, and load
/// capacitance. The rest are optional constraints; when present they are
/// enforced by the style plans and checked again during verification.
///
/// Build with [`OpAmpSpec::builder`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpAmpSpec {
    /// Minimum open-loop DC gain.
    pub(crate) dc_gain_db: f64,
    /// Minimum unity-gain frequency, Hz.
    pub(crate) unity_gain_hz: f64,
    /// Minimum phase margin, degrees.
    pub(crate) phase_margin_deg: f64,
    /// Load capacitance, F.
    pub(crate) load_f: f64,
    /// Minimum slew rate, V/s (0 = unconstrained).
    pub(crate) slew_v_per_s: f64,
    /// Minimum symmetric output swing, ±V (0 = unconstrained).
    pub(crate) swing_v: f64,
    /// Maximum systematic input offset, V (∞ = unconstrained).
    pub(crate) offset_v: f64,
    /// Maximum quiescent power, W (∞ = unconstrained).
    pub(crate) power_w: f64,
    /// Minimum common-mode rejection ratio, dB (0 = unconstrained).
    pub(crate) cmrr_db: f64,
    /// Maximum input-referred noise density, V/√Hz (∞ = unconstrained).
    pub(crate) noise_v_rthz: f64,
}

impl OpAmpSpec {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> OpAmpSpecBuilder {
        OpAmpSpecBuilder::default()
    }

    /// Minimum open-loop DC gain.
    #[must_use]
    pub fn dc_gain(&self) -> Decibels {
        Decibels::new(self.dc_gain_db)
    }

    /// Minimum open-loop DC gain as a linear voltage ratio.
    #[must_use]
    pub fn dc_gain_linear(&self) -> f64 {
        self.dc_gain().to_voltage_ratio()
    }

    /// Minimum unity-gain frequency.
    #[must_use]
    pub fn unity_gain_freq(&self) -> Frequency {
        Frequency::new(self.unity_gain_hz)
    }

    /// Minimum phase margin.
    #[must_use]
    pub fn phase_margin(&self) -> Degrees {
        Degrees::new(self.phase_margin_deg)
    }

    /// Load capacitance.
    #[must_use]
    pub fn load(&self) -> Capacitance {
        Capacitance::new(self.load_f)
    }

    /// Minimum slew rate (zero when unconstrained).
    #[must_use]
    pub fn slew_rate(&self) -> SlewRate {
        SlewRate::new(self.slew_v_per_s)
    }

    /// Minimum symmetric output swing magnitude (zero when
    /// unconstrained).
    #[must_use]
    pub fn output_swing(&self) -> Voltage {
        Voltage::new(self.swing_v)
    }

    /// Maximum systematic input offset (infinite when unconstrained).
    #[must_use]
    pub fn max_offset(&self) -> Voltage {
        Voltage::new(self.offset_v)
    }

    /// Maximum quiescent power (infinite when unconstrained).
    #[must_use]
    pub fn max_power(&self) -> Power {
        Power::new(self.power_w)
    }

    /// `true` if a slew-rate floor was specified.
    #[must_use]
    pub fn has_slew(&self) -> bool {
        self.slew_v_per_s > 0.0
    }

    /// `true` if an output-swing floor was specified.
    #[must_use]
    pub fn has_swing(&self) -> bool {
        self.swing_v > 0.0
    }

    /// `true` if an offset ceiling was specified.
    #[must_use]
    pub fn has_offset(&self) -> bool {
        self.offset_v.is_finite()
    }

    /// `true` if a power ceiling was specified.
    #[must_use]
    pub fn has_power(&self) -> bool {
        self.power_w.is_finite()
    }

    /// Minimum common-mode rejection ratio (zero when unconstrained).
    #[must_use]
    pub fn min_cmrr(&self) -> Decibels {
        Decibels::new(self.cmrr_db)
    }

    /// `true` if a CMRR floor was specified.
    #[must_use]
    pub fn has_cmrr(&self) -> bool {
        self.cmrr_db > 0.0
    }

    /// Maximum input-referred noise density, V/√Hz (infinite when
    /// unconstrained).
    #[must_use]
    pub fn max_noise_v_rthz(&self) -> f64 {
        self.noise_v_rthz
    }

    /// `true` if an input-noise ceiling was specified.
    #[must_use]
    pub fn has_noise(&self) -> bool {
        self.noise_v_rthz.is_finite()
    }

    /// Returns a copy with a different DC-gain floor (used by the
    /// Figure 7 gain sweep).
    #[must_use]
    pub fn with_dc_gain_db(mut self, db: f64) -> Self {
        self.dc_gain_db = db;
        self
    }

    /// Returns a copy with a different load (used by the Figure 7
    /// load-comparison sweep).
    #[must_use]
    pub fn with_load_pf(mut self, pf: f64) -> Self {
        self.load_f = pf * 1e-12;
        self
    }
}

impl fmt::Display for OpAmpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gain ≥ {}, f_u ≥ {}, PM ≥ {}, C_L = {}",
            self.dc_gain(),
            self.unity_gain_freq(),
            self.phase_margin(),
            self.load()
        )?;
        if self.has_slew() {
            write!(
                f,
                ", SR ≥ {:.1} V/µs",
                self.slew_rate().volts_per_microsecond()
            )?;
        }
        if self.has_swing() {
            write!(f, ", swing ≥ ±{}", self.output_swing())?;
        }
        if self.has_offset() {
            write!(f, ", offset ≤ {}", self.max_offset())?;
        }
        if self.has_power() {
            write!(f, ", power ≤ {}", self.max_power())?;
        }
        if self.has_cmrr() {
            write!(f, ", CMRR ≥ {:.0} dB", self.cmrr_db)?;
        }
        if self.has_noise() {
            write!(f, ", noise ≤ {:.0} nV/√Hz", self.noise_v_rthz * 1e9)?;
        }
        Ok(())
    }
}

/// Builder for [`OpAmpSpec`]. Setters use the datasheet units of the
/// paper's Table 2 (dB, MHz, degrees, pF, V/µs, ±V, mV, mW).
///
/// # Examples
///
/// ```
/// use oasys::OpAmpSpec;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = OpAmpSpec::builder()
///     .dc_gain_db(70.0)
///     .unity_gain_mhz(1.0)
///     .phase_margin_deg(60.0)
///     .load_pf(10.0)
///     .output_swing_v(3.5)
///     .max_offset_mv(1.0)
///     .build()?;
/// assert!(spec.has_swing());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OpAmpSpecBuilder {
    dc_gain_db: Option<f64>,
    unity_gain_hz: Option<f64>,
    phase_margin_deg: Option<f64>,
    load_f: Option<f64>,
    slew_v_per_s: f64,
    swing_v: f64,
    offset_v: f64,
    power_w: f64,
    cmrr_db: f64,
    noise_v_rthz: f64,
}

impl Default for OpAmpSpecBuilder {
    fn default() -> Self {
        Self {
            dc_gain_db: None,
            unity_gain_hz: None,
            phase_margin_deg: None,
            load_f: None,
            slew_v_per_s: 0.0,
            swing_v: 0.0,
            offset_v: f64::INFINITY,
            power_w: f64::INFINITY,
            cmrr_db: 0.0,
            noise_v_rthz: f64::INFINITY,
        }
    }
}

impl OpAmpSpecBuilder {
    /// Minimum open-loop DC gain, dB. Required.
    #[must_use]
    pub fn dc_gain_db(mut self, db: f64) -> Self {
        self.dc_gain_db = Some(db);
        self
    }

    /// Minimum unity-gain frequency, MHz. Required.
    #[must_use]
    pub fn unity_gain_mhz(mut self, mhz: f64) -> Self {
        self.unity_gain_hz = Some(mhz * 1e6);
        self
    }

    /// Minimum phase margin, degrees. Required.
    #[must_use]
    pub fn phase_margin_deg(mut self, deg: f64) -> Self {
        self.phase_margin_deg = Some(deg);
        self
    }

    /// Load capacitance, pF. Required.
    #[must_use]
    pub fn load_pf(mut self, pf: f64) -> Self {
        self.load_f = Some(pf * 1e-12);
        self
    }

    /// Minimum slew rate, V/µs.
    #[must_use]
    pub fn slew_rate_v_per_us(mut self, v_per_us: f64) -> Self {
        self.slew_v_per_s = v_per_us * 1e6;
        self
    }

    /// Minimum symmetric output swing, ±V.
    #[must_use]
    pub fn output_swing_v(mut self, volts: f64) -> Self {
        self.swing_v = volts;
        self
    }

    /// Maximum systematic input offset, mV.
    #[must_use]
    pub fn max_offset_mv(mut self, mv: f64) -> Self {
        self.offset_v = mv * 1e-3;
        self
    }

    /// Maximum quiescent power, mW.
    #[must_use]
    pub fn max_power_mw(mut self, mw: f64) -> Self {
        self.power_w = mw * 1e-3;
        self
    }

    /// Minimum common-mode rejection ratio, dB.
    #[must_use]
    pub fn min_cmrr_db(mut self, db: f64) -> Self {
        self.cmrr_db = db;
        self
    }

    /// Maximum input-referred noise density, nV/√Hz.
    #[must_use]
    pub fn max_noise_nv_rthz(mut self, nv: f64) -> Self {
        self.noise_v_rthz = nv * 1e-9;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if a required entry is missing or any entry
    /// is out of its physical range.
    pub fn build(self) -> Result<OpAmpSpec, SpecError> {
        let dc_gain_db = self
            .dc_gain_db
            .ok_or_else(|| SpecError::new("missing dc gain"))?;
        let unity_gain_hz = self
            .unity_gain_hz
            .ok_or_else(|| SpecError::new("missing unity-gain frequency"))?;
        let phase_margin_deg = self
            .phase_margin_deg
            .ok_or_else(|| SpecError::new("missing phase margin"))?;
        let load_f = self.load_f.ok_or_else(|| SpecError::new("missing load"))?;

        if !(0.0..=140.0).contains(&dc_gain_db) {
            return Err(SpecError::new(format!(
                "dc gain must be in [0, 140] dB, got {dc_gain_db}"
            )));
        }
        if !(unity_gain_hz > 0.0 && unity_gain_hz.is_finite()) {
            return Err(SpecError::new("unity-gain frequency must be positive"));
        }
        if !(0.0..90.0).contains(&phase_margin_deg) {
            return Err(SpecError::new(format!(
                "phase margin must be in (0°, 90°), got {phase_margin_deg}"
            )));
        }
        if !(load_f > 0.0 && load_f.is_finite()) {
            return Err(SpecError::new("load capacitance must be positive"));
        }
        if self.slew_v_per_s < 0.0 || !self.slew_v_per_s.is_finite() {
            return Err(SpecError::new("slew rate must be non-negative"));
        }
        if self.swing_v < 0.0 || !self.swing_v.is_finite() {
            return Err(SpecError::new("output swing must be non-negative"));
        }
        if self.offset_v <= 0.0 {
            return Err(SpecError::new("offset ceiling must be positive"));
        }
        if self.power_w <= 0.0 {
            return Err(SpecError::new("power ceiling must be positive"));
        }
        if self.cmrr_db < 0.0 || !self.cmrr_db.is_finite() {
            return Err(SpecError::new("cmrr floor must be non-negative"));
        }
        if self.noise_v_rthz <= 0.0 {
            return Err(SpecError::new("noise ceiling must be positive"));
        }

        Ok(OpAmpSpec {
            dc_gain_db,
            unity_gain_hz,
            phase_margin_deg,
            load_f,
            slew_v_per_s: self.slew_v_per_s,
            swing_v: self.swing_v,
            offset_v: self.offset_v,
            power_w: self.power_w,
            cmrr_db: self.cmrr_db,
            noise_v_rthz: self.noise_v_rthz,
        })
    }
}

/// The paper's three Table 2 test cases (values chosen to exercise the
/// same synthesis decisions on the substituted 5 µm process: A → ordinary
/// one-stage; B → gain/offset/swing force the two-stage; C → 100 dB
/// forces the cascoded two-stage with a level shifter).
pub mod test_cases {
    use super::OpAmpSpec;

    /// Specification A: an ordinary op amp making no unusual demands.
    #[must_use]
    pub fn spec_a() -> OpAmpSpec {
        OpAmpSpec::builder()
            .dc_gain_db(60.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .slew_rate_v_per_us(2.0)
            .output_swing_v(1.2)
            .build()
            .expect("test case A is self-consistent")
    }

    /// Specification B: more gain, a lower offset and a larger output
    /// swing — impossible for the one-stage style.
    #[must_use]
    pub fn spec_b() -> OpAmpSpec {
        OpAmpSpec::builder()
            .dc_gain_db(75.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .slew_rate_v_per_us(2.0)
            .output_swing_v(4.0)
            .max_offset_mv(1.0)
            .build()
            .expect("test case B is self-consistent")
    }

    /// Specification C: the aggressive case — 100 dB of gain with a low
    /// output swing of ±2.5 V.
    #[must_use]
    pub fn spec_c() -> OpAmpSpec {
        OpAmpSpec::builder()
            .dc_gain_db(100.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .slew_rate_v_per_us(2.0)
            .output_swing_v(2.5)
            .max_offset_mv(1.0)
            .build()
            .expect("test case C is self-consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_core_entries() {
        assert!(OpAmpSpec::builder().build().is_err());
        assert!(OpAmpSpec::builder()
            .dc_gain_db(60.0)
            .unity_gain_mhz(1.0)
            .phase_margin_deg(60.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_validates_ranges() {
        let base = || {
            OpAmpSpec::builder()
                .dc_gain_db(60.0)
                .unity_gain_mhz(1.0)
                .phase_margin_deg(60.0)
                .load_pf(5.0)
        };
        assert!(base().build().is_ok());
        assert!(base().dc_gain_db(200.0).build().is_err());
        assert!(base().phase_margin_deg(95.0).build().is_err());
        assert!(base().load_pf(-1.0).build().is_err());
        assert!(base().slew_rate_v_per_us(-1.0).build().is_err());
        assert!(base().max_offset_mv(-1.0).build().is_err());
    }

    #[test]
    fn optional_flags() {
        let spec = test_cases::spec_a();
        assert!(spec.has_slew());
        assert!(spec.has_swing());
        assert!(!spec.has_offset());
        assert!(!spec.has_power());
        let b = test_cases::spec_b();
        assert!(b.has_offset());
    }

    #[test]
    fn unit_conversions() {
        let spec = test_cases::spec_a();
        assert!((spec.unity_gain_freq().megahertz() - 0.5).abs() < 1e-12);
        assert!((spec.load().picofarads() - 5.0).abs() < 1e-12);
        assert!((spec.slew_rate().volts_per_microsecond() - 2.0).abs() < 1e-9);
        assert!((spec.dc_gain_linear() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn with_modifiers() {
        let spec = test_cases::spec_a()
            .with_dc_gain_db(80.0)
            .with_load_pf(20.0);
        assert!((spec.dc_gain().db() - 80.0).abs() < 1e-12);
        assert!((spec.load().picofarads() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn test_cases_ordering() {
        let (a, b, c) = (
            test_cases::spec_a(),
            test_cases::spec_b(),
            test_cases::spec_c(),
        );
        assert!(b.dc_gain() > a.dc_gain());
        assert!(c.dc_gain() > b.dc_gain());
        assert!(c.output_swing() < b.output_swing());
    }

    #[test]
    fn display_lists_constraints() {
        let s = test_cases::spec_b().to_string();
        assert!(s.contains("gain"));
        assert!(s.contains("offset"));
        assert!(s.contains("swing"));
    }
}
