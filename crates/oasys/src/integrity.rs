//! Per-line data integrity for durable JSONL/TSV artifacts.
//!
//! Torn-tail salvage (PR 5) only defends against the damage an
//! append-and-flush crash can inflict: a missing newline at the end of
//! the file. Silent mid-file corruption — bit rot, a bad sector, a
//! buggy copy — previously either crashed resume (`Corrupt` checkpoint)
//! or, worse, was trusted. This module adds the third durability leg:
//! every line a sink writes is *sealed* with a 16-hex-digit FNV-1a 64
//! checksum of its payload, separated by a single tab:
//!
//! ```text
//! <payload>\t<fnv1a64(payload) as %016x>\n
//! ```
//!
//! Readers [`open_line`] each line: a line whose seal verifies is
//! trusted, a line without a seal is a legacy (pre-checksum) line and
//! is accepted for backward compatibility, and a line whose seal fails
//! is **corrupt** — the reader quarantines it (the record or job simply
//! re-runs) instead of trusting it or discarding the whole file.
//!
//! The seal detects *any* single- or multi-byte damage to the line,
//! including damage to the checksum itself, because the checksum is
//! recomputed over the payload on every open. A flipped byte cannot
//! produce a verifying line without also forging the 64-bit FNV image
//! of the payload.

/// FNV-1a 64-bit hash — the same offset basis and prime as the batch
/// manifest fingerprint, kept dependency-free and byte-stable forever
/// (sealed files must verify across releases).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Seals one payload line (no trailing newline) with its checksum
/// suffix: `"{payload}\t{fnv1a64:016x}"`.
#[must_use]
pub fn seal_line(payload: &str) -> String {
    format!("{payload}\t{:016x}", fnv1a64(payload.as_bytes()))
}

/// The verdict on one durable line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineIntegrity<'a> {
    /// The line carries a seal and it verifies; the payload (seal
    /// stripped) is safe to parse.
    Sealed(&'a str),
    /// The line carries no seal at all — a legacy line written before
    /// checksumming existed. Accepted as-is for backward compatibility.
    Unsealed(&'a str),
    /// The line carries a seal that does not verify (or a mangled
    /// seal). The payload must not be trusted; quarantine and re-run.
    Corrupt,
}

/// Classifies one line (trailing newline tolerated and ignored).
///
/// The seal is the text after the *last* tab, so sealed payloads may
/// themselves contain tabs (batch checkpoint lines do). The flip side:
/// this classifier is only meaningful for formats whose *unsealed*
/// lines never end in a 16-hex-digit tab-separated field — true for
/// JSON record lines (JSON escapes raw tabs) and enforced for
/// checkpoints by the file-header version.
#[must_use]
pub fn open_line(line: &str) -> LineIntegrity<'_> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let Some(tab) = line.rfind('\t') else {
        return LineIntegrity::Unsealed(line);
    };
    let (payload, seal) = (&line[..tab], &line[tab + 1..]);
    if seal.len() != 16 || !seal.bytes().all(|b| b.is_ascii_hexdigit()) {
        return LineIntegrity::Corrupt;
    }
    match u64::from_str_radix(seal, 16) {
        Ok(expected) if fnv1a64(payload.as_bytes()) == expected => LineIntegrity::Sealed(payload),
        _ => LineIntegrity::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn sealed_lines_round_trip() {
        for payload in ["{\"id\":7}", "", "tabs\tinside\tpayload", "unicode µ"] {
            let sealed = seal_line(payload);
            assert_eq!(
                open_line(&sealed),
                LineIntegrity::Sealed(payload),
                "{payload:?}"
            );
            let with_newline = format!("{sealed}\n");
            assert_eq!(open_line(&with_newline), LineIntegrity::Sealed(payload));
        }
    }

    #[test]
    fn lines_without_a_seal_are_unsealed() {
        assert_eq!(
            open_line("{\"id\":3}"),
            LineIntegrity::Unsealed("{\"id\":3}")
        );
        assert_eq!(open_line(""), LineIntegrity::Unsealed(""));
    }

    #[test]
    fn no_flipped_byte_yields_a_sealed_line() {
        let sealed = seal_line("{\"id\":42,\"outcome\":\"ok\"}");
        for i in 0..sealed.len() {
            let mut bytes = sealed.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(line) = String::from_utf8(bytes) else {
                continue;
            };
            // Damage to payload or seal verifies as Corrupt; damage to
            // the separator tab degrades to an Unsealed line whose
            // payload no longer parses — either way, never Sealed.
            assert!(
                !matches!(open_line(&line), LineIntegrity::Sealed(_)),
                "flipping byte {i} went undetected: {line:?}"
            );
        }
    }

    #[test]
    fn mangled_seals_are_corrupt_not_unsealed() {
        assert_eq!(open_line("{\"id\":1}\tdeadbeef"), LineIntegrity::Corrupt);
        assert_eq!(
            open_line("{\"id\":1}\tzzzzzzzzzzzzzzzz"),
            LineIntegrity::Corrupt
        );
        assert_eq!(open_line("payload\t"), LineIntegrity::Corrupt);
    }
}
