//! Breadth-first design-style selection.
//!
//! The paper (Section 4.2/4.3): *"We currently attempt to design each
//! style, and if both can meet the specification, select the one with the
//! best match to the specifications, biasing the choice in favor of the
//! design with the smallest estimated area. … Style selection at this
//! level is … based on breadth-first search. All possible styles are
//! designed and a selection among successful design styles is made based
//! on comparison of final parameters such as estimated area."*

use crate::spec::OpAmpSpec;
use crate::styles::{design_style_with, OpAmpDesign, OpAmpStyle, StyleError};
use oasys_plan::Trace;
use oasys_process::Process;
use oasys_telemetry::Telemetry;
use std::error::Error;
use std::fmt;

/// The outcome of attempting one design style.
#[derive(Debug)]
pub struct StyleOutcome {
    style: OpAmpStyle,
    result: Result<OpAmpDesign, StyleError>,
}

impl StyleOutcome {
    /// The style attempted.
    #[must_use]
    pub fn style(&self) -> OpAmpStyle {
        self.style
    }

    /// The design, if the style succeeded.
    #[must_use]
    pub fn design(&self) -> Option<&OpAmpDesign> {
        self.result.as_ref().ok()
    }

    /// The rejection reason, if the style failed.
    ///
    /// Guaranteed non-empty for failures: when the underlying error
    /// carries no text (a knowledge-base bug), a placeholder naming the
    /// style is substituted so rejection tables never show blank rows.
    #[must_use]
    pub fn rejection(&self) -> Option<String> {
        self.result.as_ref().err().map(|e| {
            let reason = e.reason();
            if reason.trim().is_empty() {
                format!("{} rejected for an unrecorded reason", self.style)
            } else {
                reason
            }
        })
    }

    /// The plan-execution trace for this attempt, successful or not.
    ///
    /// `None` only for netlist-assembly failures, which happen after plan
    /// execution and carry no trace.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        match &self.result {
            Ok(design) => Some(design.trace()),
            Err(e) => e.trace(),
        }
    }
}

/// A completed synthesis: every style outcome plus the selected design.
#[derive(Debug)]
pub struct Synthesis {
    outcomes: Vec<StyleOutcome>,
    selected: usize,
}

impl Synthesis {
    /// The selected (smallest-area feasible) design.
    #[must_use]
    pub fn selected(&self) -> &OpAmpDesign {
        self.outcomes[self.selected]
            .design()
            .expect("selected index points at a success")
    }

    /// Every style attempt, in trial order.
    #[must_use]
    pub fn outcomes(&self) -> &[StyleOutcome] {
        &self.outcomes
    }

    /// The number of styles that could meet the spec.
    #[must_use]
    pub fn feasible_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.design().is_some())
            .count()
    }

    /// Total plan restarts across every style attempt
    /// (see [`Trace::restarts`]).
    #[must_use]
    pub fn restarts(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(StyleOutcome::trace)
            .map(Trace::restarts)
            .sum()
    }
}

impl fmt::Display for Synthesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "synthesis outcome:")?;
        for (idx, outcome) in self.outcomes.iter().enumerate() {
            let marker = if idx == self.selected { "→" } else { " " };
            match outcome.design() {
                Some(d) => writeln!(
                    f,
                    " {marker} {}: feasible, area {}",
                    outcome.style(),
                    d.area()
                )?,
                None => writeln!(
                    f,
                    " {marker} {}: rejected — {}",
                    outcome.style(),
                    outcome.rejection().expect("failed outcome has a reason")
                )?,
            }
        }
        Ok(())
    }
}

/// Error returned when no style can meet the specification.
#[derive(Debug)]
pub struct SynthesisError {
    /// Per-style rejection reasons.
    rejections: Vec<(OpAmpStyle, String)>,
}

impl SynthesisError {
    /// Per-style rejection reasons.
    #[must_use]
    pub fn rejections(&self) -> &[(OpAmpStyle, String)] {
        &self.rejections
    }
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no design style meets the specification:")?;
        for (style, reason) in &self.rejections {
            write!(f, " [{style}: {reason}]")?;
        }
        Ok(())
    }
}

impl Error for SynthesisError {}

/// Designs every known style for `spec` on `process` and selects the
/// feasible design with the smallest estimated area.
///
/// # Errors
///
/// Returns [`SynthesisError`] (with every style's rejection reason) when
/// no style can meet the spec.
///
/// # Examples
///
/// See the crate-level example.
pub fn synthesize(spec: &OpAmpSpec, process: &Process) -> Result<Synthesis, SynthesisError> {
    synthesize_with(spec, process, &Telemetry::disabled())
}

/// [`synthesize`] with run telemetry recorded into `tel`.
///
/// Opens a root `synthesize` span with one `style:<name>` child span per
/// attempted style (annotated with the outcome), and maintains the
/// `synth.styles_attempted` / `synth.styles_feasible` counters.
///
/// # Errors
///
/// Same failure modes as [`synthesize`].
pub fn synthesize_with(
    spec: &OpAmpSpec,
    process: &Process,
    tel: &Telemetry,
) -> Result<Synthesis, SynthesisError> {
    let root = tel.span(|| "synthesize".to_owned());
    let outcomes: Vec<StyleOutcome> = OpAmpStyle::ALL
        .iter()
        .map(|&style| {
            let span = tel.span(|| format!("style:{style}"));
            tel.incr("synth.styles_attempted");
            let result = design_style_with(style, spec, process, tel);
            match &result {
                Ok(design) => {
                    tel.incr("synth.styles_feasible");
                    span.annotate("outcome", || "feasible".to_owned());
                    span.annotate("area_um2", || format!("{:.1}", design.area().total_um2()));
                }
                Err(e) => {
                    span.annotate("outcome", || "rejected".to_owned());
                    span.annotate("reason", || e.reason());
                }
            }
            StyleOutcome { style, result }
        })
        .collect();

    let selected = outcomes
        .iter()
        .enumerate()
        .filter_map(|(idx, o)| o.design().map(|d| (idx, d.area().total_um2())))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("areas are finite"))
        .map(|(idx, _)| idx);

    match selected {
        Some(selected) => {
            root.annotate("selected", || outcomes[selected].style().to_string());
            Ok(Synthesis { outcomes, selected })
        }
        None => {
            root.annotate("selected", || "none".to_owned());
            Err(SynthesisError {
                rejections: outcomes
                    .into_iter()
                    .map(|o| {
                        let style = o.style();
                        let reason = o.rejection().expect("failed outcome has a reason");
                        (style, reason)
                    })
                    .collect(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;
    use oasys_process::builtin;

    #[test]
    fn case_a_selects_one_stage_on_area() {
        let result = synthesize(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        assert_eq!(result.selected().style(), OpAmpStyle::OneStageOta);
        // The one-stage wins on area among multiple feasible styles.
        assert!(result.feasible_count() >= 2, "{result}");
    }

    #[test]
    fn case_b_selects_two_stage() {
        let result = synthesize(&test_cases::spec_b(), &builtin::cmos_5um()).unwrap();
        assert_eq!(result.selected().style(), OpAmpStyle::TwoStage);
        assert_eq!(result.feasible_count(), 1);
        // The one-stage rejection is recorded.
        let rejection = result.outcomes()[0].rejection().unwrap();
        assert!(!rejection.is_empty());
    }

    #[test]
    fn case_c_selects_complex_two_stage() {
        let result = synthesize(&test_cases::spec_c(), &builtin::cmos_5um()).unwrap();
        let d = result.selected();
        assert_eq!(d.style(), OpAmpStyle::TwoStage);
        assert!(d.notes().iter().any(|n| n.contains("level shifter")));
    }

    #[test]
    fn impossible_spec_reports_all_rejections() {
        let spec = test_cases::spec_a().with_dc_gain_db(139.0);
        let err = synthesize(&spec, &builtin::cmos_5um()).unwrap_err();
        assert_eq!(err.rejections().len(), OpAmpStyle::ALL.len());
        for (style, reason) in err.rejections() {
            assert!(
                !reason.trim().is_empty(),
                "{style} rejection must carry a non-empty reason"
            );
        }
        assert!(err.to_string().contains("one-stage"));
        assert!(err.to_string().contains("two-stage"));
        assert!(err.to_string().contains("folded"));
    }

    #[test]
    fn telemetry_spans_cover_every_style() {
        let tel = Telemetry::new();
        let result = synthesize_with(&test_cases::spec_a(), &builtin::cmos_5um(), &tel).unwrap();
        let report = tel.report();
        let names: Vec<&str> = report.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "synthesize");
        for style in OpAmpStyle::ALL {
            let name = format!("style:{style}");
            assert!(names.contains(&name.as_str()), "missing span {name}");
        }
        assert_eq!(
            tel.counter("synth.styles_attempted"),
            OpAmpStyle::ALL.len() as u64
        );
        assert_eq!(
            tel.counter("synth.styles_feasible"),
            result.feasible_count() as u64
        );
        // Counters mirror the traces exactly.
        let steps: usize = result
            .outcomes()
            .iter()
            .filter_map(StyleOutcome::trace)
            .map(Trace::step_executions)
            .sum();
        assert_eq!(tel.counter("plan.step_executions"), steps as u64);
    }

    #[test]
    fn display_marks_selection() {
        let result = synthesize(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        let text = result.to_string();
        assert!(text.contains('→'));
    }
}
