//! Breadth-first design-style selection.
//!
//! The paper (Section 4.2/4.3): *"We currently attempt to design each
//! style, and if both can meet the specification, select the one with the
//! best match to the specifications, biasing the choice in favor of the
//! design with the smallest estimated area. … Style selection at this
//! level is … based on breadth-first search. All possible styles are
//! designed and a selection among successful design styles is made based
//! on comparison of final parameters such as estimated area."*
//!
//! The sweep itself lives in the generic engine
//! ([`oasys_plan::design_candidates`]): the op-amp level is exposed as an
//! [`OpAmpDesigner`] implementing [`oasys_plan::BlockDesigner`], the
//! candidates run concurrently (one scoped thread per style by default),
//! and repeated sub-block designs within a run are memoized through a
//! shared [`MemoCache`]. Selection is deterministic regardless of the
//! worker count: smallest estimated area wins, exact ties break by style
//! name.

use crate::spec::OpAmpSpec;
use crate::styles::{design_style_in, OpAmpDesign, OpAmpStyle, StyleError};
use oasys_plan::{
    design_candidates, BlockDesigner, DesignContext, MemoCache, SearchOptions, Trace,
};
use oasys_process::Process;
use oasys_telemetry::{sym, sym_display, Sym, Telemetry};
use std::error::Error;
use std::fmt;

/// Pre-interned symbols for the synthesis driver's root span, counters,
/// and annotation keys.
struct SynthSyms {
    root: Sym,
    attempted: Sym,
    feasible: Sym,
    selected: Sym,
    none: Sym,
}

fn synth_syms() -> &'static SynthSyms {
    static SYMS: std::sync::OnceLock<SynthSyms> = std::sync::OnceLock::new();
    SYMS.get_or_init(|| SynthSyms {
        root: sym("synthesize"),
        attempted: sym("synth.styles_attempted"),
        feasible: sym("synth.styles_feasible"),
        selected: sym("selected"),
        none: sym("none"),
    })
}

/// Environment variable consulted when [`SearchOptions::threads`] is
/// unset: overrides the style-search worker count (`1` forces a fully
/// sequential sweep). Non-numeric or zero values are ignored.
pub const STYLE_THREADS_ENV: &str = "OASYS_STYLE_THREADS";

/// The op-amp level as a reusable [`BlockDesigner`] — the root block of
/// the paper's Figure 1 hierarchy. Its styles are the [`OpAmpStyle`]
/// display names, its failures are [`StyleError`]s, and its area metric
/// is the total estimated layout area the selector ranks on. Both the
/// breadth-first selector here and the hierarchy layer drive op-amp
/// synthesis through this designer.
pub struct OpAmpDesigner<'a> {
    process: &'a Process,
}

impl<'a> OpAmpDesigner<'a> {
    /// A designer producing op amps on `process`.
    #[must_use]
    pub fn new(process: &'a Process) -> Self {
        Self { process }
    }
}

impl BlockDesigner for OpAmpDesigner<'_> {
    type Spec = OpAmpSpec;
    type Output = OpAmpDesign;
    type Error = StyleError;

    fn level(&self) -> &'static str {
        "op amp"
    }

    fn styles(&self) -> Vec<String> {
        OpAmpStyle::ALL.iter().map(ToString::to_string).collect()
    }

    fn static_check(&self, spec: &OpAmpSpec, style: &str) -> Result<(), StyleError> {
        let style = OpAmpStyle::from_name(style).expect("style names come from styles()");
        crate::styles::static_feasibility(style, spec, self.process).map_err(StyleError::Infeasible)
    }

    fn design_style(
        &self,
        spec: &OpAmpSpec,
        style: &str,
        ctx: &DesignContext<'_>,
    ) -> Result<OpAmpDesign, StyleError> {
        let style = OpAmpStyle::from_name(style).expect("style names come from styles()");
        design_style_in(style, spec, self.process, ctx)
    }

    fn area_um2(&self, output: &OpAmpDesign) -> f64 {
        output.area().total_um2()
    }
}

/// The outcome of attempting one design style.
#[derive(Debug)]
pub struct StyleOutcome {
    style: OpAmpStyle,
    result: Result<OpAmpDesign, StyleError>,
}

impl StyleOutcome {
    /// The style attempted.
    #[must_use]
    pub fn style(&self) -> OpAmpStyle {
        self.style
    }

    /// The design, if the style succeeded.
    #[must_use]
    pub fn design(&self) -> Option<&OpAmpDesign> {
        self.result.as_ref().ok()
    }

    /// The rejection reason, if the style failed.
    ///
    /// Guaranteed non-empty for failures: when the underlying error
    /// carries no text (a knowledge-base bug), a placeholder naming the
    /// style is substituted so rejection tables never show blank rows.
    #[must_use]
    pub fn rejection(&self) -> Option<String> {
        self.result.as_ref().err().map(|e| {
            let reason = e.reason();
            if reason.trim().is_empty() {
                format!("{} rejected for an unrecorded reason", self.style)
            } else {
                reason
            }
        })
    }

    /// The plan-execution trace for this attempt, successful or not.
    ///
    /// `None` only for netlist-assembly failures, which happen after plan
    /// execution and carry no trace.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        match &self.result {
            Ok(design) => Some(design.trace()),
            Err(e) => e.trace(),
        }
    }
}

/// A completed synthesis: every style outcome plus the selected design.
#[derive(Debug)]
pub struct Synthesis {
    outcomes: Vec<StyleOutcome>,
    selected: usize,
}

impl Synthesis {
    /// The selected (smallest-area feasible) design.
    #[must_use]
    pub fn selected(&self) -> &OpAmpDesign {
        self.outcomes[self.selected]
            .design()
            .expect("selected index points at a success")
    }

    /// Every style attempt, in trial order.
    #[must_use]
    pub fn outcomes(&self) -> &[StyleOutcome] {
        &self.outcomes
    }

    /// The number of styles that could meet the spec.
    #[must_use]
    pub fn feasible_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.design().is_some())
            .count()
    }

    /// Total plan restarts across every style attempt
    /// (see [`Trace::restarts`]).
    #[must_use]
    pub fn restarts(&self) -> usize {
        self.outcomes
            .iter()
            .filter_map(StyleOutcome::trace)
            .map(Trace::restarts)
            .sum()
    }
}

impl fmt::Display for Synthesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "synthesis outcome:")?;
        for (idx, outcome) in self.outcomes.iter().enumerate() {
            let marker = if idx == self.selected { "→" } else { " " };
            match outcome.design() {
                Some(d) => writeln!(
                    f,
                    " {marker} {}: feasible, area {}",
                    outcome.style(),
                    d.area()
                )?,
                None => writeln!(
                    f,
                    " {marker} {}: rejected — {}",
                    outcome.style(),
                    outcome.rejection().expect("failed outcome has a reason")
                )?,
            }
        }
        Ok(())
    }
}

/// Error returned when no style can meet the specification.
#[derive(Debug)]
pub struct SynthesisError {
    /// Per-style rejection reasons.
    rejections: Vec<(OpAmpStyle, String)>,
}

impl SynthesisError {
    /// Per-style rejection reasons.
    #[must_use]
    pub fn rejections(&self) -> &[(OpAmpStyle, String)] {
        &self.rejections
    }
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no design style meets the specification:")?;
        for (style, reason) in &self.rejections {
            write!(f, " [{style}: {reason}]")?;
        }
        Ok(())
    }
}

impl Error for SynthesisError {}

/// Designs every known style for `spec` on `process` and selects the
/// feasible design with the smallest estimated area.
///
/// # Errors
///
/// Returns [`SynthesisError`] (with every style's rejection reason) when
/// no style can meet the spec.
///
/// # Examples
///
/// See the crate-level example.
pub fn synthesize(spec: &OpAmpSpec, process: &Process) -> Result<Synthesis, SynthesisError> {
    synthesize_with(spec, process, &Telemetry::disabled())
}

/// [`synthesize`] with run telemetry recorded into `tel`.
///
/// Equivalent to [`synthesize_with_options`] with default
/// [`SearchOptions`]: every style attempted, one worker thread per style
/// (unless [`STYLE_THREADS_ENV`] overrides the count).
///
/// # Errors
///
/// Same failure modes as [`synthesize`].
pub fn synthesize_with(
    spec: &OpAmpSpec,
    process: &Process,
    tel: &Telemetry,
) -> Result<Synthesis, SynthesisError> {
    synthesize_with_options(spec, process, &SearchOptions::new(), tel)
}

fn env_threads() -> Option<usize> {
    std::env::var(STYLE_THREADS_ENV)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// The full-control entry point: breadth-first style search with an
/// optional style filter and worker-thread cap ([`SearchOptions`]), with
/// run telemetry recorded into `tel`.
///
/// Opens a root `synthesize` span; the engine adds one `style:<name>`
/// child span per attempted style (annotated with the outcome) and
/// `block:<level>` spans for every recursive sub-block invocation. The
/// `synth.styles_attempted` / `synth.styles_feasible` counters are
/// maintained here; `engine.cache_hits` counts sub-block designs served
/// from the shared per-run [`MemoCache`].
///
/// The report — winner, areas, rejection reasons, telemetry — is
/// identical whatever the thread count; exact area ties break by style
/// name.
///
/// # Errors
///
/// Returns [`SynthesisError`] when no attempted style can meet the spec.
/// When the style filter in `options` matches no known style, the error
/// carries zero rejections — callers validating user input should check
/// names against [`OpAmpStyle::from_name`] first.
pub fn synthesize_with_options(
    spec: &OpAmpSpec,
    process: &Process,
    options: &SearchOptions,
    tel: &Telemetry,
) -> Result<Synthesis, SynthesisError> {
    synthesize_with_cache(spec, process, options, tel, &MemoCache::new())
}

/// [`synthesize_with_options`] with a caller-supplied [`MemoCache`].
///
/// The cache memoizes sub-block designs and **assumes a fixed process**:
/// share one cache across runs either when every run uses the same
/// `process`, or by namespacing each process's keys with
/// [`SearchOptions::with_cache_namespace`] (the batch layer and `oasys
/// serve` share one bounded LRU across technologies exactly that way).
/// Runs over different specs may share freely — cache keys cover the
/// sub-block specification bit-exactly.
///
/// # Errors
///
/// Same failure modes as [`synthesize_with_options`].
pub fn synthesize_with_cache(
    spec: &OpAmpSpec,
    process: &Process,
    options: &SearchOptions,
    tel: &Telemetry,
    cache: &MemoCache,
) -> Result<Synthesis, SynthesisError> {
    let s = synth_syms();
    let root = tel.span_sym(s.root);
    let mut opts = options.clone();
    if opts.threads().is_none() {
        if let Some(threads) = env_threads() {
            opts = opts.with_threads(threads);
        }
    }
    let designer = OpAmpDesigner::new(process);
    let outcomes: Vec<StyleOutcome> = design_candidates(&designer, spec, &opts, tel, cache)
        .into_iter()
        .map(|(name, result)| {
            let style = OpAmpStyle::from_name(&name).expect("engine preserves style names");
            tel.incr_sym(s.attempted);
            if result.is_ok() {
                tel.incr_sym(s.feasible);
            }
            StyleOutcome { style, result }
        })
        .collect();

    let selected = outcomes
        .iter()
        .enumerate()
        .filter_map(|(idx, o)| {
            o.design()
                .map(|d| (idx, d.area().total_um2(), o.style().to_string()))
        })
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("areas are finite")
                .then_with(|| a.2.cmp(&b.2))
        })
        .map(|(idx, _, _)| idx);

    match selected {
        Some(selected) => {
            if tel.is_enabled() {
                root.annotate_sym(s.selected, sym_display("", &outcomes[selected].style()));
            }
            Ok(Synthesis { outcomes, selected })
        }
        None => {
            root.annotate_sym(s.selected, s.none);
            Err(SynthesisError {
                rejections: outcomes
                    .into_iter()
                    .map(|o| {
                        let style = o.style();
                        let reason = o.rejection().expect("failed outcome has a reason");
                        (style, reason)
                    })
                    .collect(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;
    use oasys_process::builtin;

    #[test]
    fn case_a_selects_one_stage_on_area() {
        let result = synthesize(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        assert_eq!(result.selected().style(), OpAmpStyle::OneStageOta);
        // The one-stage wins on area among multiple feasible styles.
        assert!(result.feasible_count() >= 2, "{result}");
    }

    #[test]
    fn case_b_selects_two_stage() {
        let result = synthesize(&test_cases::spec_b(), &builtin::cmos_5um()).unwrap();
        assert_eq!(result.selected().style(), OpAmpStyle::TwoStage);
        assert_eq!(result.feasible_count(), 1);
        // The one-stage rejection is recorded.
        let rejection = result.outcomes()[0].rejection().unwrap();
        assert!(!rejection.is_empty());
    }

    #[test]
    fn case_c_selects_complex_two_stage() {
        let result = synthesize(&test_cases::spec_c(), &builtin::cmos_5um()).unwrap();
        let d = result.selected();
        assert_eq!(d.style(), OpAmpStyle::TwoStage);
        assert!(d.notes().iter().any(|n| n.contains("level shifter")));
    }

    #[test]
    fn impossible_spec_reports_all_rejections() {
        let spec = test_cases::spec_a().with_dc_gain_db(139.0);
        let err = synthesize(&spec, &builtin::cmos_5um()).unwrap_err();
        assert_eq!(err.rejections().len(), OpAmpStyle::ALL.len());
        for (style, reason) in err.rejections() {
            assert!(
                !reason.trim().is_empty(),
                "{style} rejection must carry a non-empty reason"
            );
        }
        assert!(err.to_string().contains("one-stage"));
        assert!(err.to_string().contains("two-stage"));
        assert!(err.to_string().contains("folded"));
    }

    #[test]
    fn telemetry_spans_cover_every_style() {
        let tel = Telemetry::new();
        let result = synthesize_with(&test_cases::spec_a(), &builtin::cmos_5um(), &tel).unwrap();
        let report = tel.report();
        let names: Vec<&str> = report.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "synthesize");
        for style in OpAmpStyle::ALL {
            let name = format!("style:{style}");
            assert!(names.contains(&name.as_str()), "missing span {name}");
        }
        assert_eq!(
            tel.counter("synth.styles_attempted"),
            OpAmpStyle::ALL.len() as u64
        );
        assert_eq!(
            tel.counter("synth.styles_feasible"),
            result.feasible_count() as u64
        );
        // Counters mirror the traces exactly.
        let steps: usize = result
            .outcomes()
            .iter()
            .filter_map(StyleOutcome::trace)
            .map(Trace::step_executions)
            .sum();
        assert_eq!(tel.counter("plan.step_executions"), steps as u64);
    }

    #[test]
    fn display_marks_selection() {
        let result = synthesize(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        let text = result.to_string();
        assert!(text.contains('→'));
    }

    #[test]
    fn style_filter_restricts_the_sweep() {
        let tel = Telemetry::new();
        let options = SearchOptions::new().with_styles(["two-stage"]);
        let result =
            synthesize_with_options(&test_cases::spec_a(), &builtin::cmos_5um(), &options, &tel)
                .unwrap();
        assert_eq!(result.outcomes().len(), 1);
        assert_eq!(result.selected().style(), OpAmpStyle::TwoStage);
        assert_eq!(tel.counter("synth.styles_attempted"), 1);
    }

    #[test]
    fn unknown_style_filter_yields_empty_rejections() {
        let options = SearchOptions::new().with_styles(["no-such-style"]);
        let err = synthesize_with_options(
            &test_cases::spec_a(),
            &builtin::cmos_5um(),
            &options,
            &Telemetry::disabled(),
        )
        .unwrap_err();
        assert!(err.rejections().is_empty());
    }

    /// The search must be deterministic in the strongest sense: not just
    /// the same winner, but a byte-identical telemetry report whether the
    /// sweep runs sequentially or with one worker per style.
    #[test]
    fn winner_and_report_identical_across_thread_counts() {
        use oasys_telemetry::ManualClock;
        use std::rc::Rc;
        let run = |threads: usize| {
            let tel = Telemetry::with_clock(Rc::new(ManualClock::new()));
            let options = SearchOptions::new().with_threads(threads);
            let result = synthesize_with_options(
                &test_cases::spec_a(),
                &builtin::cmos_5um(),
                &options,
                &tel,
            )
            .unwrap();
            assert_eq!(result.selected().style(), OpAmpStyle::OneStageOta);
            tel.report().render_jsonl()
        };
        assert_eq!(run(1), run(OpAmpStyle::ALL.len()));
    }

    #[test]
    fn repeated_subblock_designs_hit_the_memo_cache() {
        let tel = Telemetry::new();
        // Case A's plans re-run sub-block steps after patch-rule restarts
        // whose knob changes leave some block inputs untouched; those
        // repeat designs must come from the shared cache.
        synthesize_with_options(
            &test_cases::spec_a(),
            &builtin::cmos_5um(),
            &SearchOptions::new(),
            &tel,
        )
        .unwrap();
        assert!(
            tel.counter("engine.cache_hits") > 0,
            "restarted plans should reuse memoized sub-block designs"
        );
    }
}
