//! The analog design hierarchy (the paper's Figure 1).
//!
//! A lightweight tree of named functional blocks, used to express how a
//! system-level design such as a successive-approximation A/D converter
//! decomposes into functional blocks, sub-blocks and devices. The paper
//! stresses that this hierarchy is *not strict*: siblings may differ
//! wildly in complexity (a sample-and-hold may be three devices while the
//! comparator next to it has twenty).
//!
//! Blocks that OASYS can actually design carry a link to a designer
//! *level* in a [`DesignerRegistry`] — the catalog of
//! [`oasys_plan::BlockDesigner`] implementations. [`design_registry`]
//! returns the full catalog: every [`oasys_blocks`] sub-block designer
//! plus the op-amp level itself ([`crate::OpAmpDesigner`]).

use oasys_plan::{DesignerDescriptor, DesignerRegistry};
use std::fmt;

/// A node in an analog design hierarchy.
///
/// # Examples
///
/// ```
/// use oasys::hierarchy::Block;
/// let adc = Block::new("successive-approximation A/D")
///     .with_child(Block::new("comparator"))
///     .with_child(Block::new("D/A converter"));
/// assert_eq!(adc.children().len(), 2);
/// assert_eq!(adc.depth(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    name: String,
    designer: Option<String>,
    children: Vec<Block>,
}

impl Block {
    /// Creates a leaf block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            designer: None,
            children: Vec::new(),
        }
    }

    /// Adds a child (builder style).
    #[must_use]
    pub fn with_child(mut self, child: Block) -> Self {
        self.children.push(child);
        self
    }

    /// Links this block to a designer level (builder style) — the level
    /// name a [`DesignerRegistry`] knows, e.g. `"mirror"` or `"op amp"`.
    /// Blocks without a link are structural or device-level (switches,
    /// capacitor arrays) and have no automated designer.
    #[must_use]
    pub fn with_designer(mut self, level: impl Into<String>) -> Self {
        self.designer = Some(level.into());
        self
    }

    /// The block name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The linked designer level, if this block has one.
    #[must_use]
    pub fn designer(&self) -> Option<&str> {
        self.designer.as_deref()
    }

    /// Direct children.
    #[must_use]
    pub fn children(&self) -> &[Block] {
        &self.children
    }

    /// Number of levels, counting this node (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Block::depth).max().unwrap_or(0)
    }

    /// Total number of blocks in the subtree.
    #[must_use]
    pub fn block_count(&self) -> usize {
        1 + self.children.iter().map(Block::block_count).sum::<usize>()
    }

    /// Depth-first search for a block by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Block> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Resolves this block's designer link against a registry.
    ///
    /// `None` when the block declares no designer *or* the registry does
    /// not know the level — use [`unresolved`](Block::unresolved) to tell
    /// the two apart across a whole tree.
    #[must_use]
    pub fn resolve<'r>(&self, registry: &'r DesignerRegistry) -> Option<&'r DesignerDescriptor> {
        registry.get(self.designer.as_deref()?)
    }

    /// Walks the subtree and returns `(block name, designer level)` for
    /// every block whose declared designer the registry does *not* know.
    /// An empty result means the hierarchy is fully linked.
    #[must_use]
    pub fn unresolved(&self, registry: &DesignerRegistry) -> Vec<(String, String)> {
        let mut missing = Vec::new();
        self.collect_unresolved(registry, &mut missing);
        missing
    }

    fn collect_unresolved(&self, registry: &DesignerRegistry, out: &mut Vec<(String, String)>) {
        if let Some(level) = self.designer() {
            if registry.get(level).is_none() {
                out.push((self.name.clone(), level.to_string()));
            }
        }
        for child in &self.children {
            child.collect_unresolved(registry, out);
        }
    }

    fn render(&self, indent: usize, out: &mut String) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(&self.name);
        if let Some(level) = self.designer() {
            out.push_str(" [");
            out.push_str(level);
            out.push(']');
        }
        out.push('\n');
        for child in &self.children {
            child.render(indent + 1, out);
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(&out)
    }
}

/// The full designer catalog: every [`oasys_blocks`] sub-block level plus
/// the `"op amp"` level realized by [`crate::OpAmpDesigner`]. This is the
/// registry the Figure 1 hierarchy links against.
#[must_use]
pub fn design_registry() -> DesignerRegistry {
    let mut registry = oasys_blocks::designer_registry();
    registry.register(DesignerDescriptor::new(
        "op amp",
        ["one-stage OTA", "two-stage", "folded cascode"],
    ));
    registry
}

/// The paper's Figure 1: the hierarchy of a successive-approximation A/D
/// converter, down to the transistor-group level, with each designable
/// block linked to its [`design_registry`] level.
#[must_use]
pub fn successive_approximation_adc() -> Block {
    let op_amp = Block::new("op amp")
        .with_designer("op amp")
        .with_child(Block::new("differential pair").with_designer("diff pair"))
        .with_child(Block::new("current mirror").with_designer("mirror"))
        .with_child(Block::new("level shifter").with_designer("level shifter"))
        .with_child(Block::new("transconductance amplifier").with_designer("gain stage"));
    Block::new("successive approximation A/D")
        .with_child(
            Block::new("sample-and-hold")
                .with_child(Block::new("switch"))
                .with_child(Block::new("hold capacitor"))
                .with_child(op_amp.clone()),
        )
        .with_child(
            Block::new("comparator")
                .with_child(Block::new("preamplifier").with_designer("gain stage"))
                .with_child(Block::new("latch")),
        )
        .with_child(
            Block::new("D/A converter")
                .with_child(Block::new("capacitor array"))
                .with_child(op_amp),
        )
        .with_child(Block::new("successive-approximation register"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_hierarchy_shape() {
        let adc = successive_approximation_adc();
        assert_eq!(adc.children().len(), 4);
        // Four levels: ADC → S/H → op amp → diff pair.
        assert_eq!(adc.depth(), 4);
        assert!(adc.block_count() > 10);
    }

    #[test]
    fn hierarchy_is_not_strict() {
        // Siblings at the same level differ in complexity: the S/H has a
        // deep op-amp subtree, the SAR is a leaf.
        let adc = successive_approximation_adc();
        let sh = adc.find("sample-and-hold").unwrap();
        let sar = adc.find("successive-approximation register").unwrap();
        assert!(sh.depth() > sar.depth());
    }

    #[test]
    fn find_locates_nested_blocks() {
        let adc = successive_approximation_adc();
        assert!(adc.find("differential pair").is_some());
        assert!(adc.find("flux capacitor").is_none());
    }

    #[test]
    fn op_amp_subblocks_are_reused() {
        // The same op-amp template appears under both the S/H and the DAC
        // — the paper's reuse argument.
        let adc = successive_approximation_adc();
        let sh_amp = adc.find("sample-and-hold").unwrap().find("op amp");
        let dac_amp = adc.find("D/A converter").unwrap().find("op amp");
        assert_eq!(sh_amp, dac_amp);
    }

    #[test]
    fn display_is_indented() {
        let adc = successive_approximation_adc();
        let text = adc.to_string();
        assert!(text.contains("\n  sample-and-hold"));
        assert!(text.contains("\n    switch") || text.contains("\n      switch"));
        // Linked blocks show their designer level.
        assert!(text.contains("op amp [op amp]"));
    }

    #[test]
    fn figure1_links_fully_against_the_registry() {
        let registry = design_registry();
        let adc = successive_approximation_adc();
        assert_eq!(adc.unresolved(&registry), Vec::new());
        let amp = adc.find("op amp").unwrap();
        let descriptor = amp.resolve(&registry).unwrap();
        assert_eq!(descriptor.level(), "op amp");
        assert_eq!(descriptor.styles().len(), 3);
    }

    #[test]
    fn registry_op_amp_styles_match_the_synthesizer() {
        use crate::styles::OpAmpStyle;
        let registry = design_registry();
        let styles = registry.get("op amp").unwrap().styles();
        let expected: Vec<String> = OpAmpStyle::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(styles, expected.as_slice());
    }

    #[test]
    fn dangling_designer_links_are_reported() {
        let registry = design_registry();
        let block = Block::new("mystery").with_designer("warp drive");
        assert_eq!(
            block.unresolved(&registry),
            vec![("mystery".to_string(), "warp drive".to_string())]
        );
    }
}
