//! The analog design hierarchy (the paper's Figure 1).
//!
//! A lightweight tree of named functional blocks, used to express how a
//! system-level design such as a successive-approximation A/D converter
//! decomposes into functional blocks, sub-blocks and devices. The paper
//! stresses that this hierarchy is *not strict*: siblings may differ
//! wildly in complexity (a sample-and-hold may be three devices while the
//! comparator next to it has twenty).

use std::fmt;

/// A node in an analog design hierarchy.
///
/// # Examples
///
/// ```
/// use oasys::hierarchy::Block;
/// let adc = Block::new("successive-approximation A/D")
///     .with_child(Block::new("comparator"))
///     .with_child(Block::new("D/A converter"));
/// assert_eq!(adc.children().len(), 2);
/// assert_eq!(adc.depth(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    name: String,
    children: Vec<Block>,
}

impl Block {
    /// Creates a leaf block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            children: Vec::new(),
        }
    }

    /// Adds a child (builder style).
    #[must_use]
    pub fn with_child(mut self, child: Block) -> Self {
        self.children.push(child);
        self
    }

    /// The block name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direct children.
    #[must_use]
    pub fn children(&self) -> &[Block] {
        &self.children
    }

    /// Number of levels, counting this node (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Block::depth).max().unwrap_or(0)
    }

    /// Total number of blocks in the subtree.
    #[must_use]
    pub fn block_count(&self) -> usize {
        1 + self.children.iter().map(Block::block_count).sum::<usize>()
    }

    /// Depth-first search for a block by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Block> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render(&self, indent: usize, out: &mut String) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(&self.name);
        out.push('\n');
        for child in &self.children {
            child.render(indent + 1, out);
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(&out)
    }
}

/// The paper's Figure 1: the hierarchy of a successive-approximation A/D
/// converter, down to the transistor-group level.
#[must_use]
pub fn successive_approximation_adc() -> Block {
    let op_amp = Block::new("op amp")
        .with_child(Block::new("differential pair"))
        .with_child(Block::new("current mirror"))
        .with_child(Block::new("level shifter"))
        .with_child(Block::new("transconductance amplifier"));
    Block::new("successive approximation A/D")
        .with_child(
            Block::new("sample-and-hold")
                .with_child(Block::new("switch"))
                .with_child(Block::new("hold capacitor"))
                .with_child(op_amp.clone()),
        )
        .with_child(
            Block::new("comparator")
                .with_child(Block::new("preamplifier"))
                .with_child(Block::new("latch")),
        )
        .with_child(
            Block::new("D/A converter")
                .with_child(Block::new("capacitor array"))
                .with_child(op_amp),
        )
        .with_child(Block::new("successive-approximation register"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_hierarchy_shape() {
        let adc = successive_approximation_adc();
        assert_eq!(adc.children().len(), 4);
        // Four levels: ADC → S/H → op amp → diff pair.
        assert_eq!(adc.depth(), 4);
        assert!(adc.block_count() > 10);
    }

    #[test]
    fn hierarchy_is_not_strict() {
        // Siblings at the same level differ in complexity: the S/H has a
        // deep op-amp subtree, the SAR is a leaf.
        let adc = successive_approximation_adc();
        let sh = adc.find("sample-and-hold").unwrap();
        let sar = adc.find("successive-approximation register").unwrap();
        assert!(sh.depth() > sar.depth());
    }

    #[test]
    fn find_locates_nested_blocks() {
        let adc = successive_approximation_adc();
        assert!(adc.find("differential pair").is_some());
        assert!(adc.find("flux capacitor").is_none());
    }

    #[test]
    fn op_amp_subblocks_are_reused() {
        // The same op-amp template appears under both the S/H and the DAC
        // — the paper's reuse argument.
        let adc = successive_approximation_adc();
        let sh_amp = adc.find("sample-and-hold").unwrap().find("op amp");
        let dac_amp = adc.find("D/A converter").unwrap().find("op amp");
        assert_eq!(sh_amp, dac_amp);
    }

    #[test]
    fn display_is_indented() {
        let adc = successive_approximation_adc();
        let text = adc.to_string();
        assert!(text.contains("\n  sample-and-hold"));
        assert!(text.contains("\n    switch") || text.contains("\n      switch"));
    }
}
