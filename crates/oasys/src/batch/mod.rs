//! Batch synthesis: run a manifest of specs × technologies on a
//! bounded worker pool, with resumable checkpoints and per-job fault
//! isolation.
//!
//! The paper evaluates OASYS the way a user would run it: the same
//! three specifications pushed through multiple processes (Tables 1–2),
//! not one invocation at a time. This module is that sweep as a first
//! class citizen:
//!
//! * [`Manifest`] expands `spec × tech` inputs into a [`Job`] list,
//!   each with a content [`fingerprint`] that identifies the work
//!   regardless of file names.
//! * [`Batch`] runs jobs on a bounded pool, streaming one [`JobRecord`]
//!   per job (JSON lines via [`JobRecord::render_json`]) and producing
//!   a deterministic aggregate ([`BatchReport::render_aggregate`]).
//! * [`Checkpoint`] persists completed fingerprints with their
//!   outcomes, so a killed run resumes without redoing finished work —
//!   and a resumed run aggregates byte-identically to an uninterrupted
//!   one.
//! * A panicking or diverging job fails **its own record only**;
//!   transient failures retry with capped exponential backoff.
//!
//! ```no_run
//! use oasys::batch::{Batch, BatchOptions, Manifest, SynthRunner};
//! use oasys_telemetry::Telemetry;
//! use std::sync::Arc;
//!
//! let manifest = Manifest::load("data/sweep.manifest")?;
//! let mut options = BatchOptions::default();
//! options.apply_manifest(&manifest.settings());
//! let tel = Telemetry::new();
//! let batch = Batch::new(manifest.expand()?, options)
//!     .with_checkpoint("sweep.checkpoint")?;
//! let report = batch.run(&Arc::new(SynthRunner::new()), &tel, |record| {
//!     println!("{}", record.render_json());
//! })?;
//! print!("{}", report.render_aggregate());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod checkpoint;
mod manifest;
mod runner;
mod synth_runner;

pub use checkpoint::{
    Checkpoint, CheckpointEntry, CheckpointError, CheckpointOutcome, CHECKPOINT_HEADER,
};
pub use manifest::{
    fingerprint, Job, Manifest, ManifestError, ManifestSettings, Sampling, SAMPLABLE_SPEC_FIELDS,
};
pub use runner::{
    Batch, BatchCounts, BatchReport, FailureKind, JobFailure, JobRecord, JobRunner, JobStatus,
    JobSuccess, StyleEntry,
};
pub use synth_runner::{SynthRunner, DEFAULT_CACHE_ENTRIES};

use std::time::Duration;

/// Default per-job wall-clock budget.
pub const DEFAULT_JOB_TIMEOUT: Duration = Duration::from_secs(120);
/// Default retry cap for transient failures.
pub const DEFAULT_RETRIES: u32 = 2;
/// Default first-retry backoff; doubles per retry up to the cap.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Default backoff ceiling.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(800);

/// Tuning knobs for a [`Batch`] run.
///
/// Defaults: one worker per available CPU (capped at 8), a
/// [`DEFAULT_JOB_TIMEOUT`] budget per job, [`DEFAULT_RETRIES`] retries
/// for transient failures with 50 ms → 800 ms capped doubling backoff,
/// and verification enabled.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    workers: usize,
    timeout: Option<Duration>,
    retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    verify: bool,
    search: crate::SearchOptions,
}

impl Default for BatchOptions {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(8);
        Self {
            workers,
            timeout: Some(DEFAULT_JOB_TIMEOUT),
            retries: DEFAULT_RETRIES,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_cap: DEFAULT_BACKOFF_CAP,
            verify: true,
            search: crate::SearchOptions::default(),
        }
    }
}

impl BatchOptions {
    /// Sets the worker-pool size (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-job wall-clock budget; `None` disables the timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the transient-failure retry cap.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the backoff base and ceiling.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Enables or disables post-synthesis verification per job.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the style-search options each job runs with.
    #[must_use]
    pub fn with_search(mut self, search: crate::SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Overlays manifest-declared settings (`workers`, `timeout_ms`,
    /// `retries`, `verify`) onto these options; a `timeout_ms` of 0
    /// disables the per-job timeout.
    pub fn apply_manifest(&mut self, settings: &ManifestSettings) {
        if let Some(workers) = settings.workers {
            self.workers = workers.max(1);
        }
        if let Some(timeout) = settings.timeout {
            self.timeout = if timeout.is_zero() {
                None
            } else {
                Some(timeout)
            };
        }
        if let Some(retries) = settings.retries {
            self.retries = retries;
        }
        if let Some(verify) = settings.verify {
            self.verify = verify;
        }
    }

    /// Worker-pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-job wall-clock budget (`None` = unlimited).
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Transient-failure retry cap.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Whether jobs verify their selected design.
    #[must_use]
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// Style-search options jobs run with.
    #[must_use]
    pub fn search(&self) -> &crate::SearchOptions {
        &self.search
    }

    /// The sleep before retry number `attempt` (1-based): the base
    /// doubled per prior attempt, capped at the ceiling.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let options = BatchOptions::default()
            .with_backoff(Duration::from_millis(50), Duration::from_millis(800));
        assert_eq!(options.backoff(1), Duration::from_millis(50));
        assert_eq!(options.backoff(2), Duration::from_millis(100));
        assert_eq!(options.backoff(3), Duration::from_millis(200));
        assert_eq!(options.backoff(10), Duration::from_millis(800));
    }

    #[test]
    fn manifest_settings_overlay() {
        let mut options = BatchOptions::default()
            .with_workers(4)
            .with_retries(2)
            .with_verify(true);
        options.apply_manifest(&ManifestSettings {
            workers: Some(2),
            timeout: Some(Duration::ZERO),
            retries: None,
            verify: Some(false),
        });
        assert_eq!(options.workers(), 2);
        assert_eq!(options.timeout(), None);
        assert_eq!(options.retries(), 2);
        assert!(!options.verify());
    }
}
