//! Resumable batch checkpoints.
//!
//! The checkpoint file is an append-only text log: a header line, then
//! one tab-separated record per finished job. The batch runner appends
//! (and flushes) a record the moment a job finishes, so a killed run
//! loses at most the jobs that were still in flight. On resume, jobs
//! whose fingerprints appear with a *completed* outcome (`ok` or
//! `infeasible`) are skipped; `failed` entries are kept for diagnosis
//! but re-run, since a panic or timeout may have been environmental.
//!
//! Version 2 seals every record with a per-line FNV-1a checksum
//! ([`crate::integrity`]), appended as a 7th tab-separated field:
//!
//! ```text
//! oasys-batch-checkpoint v2
//! 8f3a…\tok\ttwo-stage\t<area f64 bits, hex>\tspec-b.txt\tgeneric-5um.tech\t<fnv1a64, hex>
//! 77c1…\tinfeasible\t-\t-\tspec-c.txt\tgeneric-1.2um.tech\t<fnv1a64, hex>
//! ```
//!
//! The completed record carries the *outcome* (style and bit-exact
//! area), not just the fingerprint — that is what lets a resumed run
//! reconstruct the same aggregate report as an uninterrupted one
//! without redoing the work.
//!
//! Crash and corruption tolerance, by damage class:
//!
//! - **Torn final line** (kill mid-append): the unterminated tail is
//!   dropped, the file is truncated back to its durable prefix, and
//!   [`Checkpoint::recovered`] reports the repair.
//! - **Corrupt interior line** (bit rot, bad sector — v2 files only):
//!   any line whose checksum fails to verify is *quarantined* — dropped
//!   from the completed set so its job re-runs, counted by
//!   [`Checkpoint::quarantined`], and healed out of the file by an
//!   atomic rewrite of the surviving lines. Resume never trusts a
//!   damaged record and never discards the healthy remainder.
//! - **Structural damage a crash or bit rot cannot explain** (bad
//!   header; in legacy v1 files, any malformed terminated record; in v2
//!   files, a record whose checksum *verifies* but whose fields are
//!   malformed) is reported as [`CheckpointError::Corrupt`]; the
//!   runner's policy ([`super::Batch::with_checkpoint`]) is to discard
//!   such a file and restart the batch cleanly rather than trust it.
//!
//! Version negotiation: the header names the format. v1 files (written
//! before checksums existed) are still read — and appended to — in
//! their own unsealed format, so an interrupted pre-upgrade run resumes
//! cleanly. New checkpoints always start at v2.

use crate::integrity::{self, LineIntegrity};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First line of every new checkpoint file; the version suffix gates
/// format evolution.
pub const CHECKPOINT_HEADER: &str = "oasys-batch-checkpoint v2";

/// The legacy (pre-checksum) header: 6 unsealed tab-separated fields
/// per record. Still read and appended to for backward compatibility.
pub const CHECKPOINT_HEADER_V1: &str = "oasys-batch-checkpoint v1";

/// How a checkpointed job ended.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointOutcome {
    /// A style was selected; the record stores which and its area.
    Ok {
        /// Winning style name.
        style: String,
        /// Estimated area, µm², preserved bit-exactly.
        area_um2: f64,
    },
    /// Every style was rejected — a definitive answer, so the job is
    /// complete and is skipped on resume.
    Infeasible,
    /// The job failed (panic, timeout, or a hard error). Recorded for
    /// diagnosis; *not* treated as complete, so resume re-runs it.
    Failed,
}

impl CheckpointOutcome {
    /// `true` when the job produced a definitive synthesis answer and
    /// must not be re-run on resume.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        !matches!(self, CheckpointOutcome::Failed)
    }
}

/// One parsed checkpoint record.
#[derive(Clone, Debug)]
pub struct CheckpointEntry {
    /// The job's content fingerprint.
    pub fingerprint: u64,
    /// How the job ended.
    pub outcome: CheckpointOutcome,
    /// The job's spec label at the time it ran (display only).
    pub spec_label: String,
    /// The job's tech label at the time it ran (display only).
    pub tech_label: String,
}

/// Why a checkpoint file was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file exists but fails a structural check — wrong header or a
    /// malformed (fully terminated, checksum-verified where sealed)
    /// record — that neither an append-and-flush crash nor bit rot can
    /// explain.
    Corrupt {
        /// The offending path.
        path: PathBuf,
        /// Which check failed.
        detail: String,
    },
    /// The file could not be read or written.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            CheckpointError::Io { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The completed-job set loaded from (and appended to) a checkpoint
/// file.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    completed: HashMap<u64, CheckpointEntry>,
    writer: Option<File>,
    recovered: bool,
    /// `true` when appends seal their lines (v2 files and fresh files);
    /// `false` when appending to a legacy v1 file in its own format.
    sealed: bool,
    /// Checksum-failed lines quarantined (and healed away) on open.
    quarantined: usize,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path` and loads its
    /// completed-job set.
    ///
    /// A torn (unterminated) final line — the signature of a kill
    /// mid-append — is treated as absent: the durable prefix is kept,
    /// the file is truncated back to it so later appends stay
    /// well-formed, and [`Checkpoint::recovered`] reports the repair.
    /// In a v2 file, interior lines whose checksum fails are
    /// quarantined (see [`Checkpoint::quarantined`]) and the file is
    /// atomically rewritten without them; the damaged jobs re-run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when an existing file fails a
    /// structural check neither a crash nor bit rot can explain (the
    /// caller decides whether to [`Checkpoint::start_fresh`]);
    /// [`CheckpointError::Io`] on filesystem errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        let mut recovered = false;
        let mut sealed = true;
        let mut quarantined = 0usize;
        let completed = match std::fs::read_to_string(&path) {
            Ok(text) => {
                // Every durable line ends in a newline, so a missing one
                // means the final line was torn mid-write. Drop it and
                // parse only the durable prefix.
                let durable = match text.rfind('\n') {
                    Some(last) if last + 1 < text.len() => {
                        recovered = true;
                        &text[..=last]
                    }
                    None if !text.is_empty() => {
                        recovered = true;
                        ""
                    }
                    _ => text.as_str(),
                };
                // A file with no durable content (empty, or its only
                // line torn away) parses as fresh, not corrupt —
                // nothing durable was ever written, so nothing is lost.
                let completed = if durable.is_empty() {
                    if recovered {
                        truncate_to(&path, 0)?;
                    }
                    HashMap::new()
                } else {
                    let parsed = parse(&path, durable)?;
                    sealed = parsed.sealed;
                    quarantined = parsed.quarantined;
                    if quarantined > 0 {
                        // Heal: rewrite the file with only the lines
                        // that verified, atomically. The quarantined
                        // jobs re-run and re-append fresh records.
                        let mut healed = String::new();
                        healed.push_str(parsed.header);
                        healed.push('\n');
                        for line in &parsed.good_lines {
                            healed.push_str(line);
                            healed.push('\n');
                        }
                        rewrite_atomic(&path, &healed)?;
                    } else if recovered {
                        truncate_to(&path, durable.len() as u64)?;
                    }
                    parsed.completed
                };
                completed
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(error) => return Err(CheckpointError::Io { path, error }),
        };
        Ok(Self {
            path,
            completed,
            writer: None,
            recovered,
            sealed,
            quarantined,
        })
    }

    /// Discards any existing file at `path` and starts an empty
    /// checkpoint — the recovery path for a corrupt file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the stale file cannot be removed.
    pub fn start_fresh(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => return Err(CheckpointError::Io { path, error }),
        }
        Ok(Self {
            path,
            completed: HashMap::new(),
            writer: None,
            recovered: false,
            sealed: true,
            quarantined: 0,
        })
    }

    /// The checkpoint file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `true` when [`Checkpoint::open`] found and repaired a torn final
    /// line (the dropped record's job simply re-runs on resume).
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Number of checksum-failed lines quarantined on open. Each was
    /// dropped from the completed set (its job re-runs) and healed out
    /// of the file; the healthy lines all survived.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// The completed (skippable) entry for `fingerprint`, if any.
    #[must_use]
    pub fn completed(&self, fingerprint: u64) -> Option<&CheckpointEntry> {
        self.completed.get(&fingerprint)
    }

    /// Number of completed jobs on record.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Appends one finished job and flushes, creating the file (with its
    /// header) on first write. Completed outcomes also join the in-memory
    /// skip set, so duplicate fingerprints later in the same run are
    /// served from the checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the record cannot be written durably.
    pub fn record(
        &mut self,
        fingerprint: u64,
        outcome: &CheckpointOutcome,
        spec_label: &str,
        tech_label: &str,
    ) -> Result<(), CheckpointError> {
        let io_err = |error: std::io::Error, path: &Path| CheckpointError::Io {
            path: path.to_path_buf(),
            error,
        };
        let sealed = self.sealed;
        let file = match &mut self.writer {
            Some(file) => file,
            None => {
                let mut file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .map_err(|e| io_err(e, &self.path))?;
                let len = file.metadata().map_err(|e| io_err(e, &self.path))?.len();
                if len == 0 {
                    writeln!(file, "{CHECKPOINT_HEADER}").map_err(|e| io_err(e, &self.path))?;
                }
                self.writer.insert(file)
            }
        };
        let (style, area) = match outcome {
            CheckpointOutcome::Ok { style, area_um2 } => {
                (style.clone(), format!("{:016x}", area_um2.to_bits()))
            }
            _ => ("-".to_owned(), "-".to_owned()),
        };
        let word = match outcome {
            CheckpointOutcome::Ok { .. } => "ok",
            CheckpointOutcome::Infeasible => "infeasible",
            CheckpointOutcome::Failed => "failed",
        };
        let payload =
            format!("{fingerprint:016x}\t{word}\t{style}\t{area}\t{spec_label}\t{tech_label}");
        let line = if sealed {
            format!("{}\n", integrity::seal_line(&payload))
        } else {
            // Appending to a legacy v1 file: stay in its format so the
            // v1 parser keeps accepting the whole file.
            format!("{payload}\n")
        };
        // Fault site: simulate the process dying partway through this
        // very write — half the record's bytes land, no newline, and the
        // "crashed" writer reports the failure upstream.
        if oasys_faults::armed() && oasys_faults::fired("batch.checkpoint.record") {
            let torn = &line[..line.len() / 2];
            file.write_all(torn.as_bytes())
                .and_then(|()| file.flush())
                .map_err(|e| io_err(e, &self.path))?;
            return Err(io_err(
                std::io::Error::other("fault injected: torn checkpoint write"),
                &self.path,
            ));
        }
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| io_err(e, &self.path))?;
        if outcome.is_complete() {
            self.completed.insert(
                fingerprint,
                CheckpointEntry {
                    fingerprint,
                    outcome: outcome.clone(),
                    spec_label: spec_label.to_owned(),
                    tech_label: tech_label.to_owned(),
                },
            );
        }
        Ok(())
    }
}

/// Truncates the file at `path` back to `len` bytes — the repair for a
/// torn final line, so later appends land on a well-formed prefix.
fn truncate_to(path: &Path, len: u64) -> Result<(), CheckpointError> {
    let io_err = |error: std::io::Error| CheckpointError::Io {
        path: path.to_path_buf(),
        error,
    };
    let file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
    file.set_len(len).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    Ok(())
}

/// Replaces the file at `path` atomically (temp file, fsync, rename) —
/// the repair that heals quarantined lines out of a checkpoint.
fn rewrite_atomic(path: &Path, text: &str) -> Result<(), CheckpointError> {
    let io_err = |error: std::io::Error| CheckpointError::Io {
        path: path.to_path_buf(),
        error,
    };
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = File::create(&tmp).map_err(io_err)?;
        file.write_all(text.as_bytes()).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)
}

/// The result of parsing a checkpoint body.
struct Parsed<'a> {
    completed: HashMap<u64, CheckpointEntry>,
    /// The header line, verbatim (needed to heal in the same version).
    header: &'a str,
    /// Every line that verified, verbatim and in file order.
    good_lines: Vec<&'a str>,
    /// Checksum-failed lines dropped from the completed set.
    quarantined: usize,
    /// `true` when the file is v2 (appends must seal).
    sealed: bool,
}

/// Parses a checkpoint file body into its completed-job set, applying
/// every structural check the format promises.
fn parse<'a>(path: &Path, text: &'a str) -> Result<Parsed<'a>, CheckpointError> {
    let corrupt = |detail: String| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut lines = text.lines();
    let (header, sealed) = match lines.next() {
        Some(CHECKPOINT_HEADER) => (CHECKPOINT_HEADER, true),
        Some(CHECKPOINT_HEADER_V1) => (CHECKPOINT_HEADER_V1, false),
        Some(other) => {
            return Err(corrupt(format!(
                "bad header `{other}` (expected `{CHECKPOINT_HEADER}`)"
            )))
        }
        None => return Err(corrupt("empty file".to_owned())),
    };
    // A kill can truncate the final record mid-line; every durable line
    // (including the last) ends in a newline, so a missing one means the
    // last record cannot be trusted.
    if !text.ends_with('\n') {
        return Err(corrupt("truncated final line (missing newline)".to_owned()));
    }
    let mut completed = HashMap::new();
    let mut good_lines = Vec::new();
    let mut quarantined = 0usize;
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        let payload = if sealed {
            match integrity::open_line(line) {
                LineIntegrity::Sealed(payload) => payload,
                // A v2 line that does not verify is bit rot, not a
                // format violation: quarantine it (the job re-runs)
                // instead of condemning the whole file.
                LineIntegrity::Unsealed(_) | LineIntegrity::Corrupt => {
                    quarantined += 1;
                    continue;
                }
            }
        } else {
            line
        };
        let fields: Vec<&str> = payload.split('\t').collect();
        let [fp, word, style, area, spec_label, tech_label] = fields.as_slice() else {
            return Err(corrupt(format!(
                "line {lineno}: expected 6 tab-separated fields, got {}",
                fields.len()
            )));
        };
        let parse_hex = |s: &str, what: &str| {
            if s.len() == 16 {
                u64::from_str_radix(s, 16).ok()
            } else {
                None
            }
            .ok_or_else(|| corrupt(format!("line {lineno}: bad {what} `{s}`")))
        };
        let fingerprint = parse_hex(fp, "fingerprint")?;
        let outcome = match *word {
            "ok" => CheckpointOutcome::Ok {
                style: (*style).to_owned(),
                area_um2: f64::from_bits(parse_hex(area, "area")?),
            },
            "infeasible" => CheckpointOutcome::Infeasible,
            "failed" => CheckpointOutcome::Failed,
            other => return Err(corrupt(format!("line {lineno}: unknown outcome `{other}`"))),
        };
        good_lines.push(line);
        if outcome.is_complete() {
            completed.insert(
                fingerprint,
                CheckpointEntry {
                    fingerprint,
                    outcome,
                    spec_label: (*spec_label).to_owned(),
                    tech_label: (*tech_label).to_owned(),
                },
            );
        }
    }
    Ok(Parsed {
        completed,
        header,
        good_lines,
        quarantined,
        sealed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oasys-batch-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut cp = Checkpoint::open(&path).unwrap();
            cp.record(
                0xdead_beef,
                &CheckpointOutcome::Ok {
                    style: "two-stage".into(),
                    area_um2: 1234.5678,
                },
                "b.txt",
                "p.tech",
            )
            .unwrap();
            cp.record(7, &CheckpointOutcome::Infeasible, "c.txt", "q.tech")
                .unwrap();
            cp.record(9, &CheckpointOutcome::Failed, "d.txt", "q.tech")
                .unwrap();
        }
        let cp = Checkpoint::open(&path).unwrap();
        assert_eq!(cp.completed_count(), 2, "failed entries are not complete");
        assert_eq!(cp.quarantined(), 0);
        let entry = cp.completed(0xdead_beef).unwrap();
        match &entry.outcome {
            CheckpointOutcome::Ok { style, area_um2 } => {
                assert_eq!(style, "two-stage");
                assert_eq!(area_um2.to_bits(), 1234.5678_f64.to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(cp.completed(9).is_none(), "failed jobs re-run on resume");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn new_checkpoints_write_sealed_v2_lines() {
        let path = tmp("sealed");
        let _ = std::fs::remove_file(&path);
        let mut cp = Checkpoint::open(&path).unwrap();
        cp.record(1, &CheckpointOutcome::Infeasible, "a", "b")
            .unwrap();
        drop(cp);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(CHECKPOINT_HEADER));
        let record = lines.next().unwrap();
        match crate::integrity::open_line(record) {
            LineIntegrity::Sealed(payload) => {
                assert!(
                    payload.starts_with("0000000000000001\tinfeasible"),
                    "{payload}"
                );
            }
            other => panic!("record line is not sealed: {other:?} ({record})"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_fresh_checkpoint() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let cp = Checkpoint::open(&path).unwrap();
        assert_eq!(cp.completed_count(), 0);
    }

    #[test]
    fn torn_final_line_is_dropped_and_repaired() {
        let path = tmp("truncated");
        let durable = format!(
            "{CHECKPOINT_HEADER}\n{}\n",
            integrity::seal_line("0000000000000007\tinfeasible\t-\t-\ta\tb")
        );
        std::fs::write(&path, format!("{durable}00000000000000ff\tok\ttwo-")).unwrap();
        let mut cp = Checkpoint::open(&path).unwrap();
        assert!(cp.recovered(), "torn tail must be reported");
        assert_eq!(cp.completed_count(), 1, "durable prefix survives");
        assert!(cp.completed(0xff).is_none(), "the torn record is absent");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            durable,
            "file truncated back to its durable prefix"
        );
        // Appends after the repair keep the file well-formed.
        cp.record(0xff, &CheckpointOutcome::Infeasible, "a", "b")
            .unwrap();
        drop(cp);
        let cp = Checkpoint::open(&path).unwrap();
        assert!(!cp.recovered());
        assert_eq!(cp.completed_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v1_files_are_read_and_appended_in_their_own_format() {
        let path = tmp("legacy-v1");
        std::fs::write(
            &path,
            format!("{CHECKPOINT_HEADER_V1}\n0000000000000007\tinfeasible\t-\t-\ta\tb\n"),
        )
        .unwrap();
        let mut cp = Checkpoint::open(&path).unwrap();
        assert_eq!(cp.completed_count(), 1, "v1 records still load");
        cp.record(0xff, &CheckpointOutcome::Infeasible, "a", "b")
            .unwrap();
        drop(cp);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().skip(1).all(|l| l.split('\t').count() == 6),
            "appends to a v1 file stay unsealed: {text}"
        );
        let cp = Checkpoint::open(&path).unwrap();
        assert_eq!(cp.completed_count(), 2, "the mixed-age v1 file re-opens");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_byte_is_quarantined_and_healed_not_fatal() {
        let path = tmp("bitrot");
        let _ = std::fs::remove_file(&path);
        {
            let mut cp = Checkpoint::open(&path).unwrap();
            for fp in [1u64, 2, 3] {
                cp.record(fp, &CheckpointOutcome::Infeasible, "a", "b")
                    .unwrap();
            }
        }
        // Flip one byte in the middle record (line 3 of the file).
        let mut bytes = std::fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        bytes[line_starts[2] + 4] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let cp = Checkpoint::open(&path).unwrap();
        assert_eq!(cp.quarantined(), 1, "exactly the damaged line is dropped");
        assert_eq!(cp.completed_count(), 2, "healthy records survive");
        assert!(cp.completed(2).is_none(), "the damaged job re-runs");
        assert!(cp.completed(1).is_some() && cp.completed(3).is_some());
        drop(cp);
        // The heal is durable: a second open sees a clean file.
        let cp = Checkpoint::open(&path).unwrap();
        assert_eq!(cp.quarantined(), 0, "quarantined line healed away");
        assert_eq!(cp.completed_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_header_and_empty_file_open_fresh() {
        let path = tmp("torn-header");
        std::fs::write(&path, "oasys-batch-ch").unwrap();
        let cp = Checkpoint::open(&path).unwrap();
        assert!(cp.recovered(), "a torn header is a torn final line");
        assert_eq!(cp.completed_count(), 0);
        let cp = Checkpoint::open(&path).unwrap();
        assert!(!cp.recovered(), "repair left an (empty) well-formed file");
        assert_eq!(cp.completed_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_fault_leaves_a_recoverable_file() {
        let path = tmp("torn-fault");
        let _ = std::fs::remove_file(&path);
        let mut cp = Checkpoint::open(&path).unwrap();
        cp.record(1, &CheckpointOutcome::Infeasible, "a", "b")
            .unwrap();
        oasys_faults::set("batch.checkpoint.record", oasys_faults::FaultSpec::FailOnce);
        let err = cp
            .record(2, &CheckpointOutcome::Infeasible, "c", "d")
            .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        oasys_faults::remove("batch.checkpoint.record");
        drop(cp);
        assert!(
            !std::fs::read_to_string(&path).unwrap().ends_with('\n'),
            "the fault really tore the final line"
        );
        let cp = Checkpoint::open(&path).unwrap();
        assert!(cp.recovered());
        assert_eq!(
            cp.completed_count(),
            1,
            "record 1 survives, record 2 re-runs"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_header_and_malformed_records_are_corrupt() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(matches!(
            Checkpoint::open(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
        // v1 files have no checksums, so structural strictness is the
        // only defense: any malformed terminated line condemns the file.
        std::fs::write(&path, format!("{CHECKPOINT_HEADER_V1}\nnot\ttabs\n")).unwrap();
        let err = Checkpoint::open(&path).unwrap_err();
        assert!(err.to_string().contains("6 tab-separated"), "{err}");
        std::fs::write(
            &path,
            format!("{CHECKPOINT_HEADER_V1}\nzz\tok\ts\t0000000000000000\ta\tb\n"),
        )
        .unwrap();
        let err = Checkpoint::open(&path).unwrap_err();
        assert!(err.to_string().contains("bad fingerprint"), "{err}");
        // A v2 line whose checksum *verifies* but whose payload is
        // malformed was written wrong, not damaged: still corrupt.
        std::fs::write(
            &path,
            format!(
                "{CHECKPOINT_HEADER}\n{}\n",
                integrity::seal_line("not-a-record")
            ),
        )
        .unwrap();
        let err = Checkpoint::open(&path).unwrap_err();
        assert!(err.to_string().contains("6 tab-separated"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn start_fresh_discards_a_corrupt_file() {
        let path = tmp("fresh");
        std::fs::write(&path, "garbage").unwrap();
        let cp = Checkpoint::start_fresh(&path).unwrap();
        assert_eq!(cp.completed_count(), 0);
        assert!(!path.exists(), "stale file removed");
    }
}
