//! The batch worker pool: bounded concurrency, per-job fault isolation,
//! capped-backoff retries, checkpointing, and result streaming.
//!
//! Execution model:
//!
//! * The coordinator (the calling thread) owns the [`Telemetry`] handle,
//!   the checkpoint, and the result stream. Worker loops run as scoped
//!   jobs on the persistent process-wide [`oasys_pool::Pool`], popping
//!   jobs from a shared queue; the coordinator helps the pool while it
//!   waits, so batches complete even on a zero-worker (single-core)
//!   pool without spawning a single thread.
//! * Every *attempt* of a job runs on its own detached thread so that a
//!   panicking plan or a diverging simulation fails **that job only**:
//!   panics are caught and reported, and an attempt that exceeds the
//!   wall-clock budget is abandoned (its thread is left to finish in the
//!   background) and recorded as a timeout.
//! * Failures a [`JobRunner`] marks transient are retried up to the
//!   retry cap, sleeping an exponential backoff (doubling from the base,
//!   capped) between attempts.
//! * Telemetry follows the engine's fork/absorb protocol: seeds are
//!   forked up front on the coordinator, each attempt records into its
//!   own ring, and the surviving recordings are absorbed back in job
//!   order — so a manually-clocked batch trace is byte-identical
//!   regardless of worker count or scheduling. Untraced batches still
//!   record each attempt into a small always-on flight ring, and a
//!   failed job dumps its trace tail into the structured record
//!   ([`JobRecord::flight`]).

use super::checkpoint::{Checkpoint, CheckpointError, CheckpointOutcome};
use super::manifest::Job;
use crate::batch::BatchOptions;
use oasys_faults::Deadline;
use oasys_telemetry::{json, Recording, Telemetry, TelemetrySeed};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Executes one job. Implementations must be shareable across the
/// worker pool and the per-attempt isolation threads.
///
/// The pool supplies panic isolation and the wall-clock budget around
/// [`JobRunner::run`]; the runner itself only distinguishes *definitive*
/// answers ([`JobSuccess`], which includes "no style fits") from
/// failures, and marks which failures are worth retrying.
pub trait JobRunner: Send + Sync + 'static {
    /// Runs one job, recording into `tel` (a per-attempt handle forked
    /// from the batch telemetry). `deadline` is the job's cooperative
    /// wall-clock budget: runners should thread it into their plan
    /// executors and simulator loops so an over-budget job aborts cleanly
    /// at an internal checkpoint, and report the abort as a
    /// [`JobFailure::timed_out`] failure. The pool keeps a stuck-job
    /// watchdog backstop (a [`Deadline`] at twice the budget) for
    /// runners that ignore the deadline; jobs it abandons are flagged
    /// in telemetry as `batch.jobs_stuck`.
    ///
    /// # Errors
    ///
    /// [`JobFailure`] when the job cannot produce a definitive answer;
    /// set [`JobFailure::transient`] when a retry might succeed.
    fn run(
        &self,
        job: &Job,
        tel: &Telemetry,
        deadline: &Deadline,
    ) -> Result<JobSuccess, JobFailure>;
}

/// One style's result inside a job record (mirrors the single-run
/// rejection table: every attempted style appears, feasible or not).
#[derive(Clone, Debug, PartialEq)]
pub struct StyleEntry {
    /// The style's display name.
    pub style: String,
    /// Estimated area when feasible, µm².
    pub area_um2: Option<f64>,
    /// Device count when feasible.
    pub devices: Option<usize>,
    /// Patch-rule notes when feasible (empty for a clean template).
    pub notes: Vec<String>,
    /// The rejection reason when infeasible.
    pub reason: Option<String>,
}

impl StyleEntry {
    /// `true` when this style met the specification.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.reason.is_none()
    }
}

/// A definitive job answer: either a selected design or a full set of
/// rejections.
#[derive(Clone, Debug)]
pub struct JobSuccess {
    selected: Option<(String, f64)>,
    styles: Vec<StyleEntry>,
    meets_spec: Option<bool>,
    detail: Option<String>,
}

impl JobSuccess {
    /// A feasible answer: `style` won at `area_um2`.
    #[must_use]
    pub fn feasible(style: impl Into<String>, area_um2: f64) -> Self {
        Self {
            selected: Some((style.into(), area_um2)),
            styles: Vec::new(),
            meets_spec: None,
            detail: None,
        }
    }

    /// An infeasible answer: every style was rejected.
    #[must_use]
    pub fn infeasible() -> Self {
        Self {
            selected: None,
            styles: Vec::new(),
            meets_spec: None,
            detail: None,
        }
    }

    /// Attaches the per-style breakdown.
    #[must_use]
    pub fn with_styles(mut self, styles: Vec<StyleEntry>) -> Self {
        self.styles = styles;
        self
    }

    /// Attaches the verification verdict (did the measured design meet
    /// every specified quantity).
    #[must_use]
    pub fn with_meets_spec(mut self, meets_spec: bool) -> Self {
        self.meets_spec = Some(meets_spec);
        self
    }

    /// Attaches an opaque runner payload (a rendered JSON object) that
    /// rides the record to the caller's sink. The batch JSONL schema
    /// ignores it; dataset generation uses it to carry the netlist and
    /// datasheet of the winning design into dataset records.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// The winning (style, area) pair, `None` when infeasible.
    #[must_use]
    pub fn selected(&self) -> Option<(&str, f64)> {
        self.selected.as_ref().map(|(s, a)| (s.as_str(), *a))
    }
}

/// A job attempt's failure, as reported by the [`JobRunner`].
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Human-readable description.
    pub message: String,
    /// `true` when a retry might succeed (I/O hiccup, resource
    /// exhaustion); synthesis infeasibility is *not* a failure, and
    /// deterministic errors should leave this `false`.
    pub transient: bool,
    /// `true` when the job stopped because its cooperative deadline
    /// expired — recorded as a timeout, not a hard error.
    pub timed_out: bool,
}

impl JobFailure {
    /// A permanent (non-retryable) failure.
    #[must_use]
    pub fn permanent(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            transient: false,
            timed_out: false,
        }
    }

    /// A transient (retryable) failure.
    #[must_use]
    pub fn transient(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            transient: true,
            timed_out: false,
        }
    }

    /// A cooperative-deadline failure: the job saw its budget expire and
    /// aborted cleanly.
    #[must_use]
    pub fn timed_out(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            transient: false,
            timed_out: true,
        }
    }
}

/// Why a job's record reports `failed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The job panicked; the batch caught it and moved on.
    Panic,
    /// The job exceeded its wall-clock budget and was abandoned.
    Timeout,
    /// The runner reported a hard error (after exhausting any retries).
    Error,
}

impl FailureKind {
    fn word(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Error => "error",
        }
    }
}

/// How one job in the batch ended.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// A style was selected.
    Ok {
        /// Winning style name.
        style: String,
        /// Estimated area, µm².
        area_um2: f64,
    },
    /// Every style was rejected — a definitive, checkpointable answer.
    Infeasible,
    /// The job failed; the rest of the batch was unaffected.
    Failed {
        /// What kind of failure.
        kind: FailureKind,
        /// Human-readable description.
        message: String,
    },
    /// A prior run already completed this job (same fingerprint in the
    /// checkpoint); its recorded outcome rides along.
    Skipped {
        /// The outcome the checkpoint recorded for this fingerprint.
        prior: CheckpointOutcome,
    },
}

impl JobStatus {
    /// The checkpoint outcome this status persists as (`None` for
    /// skipped jobs, which are already on record).
    fn to_checkpoint(&self) -> Option<CheckpointOutcome> {
        match self {
            JobStatus::Ok { style, area_um2 } => Some(CheckpointOutcome::Ok {
                style: style.clone(),
                area_um2: *area_um2,
            }),
            JobStatus::Infeasible => Some(CheckpointOutcome::Infeasible),
            JobStatus::Failed { .. } => Some(CheckpointOutcome::Failed),
            JobStatus::Skipped { .. } => None,
        }
    }

    /// The aggregate-report outcome: skipped jobs resolve to the outcome
    /// their checkpoint entry recorded, so a resumed batch aggregates
    /// identically to an uninterrupted one.
    fn effective(&self) -> (&'static str, Option<(&str, f64)>) {
        match self {
            JobStatus::Ok { style, area_um2 } => ("ok", Some((style.as_str(), *area_um2))),
            JobStatus::Infeasible => ("infeasible", None),
            JobStatus::Failed { .. } => ("failed", None),
            JobStatus::Skipped { prior } => match prior {
                CheckpointOutcome::Ok { style, area_um2 } => {
                    ("ok", Some((style.as_str(), *area_um2)))
                }
                CheckpointOutcome::Infeasible => ("infeasible", None),
                CheckpointOutcome::Failed => ("failed", None),
            },
        }
    }
}

/// One job's result record — the unit the batch streams as JSON lines.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job's position in the batch.
    pub job: usize,
    /// The specification input's label.
    pub spec: String,
    /// The technology input's label.
    pub tech: String,
    /// The job's content fingerprint.
    pub fingerprint: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// Attempts made this run (0 for skipped jobs).
    pub attempts: u32,
    /// Wall-clock duration of this run's attempts, ns (0 for skipped).
    pub duration_ns: u64,
    /// Per-style breakdown (empty for skipped and failed jobs).
    pub styles: Vec<StyleEntry>,
    /// Verification verdict, when the runner measured the design.
    pub meets_spec: Option<bool>,
    /// Opaque runner payload ([`JobSuccess::with_detail`]); not part of
    /// the batch JSONL schema.
    pub detail: Option<String>,
    /// Flight-recorder tail: the last telemetry records of the failing
    /// attempt, rendered as short lines. Empty for jobs that succeeded
    /// (or were skipped / abandoned before recording anything).
    pub flight: Vec<String>,
}

impl JobRecord {
    /// Renders the record as one JSON line (no trailing newline).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":\"oasys-batch-record\",\"v\":1,\"job\":{},\"spec\":{},\"tech\":{},\"fingerprint\":\"{:016x}\"",
            self.job,
            json::string(&self.spec),
            json::string(&self.tech),
            self.fingerprint
        ));
        match &self.status {
            JobStatus::Ok { style, area_um2 } => {
                out.push_str(&format!(
                    ",\"outcome\":\"ok\",\"style\":{},\"area_um2\":{}",
                    json::string(style),
                    json::number(*area_um2)
                ));
            }
            JobStatus::Infeasible => out.push_str(",\"outcome\":\"infeasible\""),
            JobStatus::Failed { kind, message } => {
                out.push_str(&format!(
                    ",\"outcome\":\"failed\",\"failure\":\"{}\",\"error\":{}",
                    kind.word(),
                    json::string(message)
                ));
                if !self.flight.is_empty() {
                    out.push_str(",\"flight\":[");
                    for (i, line) in self.flight.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&json::string(line));
                    }
                    out.push(']');
                }
            }
            JobStatus::Skipped { prior } => {
                out.push_str(",\"outcome\":\"skipped\"");
                match prior {
                    CheckpointOutcome::Ok { style, area_um2 } => out.push_str(&format!(
                        ",\"prior_outcome\":\"ok\",\"style\":{},\"area_um2\":{}",
                        json::string(style),
                        json::number(*area_um2)
                    )),
                    CheckpointOutcome::Infeasible => {
                        out.push_str(",\"prior_outcome\":\"infeasible\"");
                    }
                    CheckpointOutcome::Failed => out.push_str(",\"prior_outcome\":\"failed\""),
                }
            }
        }
        out.push_str(&format!(
            ",\"attempts\":{},\"duration_ns\":{}",
            self.attempts, self.duration_ns
        ));
        if let Some(meets) = self.meets_spec {
            out.push_str(&format!(",\"meets_spec\":{meets}"));
        }
        if !self.styles.is_empty() {
            out.push_str(",\"styles\":[");
            for (i, entry) in self.styles.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"style\":{},\"feasible\":{}",
                    json::string(&entry.style),
                    entry.feasible()
                ));
                if let Some(area) = entry.area_um2 {
                    out.push_str(&format!(",\"area_um2\":{}", json::number(area)));
                }
                if let Some(devices) = entry.devices {
                    out.push_str(&format!(",\"devices\":{devices}"));
                }
                if !entry.notes.is_empty() {
                    out.push_str(&format!(
                        ",\"notes\":{}",
                        json::string(&entry.notes.join("; "))
                    ));
                }
                if let Some(reason) = &entry.reason {
                    out.push_str(&format!(",\"reason\":{}", json::string(reason)));
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Outcome counts over a finished batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchCounts {
    /// Jobs that selected a design this run.
    pub ok: usize,
    /// Jobs whose every style was rejected this run.
    pub infeasible: usize,
    /// Jobs that failed (panic, timeout, hard error).
    pub failed: usize,
    /// Jobs served from the checkpoint without re-running.
    pub skipped: usize,
}

/// A finished batch: every job's record, in job order.
#[derive(Clone, Debug)]
pub struct BatchReport {
    records: Vec<JobRecord>,
}

impl BatchReport {
    /// Every job's record, sorted by job id.
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Outcome counts for this run.
    #[must_use]
    pub fn counts(&self) -> BatchCounts {
        let mut counts = BatchCounts::default();
        for record in &self.records {
            match record.status {
                JobStatus::Ok { .. } => counts.ok += 1,
                JobStatus::Infeasible => counts.infeasible += 1,
                JobStatus::Failed { .. } => counts.failed += 1,
                JobStatus::Skipped { .. } => counts.skipped += 1,
            }
        }
        counts
    }

    /// `true` when every job has a definitive answer (no failures —
    /// including none on record for skipped jobs).
    #[must_use]
    pub fn all_definitive(&self) -> bool {
        self.records
            .iter()
            .all(|r| r.status.effective().0 != "failed")
    }

    /// Renders the deterministic aggregate document: one entry per job
    /// in job order with its *effective* outcome (checkpointed outcomes
    /// stand in for skipped jobs), plus a summary. Contains no
    /// timestamps, durations, or scheduling artifacts, so an
    /// uninterrupted run and a resumed run over the same inputs render
    /// byte-identical aggregates.
    #[must_use]
    pub fn render_aggregate(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"oasys-batch\",\n  \"version\": 1,\n");
        out.push_str("  \"jobs\": [\n");
        let mut ok = 0usize;
        let mut infeasible = 0usize;
        let mut failed = 0usize;
        let mut total_area = 0.0f64;
        for (i, record) in self.records.iter().enumerate() {
            let (outcome, selected) = record.status.effective();
            match outcome {
                "ok" => ok += 1,
                "infeasible" => infeasible += 1,
                _ => failed += 1,
            }
            let mut line = format!(
                "    {{\"job\": {}, \"spec\": {}, \"tech\": {}, \"fingerprint\": \"{:016x}\", \"outcome\": \"{outcome}\"",
                record.job,
                json::string(&record.spec),
                json::string(&record.tech),
                record.fingerprint
            );
            if let Some((style, area)) = selected {
                total_area += area;
                line.push_str(&format!(
                    ", \"style\": {}, \"area_um2\": {}",
                    json::string(style),
                    json::number(area)
                ));
            }
            line.push('}');
            if i + 1 != self.records.len() {
                line.push(',');
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"jobs\": {}, \"ok\": {ok}, \"infeasible\": {infeasible}, \"failed\": {failed}, \"total_area_um2\": {}}}\n",
            self.records.len(),
            json::number(total_area)
        ));
        out.push_str("}\n");
        out
    }

    /// A one-line human summary.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let counts = self.counts();
        format!(
            "batch: {} jobs — {} ok, {} infeasible, {} failed, {} skipped (resumed)",
            self.records.len(),
            counts.ok,
            counts.infeasible,
            counts.failed,
            counts.skipped
        )
    }
}

/// What one job execution produced (worker → coordinator message).
struct JobExecution {
    status: JobStatus,
    attempts: u32,
    duration_ns: u64,
    styles: Vec<StyleEntry>,
    meets_spec: Option<bool>,
    detail: Option<String>,
    retried: bool,
    /// `true` when the stuck-job watchdog abandoned the final attempt:
    /// the runner blew through twice its budget without reaching a
    /// cooperative-deadline checkpoint. Surfaced as the
    /// `batch.jobs_stuck` telemetry counter.
    stuck: bool,
    /// The final attempt's raw telemetry, absorbed into the batch trace
    /// when the attempt ran to completion (panicked attempts only feed
    /// the flight tail — their rings may hold unbalanced spans).
    recording: Option<Recording>,
    /// Flight-recorder tail for failed jobs (see [`JobRecord::flight`]).
    flight: Vec<String>,
}

/// A configured batch, ready to run.
pub struct Batch {
    jobs: Vec<Job>,
    options: BatchOptions,
    checkpoint: Option<Checkpoint>,
    recovered_checkpoint: bool,
}

impl Batch {
    /// A batch over `jobs` with the given options, no checkpoint.
    #[must_use]
    pub fn new(jobs: Vec<Job>, options: BatchOptions) -> Self {
        Self {
            jobs,
            options,
            checkpoint: None,
            recovered_checkpoint: false,
        }
    }

    /// Attaches a checkpoint file. An existing valid checkpoint arms the
    /// resume path. A torn final line — the one kind of damage an
    /// append-and-flush crash can inflict — is repaired in place: the
    /// durable prefix resumes, only the torn record's job re-runs. Any
    /// other corruption (bad header, malformed record) **discards** the
    /// file and the batch restarts cleanly — a half-written record must
    /// never masquerade as completed work. Check
    /// [`Batch::recovered_checkpoint`] to report either recovery.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read or the stale
    /// corrupt file cannot be removed.
    pub fn with_checkpoint(
        mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, CheckpointError> {
        match Checkpoint::open(path.as_ref()) {
            Ok(checkpoint) => {
                self.recovered_checkpoint = checkpoint.recovered();
                self.checkpoint = Some(checkpoint);
            }
            Err(CheckpointError::Corrupt { .. }) => {
                self.checkpoint = Some(Checkpoint::start_fresh(path.as_ref())?);
                self.recovered_checkpoint = true;
            }
            Err(e) => return Err(e),
        }
        Ok(self)
    }

    /// `true` when [`Batch::with_checkpoint`] found a corrupt file and
    /// restarted cleanly.
    #[must_use]
    pub fn recovered_checkpoint(&self) -> bool {
        self.recovered_checkpoint
    }

    /// Checkpoint lines quarantined on open (checksum seal failed):
    /// their jobs are not trusted and simply re-run this batch. Also
    /// surfaced as the `batch.records_quarantined` telemetry counter.
    #[must_use]
    pub fn quarantined_records(&self) -> usize {
        self.checkpoint.as_ref().map_or(0, Checkpoint::quarantined)
    }

    /// Jobs already completed by the attached checkpoint.
    #[must_use]
    pub fn resumable_count(&self) -> usize {
        let Some(checkpoint) = &self.checkpoint else {
            return 0;
        };
        self.jobs
            .iter()
            .filter(|j| checkpoint.completed(j.fingerprint()).is_some())
            .count()
    }

    /// Runs the batch to completion and returns the report.
    ///
    /// `sink` is invoked once per job, in **completion order** (the
    /// streaming view); the returned report is sorted by job id (the
    /// deterministic view). Opens a root `batch` span on `tel`, one
    /// `job:<id>` child per executed job (absorbed in job order), and
    /// maintains the `batch.jobs_{ok,failed,retried,skipped}` counters.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when a checkpoint record cannot be written
    /// durably; jobs already in flight still drain, and their outcomes
    /// are lost to the checkpoint but not to the sink.
    pub fn run<R: JobRunner>(
        self,
        runner: &Arc<R>,
        tel: &Telemetry,
        mut sink: impl FnMut(&JobRecord),
    ) -> Result<BatchReport, CheckpointError> {
        let Batch {
            jobs,
            options,
            mut checkpoint,
            ..
        } = self;
        let root = tel.span(|| "batch".to_owned());
        root.annotate("jobs", || jobs.len().to_string());
        // Resume integrity: lines the checkpoint quarantined (failed
        // seal) surface in telemetry — their jobs simply re-run below.
        let quarantined = checkpoint.as_ref().map_or(0, Checkpoint::quarantined);
        if quarantined > 0 {
            tel.add("batch.records_quarantined", quarantined as u64);
            root.annotate("records_quarantined", || quarantined.to_string());
        }

        // Partition: checkpointed jobs short-circuit to skipped records;
        // the rest join the work queue with pre-forked telemetry seeds
        // (one per potential attempt — forking must stay on this thread).
        let mut records: Vec<Option<JobRecord>> = Vec::new();
        records.resize_with(jobs.len(), || None);
        let mut pending: Vec<(Job, Vec<Option<TelemetrySeed>>)> = Vec::new();
        for job in jobs {
            if let Some(entry) = checkpoint
                .as_ref()
                .and_then(|cp| cp.completed(job.fingerprint()))
            {
                let record = JobRecord {
                    job: job.id(),
                    spec: job.spec_label().to_owned(),
                    tech: job.tech_label().to_owned(),
                    fingerprint: job.fingerprint(),
                    status: JobStatus::Skipped {
                        prior: entry.outcome.clone(),
                    },
                    attempts: 0,
                    duration_ns: 0,
                    styles: Vec::new(),
                    meets_spec: None,
                    detail: None,
                    flight: Vec::new(),
                };
                tel.incr("batch.jobs_skipped");
                sink(&record);
                let slot = record.job;
                records[slot] = Some(record);
            } else {
                let seeds = (0..=options.retries())
                    .map(|_| tel.fork_seed())
                    .collect::<Vec<_>>();
                pending.push((job, seeds));
            }
        }

        let mut checkpoint_error = None;
        if !pending.is_empty() {
            let workers = options.workers().min(pending.len()).max(1);
            root.annotate("workers", || workers.to_string());
            let slots = pending.len();
            let queue = Mutex::new(std::collections::VecDeque::from(pending));
            let (tx, rx) = mpsc::channel::<(Job, JobExecution)>();
            // Absorb job telemetry in job order after the pool drains,
            // so the batch trace is scheduling-independent.
            let mut job_recordings: Vec<(usize, Recording)> = Vec::new();
            let pool = oasys_pool::Pool::global();
            pool.scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let queue = &queue;
                    let options = &options;
                    scope.spawn(move || loop {
                        let Some((job, seeds)) = queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_front()
                        else {
                            break;
                        };
                        let execution = execute_job(&job, seeds, runner, options);
                        if tx.send((job, execution)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for _ in 0..slots {
                    // The coordinator helps the pool while it waits:
                    // with zero persistent workers (single-core hosts)
                    // the worker loops above run inline right here, and
                    // on busy pools the coordinator adds a hand instead
                    // of sleeping. The short recv timeout only bounds
                    // the re-check interval; results wake it instantly.
                    let received = loop {
                        match rx.try_recv() {
                            Ok(message) => break Some(message),
                            Err(mpsc::TryRecvError::Disconnected) => break None,
                            Err(mpsc::TryRecvError::Empty) => {}
                        }
                        if pool.try_help() {
                            continue;
                        }
                        match rx.recv_timeout(std::time::Duration::from_millis(5)) {
                            Ok(message) => break Some(message),
                            Err(mpsc::RecvTimeoutError::Timeout) => {}
                            Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                        }
                    };
                    let Some((job, mut execution)) = received else {
                        break;
                    };
                    if let Some(recording) = execution.recording.take() {
                        job_recordings.push((job.id(), recording));
                    }
                    let record = JobRecord {
                        job: job.id(),
                        spec: job.spec_label().to_owned(),
                        tech: job.tech_label().to_owned(),
                        fingerprint: job.fingerprint(),
                        status: execution.status,
                        attempts: execution.attempts,
                        duration_ns: execution.duration_ns,
                        styles: execution.styles,
                        meets_spec: execution.meets_spec,
                        detail: execution.detail,
                        flight: execution.flight,
                    };
                    match &record.status {
                        JobStatus::Failed { .. } => tel.incr("batch.jobs_failed"),
                        _ => tel.incr("batch.jobs_ok"),
                    }
                    if execution.retried {
                        tel.incr("batch.jobs_retried");
                    }
                    if execution.stuck {
                        tel.incr("batch.jobs_stuck");
                    }
                    if checkpoint_error.is_none() {
                        if let (Some(cp), Some(outcome)) =
                            (checkpoint.as_mut(), record.status.to_checkpoint())
                        {
                            if let Err(e) =
                                cp.record(record.fingerprint, &outcome, &record.spec, &record.tech)
                            {
                                checkpoint_error = Some(e);
                            }
                        }
                    }
                    sink(&record);
                    let slot = record.job;
                    records[slot] = Some(record);
                }
            });
            job_recordings.sort_by_key(|(id, _)| *id);
            for (_, recording) in &job_recordings {
                tel.absorb(recording);
            }
        }

        let records: Vec<JobRecord> = records
            .into_iter()
            .map(|r| r.expect("every job produced a record"))
            .collect();
        let report = BatchReport { records };
        let counts = report.counts();
        root.annotate("ok", || (counts.ok + counts.infeasible).to_string());
        root.annotate("failed", || counts.failed.to_string());
        root.annotate("skipped", || counts.skipped.to_string());
        match checkpoint_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// How many trailing telemetry records a failed job dumps into its
/// structured record.
const FLIGHT_TAIL_LINES: usize = 16;

fn flight_tail(recording: Option<&Recording>) -> Vec<String> {
    recording.map_or_else(Vec::new, |r| r.tail_lines(FLIGHT_TAIL_LINES))
}

/// Runs one job through its retry loop on a worker thread.
fn execute_job<R: JobRunner>(
    job: &Job,
    seeds: Vec<Option<TelemetrySeed>>,
    runner: &Arc<R>,
    options: &BatchOptions,
) -> JobExecution {
    let start = Instant::now();
    let mut attempts = 0u32;
    let mut retried = false;
    let mut seeds = seeds.into_iter();
    loop {
        attempts += 1;
        let seed = seeds.next().flatten();
        let attempt = run_attempt(job.clone(), seed, Arc::clone(runner), options.timeout());
        let duration_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match attempt {
            AttemptOutcome::Done(Ok(success), recording) => {
                let status = match success.selected {
                    Some((style, area_um2)) => JobStatus::Ok { style, area_um2 },
                    None => JobStatus::Infeasible,
                };
                return JobExecution {
                    status,
                    attempts,
                    duration_ns,
                    styles: success.styles,
                    meets_spec: success.meets_spec,
                    detail: success.detail,
                    retried,
                    stuck: false,
                    recording,
                    flight: Vec::new(),
                };
            }
            AttemptOutcome::Done(Err(failure), recording) => {
                if failure.transient && attempts <= options.retries() {
                    retried = true;
                    std::thread::sleep(options.backoff(attempts));
                    continue;
                }
                let kind = if failure.timed_out {
                    FailureKind::Timeout
                } else {
                    FailureKind::Error
                };
                return JobExecution {
                    status: JobStatus::Failed {
                        kind,
                        message: failure.message,
                    },
                    attempts,
                    duration_ns,
                    styles: Vec::new(),
                    meets_spec: None,
                    detail: None,
                    retried,
                    stuck: false,
                    flight: flight_tail(recording.as_ref()),
                    recording,
                };
            }
            AttemptOutcome::Panicked(message, recording) => {
                return JobExecution {
                    status: JobStatus::Failed {
                        kind: FailureKind::Panic,
                        message,
                    },
                    attempts,
                    duration_ns,
                    styles: Vec::new(),
                    meets_spec: None,
                    detail: None,
                    retried,
                    stuck: false,
                    // A panicked ring may hold unbalanced spans; mine it
                    // for the flight tail but keep it out of the batch
                    // trace.
                    recording: None,
                    flight: flight_tail(recording.as_ref()),
                };
            }
            AttemptOutcome::TimedOut => {
                return JobExecution {
                    status: JobStatus::Failed {
                        kind: FailureKind::Timeout,
                        message: format!(
                            "watchdog: job exceeded twice its {} ms budget without \
                             reaching a deadline checkpoint and was abandoned as stuck",
                            options.timeout().map_or(0, |t| t.as_millis())
                        ),
                    },
                    attempts,
                    duration_ns,
                    styles: Vec::new(),
                    meets_spec: None,
                    detail: None,
                    retried,
                    stuck: true,
                    recording: None,
                    flight: Vec::new(),
                };
            }
        }
    }
}

enum AttemptOutcome {
    /// The runner returned; its telemetry recording rides along (absent
    /// only when the isolation thread could not report).
    Done(Result<JobSuccess, JobFailure>, Option<Recording>),
    /// The runner panicked; the payload message survives, and — because
    /// the telemetry handle lives outside the unwind boundary — so does
    /// the recording, whose tail becomes the job's flight dump.
    Panicked(String, Option<Recording>),
    /// The attempt exceeded its budget and was abandoned.
    TimedOut,
}

/// How often the stuck-job watchdog re-checks its deadline while
/// waiting for an attempt to report. Short enough that an expired
/// watchdog surfaces promptly; long enough to stay off the profile.
const WATCHDOG_SLICE: Duration = Duration::from_millis(25);

/// Runs one attempt on a detached isolation thread, so a panic or a
/// divergence cannot take the worker (or the batch) down with it.
///
/// Cancellation is two-tier: the preferred path is the cooperative
/// [`Deadline`] handed to the runner, which aborts inside the
/// computation at the next checkpoint (plan step boundary, Newton
/// iteration). The stuck-job watchdog — a second [`Deadline`] at
/// **twice** the budget, polled in [`WATCHDOG_SLICE`] intervals — only
/// fires for runners that never reach a deadline checkpoint; it
/// abandons the thread after flagging its cancel token (so even an
/// abandoned attempt stops at its next checkpoint instead of running
/// forever) and the job is reported as *stuck*.
fn run_attempt<R: JobRunner>(
    job: Job,
    seed: Option<TelemetrySeed>,
    runner: Arc<R>,
    timeout: Option<Duration>,
) -> AttemptOutcome {
    let cancel = Arc::new(AtomicBool::new(false));
    let deadline = match timeout {
        Some(budget) => Deadline::within(budget).with_cancel(Arc::clone(&cancel)),
        None => Deadline::none().with_cancel(Arc::clone(&cancel)),
    };
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(format!("oasys-job-{}", job.id()))
        .spawn(move || {
            // The telemetry handle lives OUTSIDE the unwind boundary:
            // when the runner panics, the ring survives and its tail
            // becomes the job's flight dump. A job without a forked seed
            // (untraced batch) still records into a small always-on
            // flight ring.
            let tel = match seed {
                Some(seed) => seed.build(),
                None => Telemetry::flight(),
            };
            let tel_ref = &tel;
            let payload = catch_unwind(AssertUnwindSafe(move || {
                let span = tel_ref.span_display("job:", &job.id());
                span.annotate("spec", || job.spec_label().to_owned());
                span.annotate("tech", || job.tech_label().to_owned());
                let start_ns = tel_ref.clock_ns();
                // Fault plane: an armed `batch.attempt` site fails
                // this attempt before the runner starts, exercising
                // the retry/backoff path.
                let injected = if oasys_faults::armed() {
                    oasys_faults::eval_err("batch.attempt")
                } else {
                    None
                };
                let result = match injected {
                    Some(msg) => Err(JobFailure::transient(format!("fault injected: {msg}"))),
                    None => runner.run(&job, tel_ref, &deadline),
                };
                tel_ref.observe(
                    "batch.job_latency_ns",
                    tel_ref.clock_ns().saturating_sub(start_ns),
                );
                span.annotate("outcome", || {
                    match &result {
                        Ok(s) if s.selected.is_some() => "ok",
                        Ok(_) => "infeasible",
                        Err(_) => "failed",
                    }
                    .to_owned()
                });
                result
            }));
            let _ = tx.send((payload.map_err(panic_message), tel.into_recording()));
        });
    if let Err(e) = spawned {
        return AttemptOutcome::Done(
            Err(JobFailure::transient(format!(
                "could not spawn job thread: {e}"
            ))),
            None,
        );
    }
    let received = match timeout {
        Some(budget) => {
            let watchdog = Deadline::within(budget.saturating_mul(2));
            loop {
                if watchdog.check().is_err() {
                    break Err(mpsc::RecvTimeoutError::Timeout);
                }
                let slice = watchdog.remaining().map_or(WATCHDOG_SLICE, |r| {
                    r.min(WATCHDOG_SLICE).max(Duration::from_millis(1))
                });
                match rx.recv_timeout(slice) {
                    Ok(message) => break Ok(message),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(e @ mpsc::RecvTimeoutError::Disconnected) => break Err(e),
                }
            }
        }
        None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
    };
    match received {
        Ok((Ok(result), recording)) => AttemptOutcome::Done(result, Some(recording)),
        Ok((Err(message), recording)) => AttemptOutcome::Panicked(message, Some(recording)),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The watchdog expired: the runner blew through twice its
            // budget without reaching a deadline checkpoint. Flag the
            // cancel token (so the orphaned thread dies at its next
            // checkpoint) and abandon it as stuck.
            cancel.store(true, Ordering::Relaxed);
            AttemptOutcome::TimedOut
        }
        // catch_unwind forwards every panic, so a dead channel means the
        // thread was killed out from under us — report it as a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            AttemptOutcome::Panicked("job thread terminated without reporting".to_owned(), None)
        }
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}
