//! Batch manifests: the text file that names which specifications to
//! synthesize on which processes, plus optional execution settings.
//!
//! A manifest is the same `key = value` dialect as the specification and
//! technology files. `spec` and `tech` may repeat; the job list is their
//! cross product, in manifest order (specs outer, techs inner):
//!
//! ```text
//! # the paper's Table 2 sweep
//! spec = spec-a.txt
//! spec = spec-b.txt
//! spec = spec-c.txt
//! tech = generic-5um.tech
//! tech = generic-3um.tech
//! tech = generic-1.2um.tech
//! workers    = 3        # optional, defaults to the host parallelism
//! timeout_ms = 30000    # optional per-job wall-clock budget
//! retries    = 2        # optional retry cap for transient failures
//! verify     = false    # optional, default true
//! ```
//!
//! Relative `spec`/`tech` paths resolve against the manifest file's own
//! directory, so a manifest can ship next to its inputs.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One unit of batch work: a specification/technology pairing with the
/// file contents already read, identified by a content fingerprint.
///
/// Holding the *texts* (not just paths) makes jobs self-contained: the
/// worker pool can ship a clone into an isolation thread, the
/// fingerprint cannot drift if a file changes mid-run, and library
/// callers can synthesize specs that never touch a filesystem
/// ([`Job::from_texts`]).
#[derive(Clone, Debug)]
pub struct Job {
    id: usize,
    spec_label: String,
    tech_label: String,
    spec_text: String,
    tech_text: String,
    fingerprint: u64,
}

impl Job {
    /// A job over in-memory spec/tech texts. The labels are what result
    /// records and checkpoints display (for file-based jobs, the paths).
    #[must_use]
    pub fn from_texts(
        id: usize,
        spec_label: impl Into<String>,
        spec_text: impl Into<String>,
        tech_label: impl Into<String>,
        tech_text: impl Into<String>,
    ) -> Self {
        let spec_text = spec_text.into();
        let tech_text = tech_text.into();
        let fingerprint = fingerprint(&spec_text, &tech_text);
        Self {
            id,
            spec_label: spec_label.into(),
            tech_label: tech_label.into(),
            spec_text,
            tech_text,
            fingerprint,
        }
    }

    /// Position of this job in the batch (stable across resumes, since
    /// the job list is a deterministic expansion of the manifest).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Display name of the specification input.
    #[must_use]
    pub fn spec_label(&self) -> &str {
        &self.spec_label
    }

    /// Display name of the technology input.
    #[must_use]
    pub fn tech_label(&self) -> &str {
        &self.tech_label
    }

    /// The specification file contents.
    #[must_use]
    pub fn spec_text(&self) -> &str {
        &self.spec_text
    }

    /// The technology file contents.
    #[must_use]
    pub fn tech_text(&self) -> &str {
        &self.tech_text
    }

    /// Content fingerprint of the (spec, tech) pairing — the identity
    /// checkpoints record. Two jobs whose input *contents* are identical
    /// share a fingerprint even if the files were renamed.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// FNV-1a over both inputs with a separator, so (`"ab"`, `"c"`) and
/// (`"a"`, `"bc"`) cannot collide trivially.
#[must_use]
pub fn fingerprint(spec_text: &str, tech_text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec_text
        .as_bytes()
        .iter()
        .chain(&[0x1f])
        .chain(tech_text.as_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Execution settings a manifest may carry (all optional — the CLI and
/// [`super::BatchOptions`] defaults fill the gaps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManifestSettings {
    /// Worker-pool width.
    pub workers: Option<usize>,
    /// Per-job wall-clock budget.
    pub timeout: Option<Duration>,
    /// Retry cap for transient job failures.
    pub retries: Option<u32>,
    /// Whether each feasible design is re-measured on the simulator.
    pub verify: Option<bool>,
}

/// A parsed batch manifest: the spec and tech inputs plus settings.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    specs: Vec<PathBuf>,
    techs: Vec<PathBuf>,
    settings: ManifestSettings,
}

/// Error raised while reading or expanding a manifest.
#[derive(Debug)]
pub enum ManifestError {
    /// A malformed manifest line (1-based line number and detail).
    Line {
        /// Line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The manifest names no specs or no techs, so the job list is empty.
    Empty,
    /// An input file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Line { line, detail } => {
                write!(f, "invalid manifest at line {line}: {detail}")
            }
            ManifestError::Empty => {
                write!(f, "manifest needs at least one `spec` and one `tech` entry")
            }
            ManifestError::Io { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Parses manifest text. Paths are kept as written; [`Manifest::load`]
    /// additionally resolves them against the manifest's directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Line`] for unknown keys or unparsable values.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut manifest = Manifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ManifestError::Line {
                line: lineno,
                detail: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim().to_lowercase();
            let value = value.trim();
            let bad = |detail: String| ManifestError::Line {
                line: lineno,
                detail,
            };
            match key.as_str() {
                "spec" => manifest.specs.push(PathBuf::from(value)),
                "tech" => manifest.techs.push(PathBuf::from(value)),
                "workers" => {
                    let n: usize = value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        bad(format!(
                            "`workers` must be a positive integer, got `{value}`"
                        ))
                    })?;
                    manifest.settings.workers = Some(n);
                }
                "timeout_ms" => {
                    let ms: u64 = value.parse().map_err(|_| {
                        bad(format!("`timeout_ms` must be an integer, got `{value}`"))
                    })?;
                    manifest.settings.timeout = Some(Duration::from_millis(ms));
                }
                "retries" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|_| bad(format!("`retries` must be an integer, got `{value}`")))?;
                    manifest.settings.retries = Some(n);
                }
                "verify" => {
                    manifest.settings.verify = Some(match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(bad(format!(
                                "`verify` must be `true` or `false`, got `{other}`"
                            )))
                        }
                    });
                }
                other => {
                    return Err(bad(format!("unknown key `{other}`")));
                }
            }
        }
        Ok(manifest)
    }

    /// Reads and parses a manifest file, resolving relative `spec`/`tech`
    /// paths against the manifest's own directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] when the file cannot be read, otherwise the
    /// same failures as [`Manifest::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ManifestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| ManifestError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        let mut manifest = Self::parse(&text)?;
        if let Some(dir) = path.parent() {
            let resolve = |p: &PathBuf| {
                if p.is_relative() {
                    dir.join(p)
                } else {
                    p.clone()
                }
            };
            manifest.specs = manifest.specs.iter().map(resolve).collect();
            manifest.techs = manifest.techs.iter().map(resolve).collect();
        }
        Ok(manifest)
    }

    /// The spec paths, in manifest order.
    #[must_use]
    pub fn specs(&self) -> &[PathBuf] {
        &self.specs
    }

    /// The tech paths, in manifest order.
    #[must_use]
    pub fn techs(&self) -> &[PathBuf] {
        &self.techs
    }

    /// The optional execution settings.
    #[must_use]
    pub fn settings(&self) -> ManifestSettings {
        self.settings
    }

    /// Expands the manifest into its job list: the specs × techs cross
    /// product in manifest order (specs outer, techs inner), each file
    /// read exactly once.
    ///
    /// Unreadable input files fail the expansion — a manifest typo should
    /// surface before any work starts, unlike a *diverging* job, which
    /// fails alone at run time.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Empty`] when the cross product is empty,
    /// [`ManifestError::Io`] when an input file cannot be read.
    pub fn expand(&self) -> Result<Vec<Job>, ManifestError> {
        if self.specs.is_empty() || self.techs.is_empty() {
            return Err(ManifestError::Empty);
        }
        let read = |path: &PathBuf| {
            std::fs::read_to_string(path).map_err(|error| ManifestError::Io {
                path: path.clone(),
                error,
            })
        };
        let spec_texts: Vec<String> = self.specs.iter().map(read).collect::<Result<_, _>>()?;
        let tech_texts: Vec<String> = self.techs.iter().map(read).collect::<Result<_, _>>()?;
        let mut jobs = Vec::with_capacity(self.specs.len() * self.techs.len());
        for (spec_path, spec_text) in self.specs.iter().zip(&spec_texts) {
            for (tech_path, tech_text) in self.techs.iter().zip(&tech_texts) {
                jobs.push(Job::from_texts(
                    jobs.len(),
                    spec_path.display().to_string(),
                    spec_text.clone(),
                    tech_path.display().to_string(),
                    tech_text.clone(),
                ));
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inputs_and_settings() {
        let m = Manifest::parse(
            "# sweep\nspec = a.txt\nspec = b.txt\ntech = p.tech\nworkers = 3\n\
             timeout_ms = 250\nretries = 2\nverify = false\n",
        )
        .unwrap();
        assert_eq!(m.specs().len(), 2);
        assert_eq!(m.techs().len(), 1);
        assert_eq!(m.settings().workers, Some(3));
        assert_eq!(m.settings().timeout, Some(Duration::from_millis(250)));
        assert_eq!(m.settings().retries, Some(2));
        assert_eq!(m.settings().verify, Some(false));
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        let err = Manifest::parse("bogus = 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown key `bogus`"), "{err}");
        let err = Manifest::parse("spec = a\nworkers = 0\n").unwrap_err();
        assert!(err.to_string().contains("workers"), "{err}");
        let err = Manifest::parse("verify = maybe\n").unwrap_err();
        assert!(err.to_string().contains("verify"), "{err}");
        let err = Manifest::parse("just a line\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn empty_cross_product_is_an_error() {
        let m = Manifest::parse("spec = a.txt\n").unwrap();
        assert!(matches!(m.expand(), Err(ManifestError::Empty)));
    }

    #[test]
    fn fingerprints_depend_on_content_not_labels() {
        let a = Job::from_texts(0, "x.txt", "gain = 1", "p.tech", "vdd = 5");
        let b = Job::from_texts(7, "renamed.txt", "gain = 1", "moved.tech", "vdd = 5");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Job::from_texts(0, "x.txt", "gain = 2", "p.tech", "vdd = 5");
        assert_ne!(a.fingerprint(), c.fingerprint());
        // The separator keeps boundary shifts from colliding.
        let d = Job::from_texts(0, "x", "gain = 1v", "p", "dd = 5");
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
