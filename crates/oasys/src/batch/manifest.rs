//! Batch manifests: the text file that names which specifications to
//! synthesize on which processes, plus optional execution settings.
//!
//! A manifest is the same `key = value` dialect as the specification and
//! technology files. `spec` and `tech` may repeat; the job list is their
//! cross product, in manifest order (specs outer, techs inner):
//!
//! ```text
//! # the paper's Table 2 sweep
//! spec = spec-a.txt
//! spec = spec-b.txt
//! spec = spec-c.txt
//! tech = generic-5um.tech
//! tech = generic-3um.tech
//! tech = generic-1.2um.tech
//! workers    = 3        # optional, defaults to the host parallelism
//! timeout_ms = 30000    # optional per-job wall-clock budget
//! retries    = 2        # optional retry cap for transient failures
//! verify     = false    # optional, default true
//! ```
//!
//! Relative `spec`/`tech` paths resolve against the manifest file's own
//! directory, so a manifest can ship next to its inputs.
//!
//! # Dataset directives
//!
//! `oasys dataset` reads the same manifests plus *sampling directives*
//! (ignored by plain `oasys batch` expansion; see
//! [`crate::dataset`] for how they expand):
//!
//! ```text
//! sample.count      = 200        # random spec draws (seeded, reproducible)
//! sample.seed       = 42         # RNG seed, default 1
//! sample.dc_gain_db = 55..80     # uniform range for a spec field
//! sample.load_pf    = 2..20
//! corners           = slow,typ,fast
//! corner.temps_c    = -40,27,85
//! corner.supplies   = 0.9,1.0,1.1
//! mc.samples        = 3          # Monte-Carlo instances per design point
//! mc.avt_mv_um      = 15         # Pelgrom A_vt, mV·µm
//! mc.akp_pct_um     = 2          # Pelgrom A_kp, %·µm
//! ```

use oasys_process::CornerSpeed;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One unit of batch work: a specification/technology pairing with the
/// file contents already read, identified by a content fingerprint.
///
/// Holding the *texts* (not just paths) makes jobs self-contained: the
/// worker pool can ship a clone into an isolation thread, the
/// fingerprint cannot drift if a file changes mid-run, and library
/// callers can synthesize specs that never touch a filesystem
/// ([`Job::from_texts`]).
#[derive(Clone, Debug)]
pub struct Job {
    id: usize,
    spec_label: String,
    tech_label: String,
    spec_text: String,
    tech_text: String,
    fingerprint: u64,
}

impl Job {
    /// A job over in-memory spec/tech texts. The labels are what result
    /// records and checkpoints display (for file-based jobs, the paths).
    #[must_use]
    pub fn from_texts(
        id: usize,
        spec_label: impl Into<String>,
        spec_text: impl Into<String>,
        tech_label: impl Into<String>,
        tech_text: impl Into<String>,
    ) -> Self {
        let spec_text = spec_text.into();
        let tech_text = tech_text.into();
        let fingerprint = fingerprint(&spec_text, &tech_text);
        Self {
            id,
            spec_label: spec_label.into(),
            tech_label: tech_label.into(),
            spec_text,
            tech_text,
            fingerprint,
        }
    }

    /// Position of this job in the batch (stable across resumes, since
    /// the job list is a deterministic expansion of the manifest).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Display name of the specification input.
    #[must_use]
    pub fn spec_label(&self) -> &str {
        &self.spec_label
    }

    /// Display name of the technology input.
    #[must_use]
    pub fn tech_label(&self) -> &str {
        &self.tech_label
    }

    /// The specification file contents.
    #[must_use]
    pub fn spec_text(&self) -> &str {
        &self.spec_text
    }

    /// The technology file contents.
    #[must_use]
    pub fn tech_text(&self) -> &str {
        &self.tech_text
    }

    /// Content fingerprint of the (spec, tech) pairing — the identity
    /// checkpoints record. Two jobs whose input *contents* are identical
    /// share a fingerprint even if the files were renamed.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Returns the job with `salt` folded into its fingerprint (via a
    /// SplitMix64 finalizer, so nearby salts land far apart). Dataset
    /// generation uses this to keep Monte-Carlo siblings — identical
    /// spec/tech texts run under different mismatch seeds — from
    /// colliding in checkpoints. A salt of zero leaves the fingerprint
    /// untouched.
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        if salt != 0 {
            self.fingerprint ^= mix64(salt);
        }
        self
    }
}

/// SplitMix64 finalizer: mixes a word so consecutive salts decorrelate.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over both inputs with a separator, so (`"ab"`, `"c"`) and
/// (`"a"`, `"bc"`) cannot collide trivially.
#[must_use]
pub fn fingerprint(spec_text: &str, tech_text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec_text
        .as_bytes()
        .iter()
        .chain(&[0x1f])
        .chain(tech_text.as_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Execution settings a manifest may carry (all optional — the CLI and
/// [`super::BatchOptions`] defaults fill the gaps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManifestSettings {
    /// Worker-pool width.
    pub workers: Option<usize>,
    /// Per-job wall-clock budget.
    pub timeout: Option<Duration>,
    /// Retry cap for transient job failures.
    pub retries: Option<u32>,
    /// Whether each feasible design is re-measured on the simulator.
    pub verify: Option<bool>,
}

/// The spec-file keys a `sample.<field>` range may target (the same
/// vocabulary [`crate::specfile::parse`] accepts).
pub const SAMPLABLE_SPEC_FIELDS: [&str; 10] = [
    "dc_gain_db",
    "unity_gain_mhz",
    "phase_margin_deg",
    "load_pf",
    "slew_rate_v_per_us",
    "output_swing_v",
    "max_offset_mv",
    "max_power_mw",
    "min_cmrr_db",
    "max_noise_nv_rthz",
];

/// Dataset-generation directives a manifest may carry (`sample.*`,
/// `corners`/`corner.*`, `mc.*`). Plain batch expansion ignores them;
/// [`crate::dataset`] expands them into the sampled job space.
#[derive(Clone, Debug, PartialEq)]
pub struct Sampling {
    /// Number of random spec draws (`sample.count`); `None` means the
    /// manifest's literal `spec` entries are used as-is.
    pub count: Option<usize>,
    /// RNG seed for the draws (`sample.seed`).
    pub seed: u64,
    /// Per-field uniform ranges, in manifest order: `(field, lo, hi)`.
    pub ranges: Vec<(String, f64, f64)>,
    /// Wafer speed corners to sweep (`corners`).
    pub corners: Vec<CornerSpeed>,
    /// Junction temperatures to sweep, °C (`corner.temps_c`).
    pub temps_c: Vec<f64>,
    /// Supply scale factors to sweep (`corner.supplies`).
    pub supplies: Vec<f64>,
    /// Monte-Carlo instances per design point (`mc.samples`).
    pub mc_samples: usize,
    /// Pelgrom threshold coefficient `A_vt`, mV·µm (`mc.avt_mv_um`).
    pub mc_avt_mv_um: f64,
    /// Pelgrom transconductance coefficient `A_kp`, %·µm
    /// (`mc.akp_pct_um`).
    pub mc_akp_pct_um: f64,
}

impl Default for Sampling {
    fn default() -> Self {
        Self {
            count: None,
            seed: 1,
            ranges: Vec::new(),
            corners: vec![CornerSpeed::Typ],
            temps_c: vec![oasys_process::corners::NOMINAL_TEMP_C],
            supplies: vec![1.0],
            mc_samples: 1,
            mc_avt_mv_um: 0.0,
            mc_akp_pct_um: 0.0,
        }
    }
}

impl Sampling {
    /// Dataset jobs per accepted specification: corners × Monte-Carlo
    /// instances (the tech multiplier comes from the manifest's `tech`
    /// entries).
    #[must_use]
    pub fn points_per_spec(&self) -> usize {
        self.corners.len() * self.temps_c.len() * self.supplies.len() * self.mc_samples
    }
}

/// A parsed batch manifest: the spec and tech inputs plus settings.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    specs: Vec<PathBuf>,
    techs: Vec<PathBuf>,
    settings: ManifestSettings,
    sampling: Sampling,
}

/// Error raised while reading or expanding a manifest.
#[derive(Debug)]
pub enum ManifestError {
    /// A malformed manifest line (1-based line number and detail).
    Line {
        /// Line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The manifest names no specs or no techs, so the job list is empty.
    Empty,
    /// An input file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Line { line, detail } => {
                write!(f, "invalid manifest at line {line}: {detail}")
            }
            ManifestError::Empty => {
                write!(f, "manifest needs at least one `spec` and one `tech` entry")
            }
            ManifestError::Io { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Parses manifest text. Paths are kept as written; [`Manifest::load`]
    /// additionally resolves them against the manifest's directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Line`] for unknown keys or unparsable values.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut manifest = Manifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ManifestError::Line {
                line: lineno,
                detail: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim().to_lowercase();
            let value = value.trim();
            let bad = |detail: String| ManifestError::Line {
                line: lineno,
                detail,
            };
            match key.as_str() {
                "spec" => manifest.specs.push(PathBuf::from(value)),
                "tech" => manifest.techs.push(PathBuf::from(value)),
                "workers" => {
                    let n: usize = value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        bad(format!(
                            "`workers` must be a positive integer, got `{value}`"
                        ))
                    })?;
                    manifest.settings.workers = Some(n);
                }
                "timeout_ms" => {
                    let ms: u64 = value.parse().map_err(|_| {
                        bad(format!("`timeout_ms` must be an integer, got `{value}`"))
                    })?;
                    manifest.settings.timeout = Some(Duration::from_millis(ms));
                }
                "retries" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|_| bad(format!("`retries` must be an integer, got `{value}`")))?;
                    manifest.settings.retries = Some(n);
                }
                "verify" => {
                    manifest.settings.verify = Some(match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(bad(format!(
                                "`verify` must be `true` or `false`, got `{other}`"
                            )))
                        }
                    });
                }
                "sample.count" => {
                    let n: usize = value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        bad(format!(
                            "`sample.count` must be a positive integer, got `{value}`"
                        ))
                    })?;
                    manifest.sampling.count = Some(n);
                }
                "sample.seed" => {
                    let seed: u64 = value.parse().map_err(|_| {
                        bad(format!("`sample.seed` must be an integer, got `{value}`"))
                    })?;
                    manifest.sampling.seed = seed;
                }
                "corners" => {
                    let mut corners = Vec::new();
                    for token in value.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                        let speed = CornerSpeed::from_name(token).ok_or_else(|| {
                            bad(format!(
                                "`corners` entries must be slow/typ/fast, got `{token}`"
                            ))
                        })?;
                        if !corners.contains(&speed) {
                            corners.push(speed);
                        }
                    }
                    if corners.is_empty() {
                        return Err(bad("`corners` needs at least one entry".to_owned()));
                    }
                    manifest.sampling.corners = corners;
                }
                "corner.temps_c" => {
                    manifest.sampling.temps_c =
                        parse_number_list(value, "corner.temps_c", f64::is_finite).map_err(bad)?;
                }
                "corner.supplies" => {
                    manifest.sampling.supplies =
                        parse_number_list(value, "corner.supplies", |v| v.is_finite() && v > 0.0)
                            .map_err(bad)?;
                }
                "mc.samples" => {
                    let n: usize = value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        bad(format!(
                            "`mc.samples` must be a positive integer, got `{value}`"
                        ))
                    })?;
                    manifest.sampling.mc_samples = n;
                }
                "mc.avt_mv_um" => {
                    manifest.sampling.mc_avt_mv_um =
                        parse_non_negative(value, "mc.avt_mv_um").map_err(bad)?;
                }
                "mc.akp_pct_um" => {
                    manifest.sampling.mc_akp_pct_um =
                        parse_non_negative(value, "mc.akp_pct_um").map_err(bad)?;
                }
                other => {
                    if let Some(field) = other.strip_prefix("sample.") {
                        if !SAMPLABLE_SPEC_FIELDS.contains(&field) {
                            return Err(bad(format!(
                                "`sample.{field}` is not a spec field (expected one of {})",
                                SAMPLABLE_SPEC_FIELDS.join(", ")
                            )));
                        }
                        let (lo, hi) = parse_range(value, other).map_err(bad)?;
                        manifest.sampling.ranges.push((field.to_owned(), lo, hi));
                        continue;
                    }
                    return Err(bad(format!("unknown key `{other}`")));
                }
            }
        }
        if !manifest.sampling.ranges.is_empty() && manifest.sampling.count.is_none() {
            return Err(ManifestError::Line {
                line: text.lines().count(),
                detail: "`sample.<field>` ranges require `sample.count`".to_owned(),
            });
        }
        Ok(manifest)
    }

    /// Reads and parses a manifest file, resolving relative `spec`/`tech`
    /// paths against the manifest's own directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] when the file cannot be read, otherwise the
    /// same failures as [`Manifest::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ManifestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| ManifestError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        let mut manifest = Self::parse(&text)?;
        if let Some(dir) = path.parent() {
            let resolve = |p: &PathBuf| {
                if p.is_relative() {
                    dir.join(p)
                } else {
                    p.clone()
                }
            };
            manifest.specs = manifest.specs.iter().map(resolve).collect();
            manifest.techs = manifest.techs.iter().map(resolve).collect();
        }
        Ok(manifest)
    }

    /// The spec paths, in manifest order.
    #[must_use]
    pub fn specs(&self) -> &[PathBuf] {
        &self.specs
    }

    /// The tech paths, in manifest order.
    #[must_use]
    pub fn techs(&self) -> &[PathBuf] {
        &self.techs
    }

    /// The optional execution settings.
    #[must_use]
    pub fn settings(&self) -> ManifestSettings {
        self.settings
    }

    /// The dataset-generation directives (defaults when the manifest
    /// carries none).
    #[must_use]
    pub fn sampling(&self) -> &Sampling {
        &self.sampling
    }

    /// Expands the manifest into its job list: the specs × techs cross
    /// product in manifest order (specs outer, techs inner), each file
    /// read exactly once.
    ///
    /// Unreadable input files fail the expansion — a manifest typo should
    /// surface before any work starts, unlike a *diverging* job, which
    /// fails alone at run time.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Empty`] when the cross product is empty,
    /// [`ManifestError::Io`] when an input file cannot be read.
    pub fn expand(&self) -> Result<Vec<Job>, ManifestError> {
        if self.specs.is_empty() || self.techs.is_empty() {
            return Err(ManifestError::Empty);
        }
        let read = |path: &PathBuf| {
            std::fs::read_to_string(path).map_err(|error| ManifestError::Io {
                path: path.clone(),
                error,
            })
        };
        let spec_texts: Vec<String> = self.specs.iter().map(read).collect::<Result<_, _>>()?;
        let tech_texts: Vec<String> = self.techs.iter().map(read).collect::<Result<_, _>>()?;
        let mut jobs = Vec::with_capacity(self.specs.len() * self.techs.len());
        for (spec_path, spec_text) in self.specs.iter().zip(&spec_texts) {
            for (tech_path, tech_text) in self.techs.iter().zip(&tech_texts) {
                jobs.push(Job::from_texts(
                    jobs.len(),
                    spec_path.display().to_string(),
                    spec_text.clone(),
                    tech_path.display().to_string(),
                    tech_text.clone(),
                ));
            }
        }
        Ok(jobs)
    }
}

/// Parses a `lo..hi` inclusive range of finite numbers with `lo <= hi`.
fn parse_range(value: &str, key: &str) -> Result<(f64, f64), String> {
    let parsed = value.split_once("..").and_then(|(lo, hi)| {
        let lo: f64 = lo.trim().parse().ok()?;
        let hi: f64 = hi.trim().parse().ok()?;
        (lo.is_finite() && hi.is_finite() && lo <= hi).then_some((lo, hi))
    });
    parsed.ok_or_else(|| format!("`{key}` must be a `lo..hi` range with lo <= hi, got `{value}`"))
}

/// Parses a non-empty comma-separated list of numbers, each accepted by
/// `valid`.
fn parse_number_list(
    value: &str,
    key: &str,
    valid: impl Fn(f64) -> bool,
) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for token in value.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let v: f64 = token
            .parse()
            .ok()
            .filter(|&v| valid(v))
            .ok_or_else(|| format!("`{key}` has an invalid entry `{token}`"))?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("`{key}` needs at least one entry"));
    }
    Ok(out)
}

/// Parses a finite, non-negative number.
fn parse_non_negative(value: &str, key: &str) -> Result<f64, String> {
    value
        .parse()
        .ok()
        .filter(|&v: &f64| v.is_finite() && v >= 0.0)
        .ok_or_else(|| format!("`{key}` must be a non-negative number, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inputs_and_settings() {
        let m = Manifest::parse(
            "# sweep\nspec = a.txt\nspec = b.txt\ntech = p.tech\nworkers = 3\n\
             timeout_ms = 250\nretries = 2\nverify = false\n",
        )
        .unwrap();
        assert_eq!(m.specs().len(), 2);
        assert_eq!(m.techs().len(), 1);
        assert_eq!(m.settings().workers, Some(3));
        assert_eq!(m.settings().timeout, Some(Duration::from_millis(250)));
        assert_eq!(m.settings().retries, Some(2));
        assert_eq!(m.settings().verify, Some(false));
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        let err = Manifest::parse("bogus = 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown key `bogus`"), "{err}");
        let err = Manifest::parse("spec = a\nworkers = 0\n").unwrap_err();
        assert!(err.to_string().contains("workers"), "{err}");
        let err = Manifest::parse("verify = maybe\n").unwrap_err();
        assert!(err.to_string().contains("verify"), "{err}");
        let err = Manifest::parse("just a line\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn empty_cross_product_is_an_error() {
        let m = Manifest::parse("spec = a.txt\n").unwrap();
        assert!(matches!(m.expand(), Err(ManifestError::Empty)));
    }

    #[test]
    fn parses_sampling_directives() {
        let m = Manifest::parse(
            "spec = a.txt\ntech = p.tech\nsample.count = 100\nsample.seed = 7\n\
             sample.dc_gain_db = 55..80\nsample.load_pf = 2..20\n\
             corners = slow, typ, fast\ncorner.temps_c = -40, 27, 85\n\
             corner.supplies = 0.9,1.0,1.1\nmc.samples = 3\nmc.avt_mv_um = 15\n\
             mc.akp_pct_um = 2\n",
        )
        .unwrap();
        let s = m.sampling();
        assert_eq!(s.count, Some(100));
        assert_eq!(s.seed, 7);
        assert_eq!(
            s.ranges,
            vec![
                ("dc_gain_db".to_owned(), 55.0, 80.0),
                ("load_pf".to_owned(), 2.0, 20.0)
            ]
        );
        assert_eq!(
            s.corners,
            vec![CornerSpeed::Slow, CornerSpeed::Typ, CornerSpeed::Fast]
        );
        assert_eq!(s.temps_c, vec![-40.0, 27.0, 85.0]);
        assert_eq!(s.supplies, vec![0.9, 1.0, 1.1]);
        assert_eq!(s.mc_samples, 3);
        assert_eq!(s.points_per_spec(), 3 * 3 * 3 * 3);
    }

    #[test]
    fn sampling_defaults_cover_the_nominal_point() {
        let m = Manifest::parse("spec = a.txt\ntech = p.tech\n").unwrap();
        let s = m.sampling();
        assert_eq!(s.count, None);
        assert_eq!(s.corners, vec![CornerSpeed::Typ]);
        assert_eq!(s.points_per_spec(), 1);
    }

    #[test]
    fn rejects_bad_sampling_directives() {
        let err = Manifest::parse("sample.count = 0\n").unwrap_err();
        assert!(err.to_string().contains("sample.count"), "{err}");
        let err = Manifest::parse("sample.bogus_field = 1..2\n").unwrap_err();
        assert!(err.to_string().contains("not a spec field"), "{err}");
        let err = Manifest::parse("sample.load_pf = 20..2\n").unwrap_err();
        assert!(err.to_string().contains("lo <= hi"), "{err}");
        let err = Manifest::parse("corners = medium\n").unwrap_err();
        assert!(err.to_string().contains("slow/typ/fast"), "{err}");
        let err = Manifest::parse("corner.supplies = -1\n").unwrap_err();
        assert!(err.to_string().contains("corner.supplies"), "{err}");
        // A range without a count can never be drawn from.
        let err = Manifest::parse("sample.load_pf = 2..20\n").unwrap_err();
        assert!(err.to_string().contains("require `sample.count`"), "{err}");
    }

    #[test]
    fn salt_perturbs_fingerprints_deterministically() {
        let base = Job::from_texts(0, "x", "gain = 1", "p", "vdd = 5");
        let a = base.clone().with_salt(1);
        let b = base.clone().with_salt(1);
        let c = base.clone().with_salt(2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), base.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(base.clone().with_salt(0).fingerprint(), base.fingerprint());
    }

    #[test]
    fn fingerprints_depend_on_content_not_labels() {
        let a = Job::from_texts(0, "x.txt", "gain = 1", "p.tech", "vdd = 5");
        let b = Job::from_texts(7, "renamed.txt", "gain = 1", "moved.tech", "vdd = 5");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Job::from_texts(0, "x.txt", "gain = 2", "p.tech", "vdd = 5");
        assert_ne!(a.fingerprint(), c.fingerprint());
        // The separator keeps boundary shifts from colliding.
        let d = Job::from_texts(0, "x", "gain = 1v", "p", "dd = 5");
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
