//! The production [`JobRunner`]: full OASYS synthesis per job, with one
//! shared, bounded, fingerprint-namespaced [`MemoCache`].

use super::manifest::{fingerprint, Job};
use super::runner::{JobFailure, JobRunner, JobSuccess, StyleEntry};
use crate::datasheet::Datasheet;
use crate::synth::synthesize_with_cache;
use crate::verify::verify_with;
use crate::SearchOptions;
use oasys_faults::Deadline;
use oasys_plan::MemoCache;
use oasys_telemetry::Telemetry;
use std::sync::Arc;

/// Default capacity of the shared sub-block design cache: generous for
/// any realistic sweep (the bundled 3×3 sweep caches a few dozen
/// designs) while bounding the memory of a long-lived server.
pub const DEFAULT_CACHE_ENTRIES: usize = 4096;

/// Runs each job through spec/tech parsing, breadth-first style search,
/// and (optionally) simulator verification of the winner.
///
/// Sub-block designs are memoized in **one shared, bounded LRU**
/// [`MemoCache`]: cache keys are namespaced by the technology text's
/// fingerprint (see [`SearchOptions::with_cache_namespace`]), so jobs on
/// the same process share hits across the whole sweep — and across
/// requests, when a resident server keeps one runner alive — while
/// different processes can never serve each other's entries. The
/// capacity bound ([`SynthRunner::with_cache_entries`]) keeps a
/// process-lifetime cache from growing without limit; the least
/// recently used design is evicted on overflow.
///
/// All failure modes here are deterministic (parse errors, simulator
/// non-convergence), so this runner never reports a transient failure;
/// "no style fits" is a definitive [`JobSuccess::infeasible`] answer,
/// not a failure at all.
pub struct SynthRunner {
    search: SearchOptions,
    verify: bool,
    cache: Arc<MemoCache>,
}

impl Default for SynthRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SynthRunner {
    /// A runner with default search options, verification enabled, and
    /// a [`DEFAULT_CACHE_ENTRIES`]-entry shared cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            search: SearchOptions::default(),
            verify: true,
            cache: Arc::new(MemoCache::bounded(DEFAULT_CACHE_ENTRIES)),
        }
    }

    /// Sets the style-search options every job runs with.
    #[must_use]
    pub fn with_search(mut self, search: SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Enables or disables post-synthesis verification.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Replaces the shared cache with a bounded one holding at most
    /// `entries` designs (at least one).
    #[must_use]
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache = Arc::new(MemoCache::bounded(entries));
        self
    }

    /// The shared sub-block design cache (hit/miss/eviction counters
    /// included — a server's metrics endpoint reads them from here).
    #[must_use]
    pub fn cache(&self) -> &MemoCache {
        &self.cache
    }
}

impl JobRunner for SynthRunner {
    fn run(
        &self,
        job: &Job,
        tel: &Telemetry,
        deadline: &Deadline,
    ) -> Result<JobSuccess, JobFailure> {
        let spec = crate::specfile::parse(job.spec_text())
            .map_err(|e| JobFailure::permanent(format!("spec {}: {e}", job.spec_label())))?;
        let process = oasys_process::techfile::parse(job.tech_text())
            .map_err(|e| JobFailure::permanent(format!("tech {}: {e}", job.tech_label())))?;
        let search = self
            .search
            .clone()
            .with_deadline(deadline.clone())
            .with_cache_namespace(format!("{:016x}", fingerprint("", job.tech_text())));
        match synthesize_with_cache(&spec, &process, &search, tel, &self.cache) {
            Ok(synthesis) => {
                let styles = synthesis
                    .outcomes()
                    .iter()
                    .map(|outcome| StyleEntry {
                        style: outcome.style().to_string(),
                        area_um2: outcome.design().map(|d| d.area().total_um2()),
                        devices: outcome
                            .design()
                            .map(crate::styles::OpAmpDesign::device_count),
                        notes: outcome
                            .design()
                            .map(|d| d.notes().to_vec())
                            .unwrap_or_default(),
                        reason: outcome.rejection(),
                    })
                    .collect();
                let design = synthesis.selected();
                let mut success =
                    JobSuccess::feasible(design.style().to_string(), design.area().total_um2())
                        .with_styles(styles);
                if self.verify {
                    let verification = verify_with(design, &process, spec.load().farads(), tel)
                        .map_err(|e| JobFailure::permanent(format!("verification failed: {e}")))?;
                    let sheet = Datasheet::new(
                        format!("{} × {}", job.spec_label(), job.tech_label()),
                        &spec,
                        design.predicted(),
                        Some(&verification.measured),
                    );
                    success = success.with_meets_spec(sheet.all_measured_pass());
                }
                Ok(success)
            }
            Err(e) => {
                // When the deadline tripped mid-search, the rejections
                // are an artifact of the abort, not a verdict on the
                // spec — report a timeout instead of "infeasible".
                if let Err(exceeded) = deadline.check() {
                    return Err(JobFailure::timed_out(format!(
                        "synthesis of {} × {} aborted: {exceeded}",
                        job.spec_label(),
                        job.tech_label()
                    )));
                }
                let styles = e
                    .rejections()
                    .iter()
                    .map(|(style, reason)| StyleEntry {
                        style: style.to_string(),
                        area_um2: None,
                        devices: None,
                        notes: Vec::new(),
                        reason: Some(reason.clone()),
                    })
                    .collect();
                Ok(JobSuccess::infeasible().with_styles(styles))
            }
        }
    }
}
