//! The production [`JobRunner`]: full OASYS synthesis per job, with a
//! shared per-technology [`MemoCache`].

use super::manifest::{fingerprint, Job};
use super::runner::{JobFailure, JobRunner, JobSuccess, StyleEntry};
use crate::datasheet::Datasheet;
use crate::synth::synthesize_with_cache;
use crate::verify::verify_with;
use crate::SearchOptions;
use oasys_faults::Deadline;
use oasys_plan::MemoCache;
use oasys_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Runs each job through spec/tech parsing, breadth-first style search,
/// and (optionally) simulator verification of the winner.
///
/// Sub-block designs are memoized in one [`MemoCache`] **per distinct
/// technology text** — cache keys assume a fixed process, so jobs on the
/// same process share hits across the whole sweep while different
/// processes stay isolated.
///
/// All failure modes here are deterministic (parse errors, simulator
/// non-convergence), so this runner never reports a transient failure;
/// "no style fits" is a definitive [`JobSuccess::infeasible`] answer,
/// not a failure at all.
pub struct SynthRunner {
    search: SearchOptions,
    verify: bool,
    caches: Mutex<HashMap<u64, Arc<MemoCache>>>,
}

impl Default for SynthRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SynthRunner {
    /// A runner with default search options and verification enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            search: SearchOptions::default(),
            verify: true,
            caches: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the style-search options every job runs with.
    #[must_use]
    pub fn with_search(mut self, search: SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Enables or disables post-synthesis verification.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    fn cache_for(&self, tech_text: &str) -> Arc<MemoCache> {
        let key = fingerprint("", tech_text);
        Arc::clone(
            self.caches
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(key)
                .or_insert_with(|| Arc::new(MemoCache::new())),
        )
    }
}

impl JobRunner for SynthRunner {
    fn run(
        &self,
        job: &Job,
        tel: &Telemetry,
        deadline: &Deadline,
    ) -> Result<JobSuccess, JobFailure> {
        let spec = crate::specfile::parse(job.spec_text())
            .map_err(|e| JobFailure::permanent(format!("spec {}: {e}", job.spec_label())))?;
        let process = oasys_process::techfile::parse(job.tech_text())
            .map_err(|e| JobFailure::permanent(format!("tech {}: {e}", job.tech_label())))?;
        let cache = self.cache_for(job.tech_text());
        let search = self.search.clone().with_deadline(deadline.clone());
        match synthesize_with_cache(&spec, &process, &search, tel, &cache) {
            Ok(synthesis) => {
                let styles = synthesis
                    .outcomes()
                    .iter()
                    .map(|outcome| StyleEntry {
                        style: outcome.style().to_string(),
                        area_um2: outcome.design().map(|d| d.area().total_um2()),
                        devices: outcome
                            .design()
                            .map(crate::styles::OpAmpDesign::device_count),
                        notes: outcome
                            .design()
                            .map(|d| d.notes().to_vec())
                            .unwrap_or_default(),
                        reason: outcome.rejection(),
                    })
                    .collect();
                let design = synthesis.selected();
                let mut success =
                    JobSuccess::feasible(design.style().to_string(), design.area().total_um2())
                        .with_styles(styles);
                if self.verify {
                    let verification = verify_with(design, &process, spec.load().farads(), tel)
                        .map_err(|e| JobFailure::permanent(format!("verification failed: {e}")))?;
                    let sheet = Datasheet::new(
                        format!("{} × {}", job.spec_label(), job.tech_label()),
                        &spec,
                        design.predicted(),
                        Some(&verification.measured),
                    );
                    success = success.with_meets_spec(sheet.all_measured_pass());
                }
                Ok(success)
            }
            Err(e) => {
                // When the deadline tripped mid-search, the rejections
                // are an artifact of the abort, not a verdict on the
                // spec — report a timeout instead of "infeasible".
                if let Err(exceeded) = deadline.check() {
                    return Err(JobFailure::timed_out(format!(
                        "synthesis of {} × {} aborted: {exceeded}",
                        job.spec_label(),
                        job.tech_label()
                    )));
                }
                let styles = e
                    .rejections()
                    .iter()
                    .map(|(style, reason)| StyleEntry {
                        style: style.to_string(),
                        area_um2: None,
                        devices: None,
                        notes: Vec::new(),
                        reason: Some(reason.clone()),
                    })
                    .collect();
                Ok(JobSuccess::infeasible().with_styles(styles))
            }
        }
    }
}
