//! The two-stage unbuffered, Miller-compensated op-amp style (the paper's
//! Figure 4 template).
//!
//! Template: NMOS differential pair with PMOS mirror load (first stage),
//! PMOS common-source driver with NMOS mirror sink (second stage), NMOS
//! tail mirror, resistor bias branches, and the Miller compensation
//! capacitor. Optional elements that patch rules introduce, reproducing
//! the paper's case-C behaviour: a cascoded first-stage load and tail
//! (*"OASYS cascoded the input current bias and output load mirror"*), a
//! gain-partition skew toward the cascoded stage, and a level shifter
//! between the stages (*"inserted a level shifter to match the output
//! voltage of the differential pair to the input voltage of the
//! transconductance amplifier"*).
//!
//! The gain-partition heuristic is the paper's own: *"One workable initial
//! heuristic is simply to assign the square root of the gain to each
//! stage."*

use super::{run_style, OpAmpDesign, OpAmpStyle, StyleDef, StyleError, StyleState};
use crate::datasheet::Predicted;
use crate::spec::OpAmpSpec;
use oasys_blocks::area::AreaEstimate;
use oasys_blocks::compensation::{Compensation, CompensationSpec};
use oasys_blocks::diffpair::{DiffPair, DiffPairSpec};
use oasys_blocks::gainstage::{GainStage, GainStageSpec, GainStageStyle};
use oasys_blocks::levelshift::{LevelShiftSpec, LevelShifter};
use oasys_blocks::mirror::{CurrentMirror, MirrorSpec, MirrorStyle};
use oasys_netlist::Circuit;
use oasys_plan::{
    CacheKey, DesignContext, Expr, Interval, PatchAction, PerfRelation, Plan, StepOutcome,
};
use oasys_process::{Polarity, Process};
use oasys_telemetry::{sym2, Sym, Telemetry};
use oasys_units::Dimension;
use std::sync::OnceLock;

/// Longest channel, in multiples of the process minimum.
const MAX_L_FACTOR: f64 = 4.0;
/// Initial overdrive targets, V.
const VOV1_INIT: f64 = 0.20;
const VOV2: f64 = 0.25;
/// Compensation capacitor as a fraction of the load.
const CC_FACTOR: f64 = 0.3;
/// Design the gain with this safety factor over the spec.
const GAIN_MARGIN: f64 = 2.0;
/// Gain-partition skew applied when the first stage is cascoded (the
/// paper: "the gain partition is skewed to place more gain in the
/// cascoded stage").
const CASCODE_SKEW: f64 = 2.0;
/// Largest tolerable DC mismatch between the stages before a level
/// shifter is inserted, V.
const DC_MATCH_TOL: f64 = 0.3;
/// Sheet resistance assumed for bias resistors (a serpentine well
/// resistor), Ω/square.
const BIAS_SHEET_OHMS: f64 = 10_000.0;

/// Empty annotation list (the builder cannot infer element types from `[]`).
const NONE: [&str; 0] = [];

pub(super) struct State<'a> {
    spec: OpAmpSpec,
    process: Process,
    /// The invoking design context: sub-block design steps record
    /// `block:<level>` spans and memoize through it.
    ctx: DesignContext<'a>,
    // Patch-rule knobs.
    vov1: f64,
    alpha1: f64,
    alpha2: f64,
    s1_cascoded: bool,
    skew: f64,
    i2_boost: f64,
    /// Multiplier on the slew-derived currents, raised when output
    /// parasitics eat into the achieved slew rate.
    slew_boost: f64,
    // Derived targets.
    cc: f64,
    a1_target: f64,
    a2_target: f64,
    gm1: f64,
    i_tail: f64,
    l1_um: f64,
    gm2: f64,
    i2: f64,
    l6_um: f64,
    // Designed blocks.
    pair: Option<DiffPair>,
    load1: Option<CurrentMirror>,
    tail: Option<CurrentMirror>,
    driver: Option<GainStage>,
    sink: Option<CurrentMirror>,
    shifter: Option<LevelShifter>,
    shifter_bias: Option<CurrentMirror>,
    /// Level-shifter bias current, A (sized for the pole it adds inside
    /// the Miller loop).
    i_ls: f64,
    compensation: Option<Compensation>,
    r_bias1: f64,
    r_bias2: f64,
    r_bias3: f64,
    // Analysis results.
    pm_net: f64,
    dc_mismatch: f64,
    swing: (f64, f64),
    offset_v: f64,
    predicted: Option<Predicted>,
    notes: Vec<String>,
}

impl<'a> State<'a> {
    fn new(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> Self {
        Self {
            spec: *spec,
            process: process.clone(),
            ctx,
            vov1: VOV1_INIT,
            alpha1: 0.5,
            alpha2: 0.5,
            s1_cascoded: false,
            skew: 1.0,
            i2_boost: 1.0,
            slew_boost: 1.0,
            cc: 0.0,
            a1_target: 0.0,
            a2_target: 0.0,
            gm1: 0.0,
            i_tail: 0.0,
            l1_um: 0.0,
            gm2: 0.0,
            i2: 0.0,
            l6_um: 0.0,
            pair: None,
            load1: None,
            tail: None,
            driver: None,
            sink: None,
            shifter: None,
            shifter_bias: None,
            i_ls: 0.0,
            compensation: None,
            r_bias1: 0.0,
            r_bias2: 0.0,
            r_bias3: 0.0,
            pm_net: 0.0,
            dc_mismatch: 0.0,
            swing: (0.0, 0.0),
            offset_v: 0.0,
            predicted: None,
            notes: Vec::new(),
        }
    }

    fn fu_achieved(&self) -> f64 {
        self.gm1 / (2.0 * std::f64::consts::PI * self.cc)
    }

    /// Junction and overlap capacitance the second stage hangs on the
    /// output node (drain of the driver plus the sink mirror's output
    /// device), F.
    fn output_parasitic_cap(&self) -> f64 {
        let mut total = 0.0;
        if let Some(driver) = &self.driver {
            let m = oasys_mos::Mosfet::new(Polarity::Pmos, driver.driver_geometry(), &self.process);
            let vgs = -(self.process.pmos().vth().volts() + VOV2);
            let op = m.operating_point(vgs, -2.0, 0.0);
            total += m.capacitances(&op).drain_total().farads();
        }
        if let Some(sink) = &self.sink {
            let m = oasys_mos::Mosfet::new(Polarity::Nmos, sink.unit_geometry(), &self.process);
            let vgs = sink.vgs();
            let op = m.operating_point(vgs, 2.0, 0.0);
            total += m.capacitances(&op).drain_total().farads();
        }
        total
    }

    /// The first-stage mirror-node pole, Hz (the diode side's gm over the
    /// capacitance parked on it).
    fn mirror_pole_hz(&self) -> f64 {
        let (Some(load), Some(pair)) = (&self.load1, &self.pair) else {
            return f64::INFINITY;
        };
        let gm3 = 2.0 * (self.i_tail / 2.0) / load.vov();
        let m3 = oasys_mos::Mosfet::new(Polarity::Pmos, load.input_geometry(), &self.process);
        let vgs = load.vgs();
        let op3 = m3.operating_point(-vgs, -vgs, 0.0);
        let c3 = m3.capacitances(&op3);
        let m1 = oasys_mos::Mosfet::new(Polarity::Nmos, pair.geometry(), &self.process);
        let op1 = m1.operating_point(self.process.nmos().vth().volts() + pair.vov(), 2.0, 0.0);
        let c1 = m1.capacitances(&op1);
        let c_node = 2.0 * c3.cgs().farads() + c3.cdb().farads() + c1.drain_total().farads();
        gm3 / (2.0 * std::f64::consts::PI * c_node)
    }

    /// DC level at the first-stage output (the mirror balance point).
    fn v1_out(&self) -> f64 {
        let load = self.load1.as_ref().expect("load designed");
        self.process.vdd().volts() - load.input_voltage()
    }

    /// DC level the second-stage PMOS driver wants at its gate.
    fn v_gate2_required(&self) -> f64 {
        self.process.vdd().volts() - (self.process.pmos().vth().volts() + VOV2)
    }
}

/// Statically analyzes the stored plan (see [`oasys_plan::analyze`]).
pub(super) fn analyze_plan() -> oasys_lint::Report {
    oasys_plan::analyze(&build_plan())
}

/// The two-stage style's declared performance relations (see
/// [`super::perf_relations`]).
///
/// Two cascaded intrinsic gains, each capped as in the one-stage ceiling
/// (the smaller of the two channel-length-modulation coefficients keeps
/// the bound valid for both the NMOS first and PMOS second stage), spent
/// against the `GAIN_MARGIN` the plan designs in. The swing relation
/// mirrors `check-spec` exactly.
pub(super) fn perf_relations(spec: &OpAmpSpec, process: &Process) -> Vec<PerfRelation> {
    let lambda = process.nmos().lambda_l().min(process.pmos().lambda_l());
    let stage = super::stage_gain_ceiling(lambda, process.min_length().micrometers(), MAX_L_FACTOR);
    let ceiling = stage * stage / GAIN_MARGIN;
    let mut relations = vec![PerfRelation::new(
        "dc-gain",
        "dB",
        Interval::point(spec.dc_gain().db()),
        Interval::new(0.0, 20.0 * ceiling.log10()),
    )];
    if spec.has_swing() {
        relations.push(PerfRelation::new(
            "output-swing",
            "V",
            Interval::point(spec.output_swing().volts()),
            Interval::at_most(process.vdd().volts() - 0.3),
        ));
    }
    relations
}

fn build_plan<'a>() -> Plan<State<'a>> {
    Plan::<State>::builder("two-stage")
        .inputs([
            "spec",
            "process",
            "ctx",
            "vov1",
            "alpha1",
            "alpha2",
            "s1_cascoded",
            "skew",
            "i2_boost",
            "slew_boost",
            "shifter",
            "shifter_bias",
            "i_ls",
            "notes",
        ])
        // Knob domains for the interval analyzer, spanning what the
        // patch rules can steer through.
        .input_domain("vov1", Interval::new(0.05, 0.5), Dimension::VOLTAGE)
        .input_domain("skew", Interval::new(1.0, CASCODE_SKEW), Dimension::NONE)
        .input_domain("i2_boost", Interval::new(1.0, 16.0), Dimension::NONE)
        .input_domain("slew_boost", Interval::new(1.0, 8.0), Dimension::NONE)
        .step("check-spec", |s: &mut State| {
            let vdd = s.process.vdd().volts();
            if s.spec.has_swing() && s.spec.output_swing().volts() > vdd - 0.3 {
                return StepOutcome::failed(
                    "spec-unsupported",
                    format!(
                        "±{:.1} V swing leaves no headroom on ±{vdd:.1} V rails",
                        s.spec.output_swing().volts()
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process"])
        .writes(NONE)
        .emits(["spec-unsupported"])
        .step("choose-cc", |s: &mut State| {
            s.cc = (CC_FACTOR * s.spec.load().farads()).max(0.5e-12);
            StepOutcome::Done
        })
        .reads(["spec"])
        .writes(["cc"])
        .emits(NONE)
        .step("partition-gain", |s: &mut State| {
            // The paper's heuristic: √gain to each stage, skewed toward
            // the cascoded stage when a rule demands it.
            let total = s.spec.dc_gain_linear() * GAIN_MARGIN;
            s.a1_target = total.sqrt() * s.skew;
            s.a2_target = total / s.a1_target;
            StepOutcome::Done
        })
        .reads(["spec", "skew"])
        .writes(["a1_target", "a2_target"])
        .emits(NONE)
        .step("size-input", |s: &mut State| {
            let gm_floor = 2.0 * std::f64::consts::PI * s.spec.unity_gain_freq().hertz() * s.cc;
            let i_slew = s.spec.slew_rate().volts_per_second() * s.cc * s.slew_boost;
            s.i_tail = i_slew.max(gm_floor * s.vov1).max(1e-6);
            s.gm1 = s.i_tail / s.vov1;
            StepOutcome::Done
        })
        .reads(["spec", "cc", "vov1", "slew_boost"])
        .writes(["gm1", "i_tail"])
        // Spec-derived floors are opaque, so `i_tail` degrades to
        // unknown; the divisor `vov1` has a declared zero-free domain.
        .transfer(
            "i_tail",
            Expr::var("i_slew")
                .max(Expr::var("gm_floor").mul(Expr::var("vov1")))
                .max(Expr::qty(1e-6, Dimension::CURRENT)),
        )
        .transfer("gm1", Expr::var("i_tail").div(Expr::var("vov1")))
        .emits(NONE)
        .step("stage1-budget", |s: &mut State| {
            let pair_budget = s.alpha1 * s.gm1 / s.a1_target;
            let mos = s.process.nmos();
            let l_min = s.process.min_length().micrometers();
            s.l1_um = (mos.lambda_l() * (s.i_tail / 2.0) / pair_budget).max(l_min);
            if s.l1_um > MAX_L_FACTOR * l_min {
                return StepOutcome::failed(
                    "stage1-gain-short",
                    format!(
                        "first stage needs L = {:.1} µm for A1 = {:.0}",
                        s.l1_um, s.a1_target
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["process", "alpha1", "gm1", "i_tail", "a1_target"])
        .writes(["l1_um"])
        .emits(["stage1-gain-short"])
        .step("design-pair", |s: &mut State| {
            let spec = DiffPairSpec::new(Polarity::Nmos, s.gm1, s.i_tail).with_length_um(s.l1_um);
            match DiffPair::design_with(&spec, &s.process, &s.ctx) {
                Ok(p) => {
                    s.pair = Some(p);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("pair-design", e.to_string()),
            }
        })
        .reads(["process", "ctx", "gm1", "i_tail", "l1_um"])
        .writes(["pair"])
        .emits(["pair-design"])
        .step("design-stage1-load", |s: &mut State| {
            let load_budget = (1.0 - s.alpha1) * s.gm1 / s.a1_target;
            let style = if s.s1_cascoded {
                MirrorStyle::Cascode
            } else {
                MirrorStyle::Simple
            };
            let spec = MirrorSpec::new(Polarity::Pmos, s.i_tail / 2.0)
                .with_min_rout(1.0 / load_budget)
                .with_headroom(2.6)
                .with_only_style(style);
            match CurrentMirror::design_with(&spec, &s.process, &s.ctx) {
                Ok(m) => {
                    s.load1 = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("stage1-gain-short", e.to_string()),
            }
        })
        .reads([
            "process",
            "ctx",
            "alpha1",
            "gm1",
            "i_tail",
            "a1_target",
            "s1_cascoded",
        ])
        .writes(["load1"])
        .emits(["stage1-gain-short"])
        .step("design-tail", |s: &mut State| {
            // The paper's case C cascodes the input current bias together
            // with the first-stage load.
            let style = if s.s1_cascoded {
                MirrorStyle::Cascode
            } else {
                MirrorStyle::Simple
            };
            let spec = MirrorSpec::new(Polarity::Nmos, s.i_tail)
                .with_headroom(2.0)
                .with_only_style(style);
            match CurrentMirror::design_with(&spec, &s.process, &s.ctx) {
                Ok(m) => {
                    s.tail = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("tail-design", e.to_string()),
            }
        })
        .reads(["process", "ctx", "i_tail", "s1_cascoded"])
        .writes(["tail"])
        .emits(["tail-design"])
        .step("stage2-requirements", |s: &mut State| {
            // gm2 from the phase-margin equation (with 5° of headroom),
            // current from gm2 at the stage-2 overdrive, floored by the
            // output slew requirement.
            let pm_target = (s.spec.phase_margin().degrees() + 5.0).min(85.0);
            let gm2 = match Compensation::required_gm2(
                s.gm1,
                s.spec.load().farads(),
                s.fu_achieved(),
                pm_target,
            ) {
                Ok(g) => g,
                Err(e) => {
                    return StepOutcome::failed("compensation", e.to_string());
                }
            };
            s.gm2 = gm2 * s.i2_boost;
            let i_gm = s.gm2 * VOV2 / 2.0;
            let i_slew =
                s.spec.slew_rate().volts_per_second() * s.spec.load().farads() * s.slew_boost;
            s.i2 = i_gm.max(i_slew).max(2e-6);
            s.gm2 = 2.0 * s.i2 / VOV2;
            // Driver length for its share of the stage-2 gain.
            let driver_budget = s.alpha2 * s.gm2 / s.a2_target;
            let l_min = s.process.min_length().micrometers();
            s.l6_um = (s.process.pmos().lambda_l() * s.i2 / driver_budget).max(l_min);
            if s.l6_um > MAX_L_FACTOR * l_min {
                return StepOutcome::failed(
                    "stage2-gain-short",
                    format!(
                        "second stage needs L = {:.1} µm for A2 = {:.0}",
                        s.l6_um, s.a2_target
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads([
            "spec",
            "process",
            "gm1",
            "cc",
            "i2_boost",
            "slew_boost",
            "alpha2",
            "a2_target",
        ])
        .writes(["gm2", "i2", "l6_um"])
        .emits(["compensation", "stage2-gain-short"])
        .step("design-stage2-sink", |s: &mut State| {
            let sink_budget = (1.0 - s.alpha2) * s.gm2 / s.a2_target;
            let vss = s.process.vss().volts();
            let headroom = if s.spec.has_swing() {
                vss.abs() - s.spec.output_swing().volts()
            } else {
                1.0
            };
            let ratio = s.i2 / s.i_tail;
            // No cascode-bias node exists at the output mirror, so the
            // wide-swing style is off the table here.
            let spec = MirrorSpec::new(Polarity::Nmos, s.i2)
                .with_ratio(ratio.max(0.1))
                .with_min_rout(1.0 / sink_budget)
                .with_headroom(headroom.max(0.4))
                .without_style(MirrorStyle::WideSwing);
            match CurrentMirror::design_with(&spec, &s.process, &s.ctx) {
                Ok(m) => {
                    s.sink = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("stage2-gain-short", e.to_string()),
            }
        })
        .reads([
            "spec",
            "process",
            "ctx",
            "alpha2",
            "gm2",
            "a2_target",
            "i2",
            "i_tail",
        ])
        .writes(["sink"])
        .emits(["stage2-gain-short"])
        .step("design-stage2-driver", |s: &mut State| {
            let sink = s.sink.as_ref().expect("sink designed");
            let spec = GainStageSpec::new(Polarity::Pmos, s.gm2, s.i2)
                .with_length_um(s.l6_um)
                .with_load_gds(1.0 / sink.rout());
            // The template pins the driver to the simple common-source
            // style (the sink mirror carries the r_out budget), so this
            // bypasses style selection but still records/memoizes through
            // the context.
            let key = CacheKey::new()
                .tag("style", "simple")
                .num("gm", s.gm2)
                .num("ibias", s.i2)
                .num("l_um", s.l6_um)
                .num("load_gds", 1.0 / sink.rout());
            static LEVEL: OnceLock<Sym> = OnceLock::new();
            let level = *LEVEL.get_or_init(|| sym2("block:", "gain stage"));
            let result = s.ctx.design_child_sym(level, "gain stage", Some(key), || {
                GainStage::design_style(&spec, &s.process, GainStageStyle::Simple)
            });
            match result {
                Ok(st) => {
                    s.driver = Some(st);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("stage2-design", e.to_string()),
            }
        })
        .reads(["process", "ctx", "gm2", "i2", "l6_um", "sink"])
        .writes(["driver"])
        .emits(["stage2-design"])
        .step("dc-match", |s: &mut State| {
            // Compare the first-stage output DC with what the PMOS driver
            // gate wants; a level shifter (already inserted by the patch
            // rule, if any) closes the gap.
            let shift = s.shifter.as_ref().map_or(0.0, |ls| ls.spec().shift());
            let v_gate = s.v1_out() + shift;
            s.dc_mismatch = s.v_gate2_required() - v_gate;
            if s.dc_mismatch.abs() > DC_MATCH_TOL {
                return StepOutcome::failed(
                    "dc-mismatch",
                    format!(
                        "stage-1 output sits at {:.2} V but the second stage wants \
                         {:.2} V at its gate",
                        v_gate + shift - shift,
                        s.v_gate2_required()
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["process", "shifter", "load1"])
        .writes(["dc_mismatch"])
        .emits(["dc-mismatch"])
        .step("compensate", |s: &mut State| {
            // The output node carries the drain junctions of the driver
            // and sink on top of the specified load; the compensation
            // must be designed against that effective capacitance, and
            // the parasitic poles (first-stage mirror node, level-shifter
            // output) eat into the margin the Miller math predicts.
            let cl_eff = s.spec.load().farads() + s.output_parasitic_cap();
            let comp_spec = CompensationSpec {
                gm1: s.gm1,
                gm2: s.gm2,
                load_cap: cl_eff,
                unity_gain_freq: s.fu_achieved(),
                phase_margin_deg: s.spec.phase_margin().degrees(),
            };
            let comp = match Compensation::design_with(&comp_spec, &s.ctx) {
                Ok(c) => c,
                Err(e) => return StepOutcome::failed("pm-short", e.to_string()),
            };
            let fu = comp.unity_gain_freq();
            let mut pm = comp.phase_margin_deg();
            pm -= (fu / s.mirror_pole_hz()).atan().to_degrees();
            if let Some(ls) = &s.shifter {
                let p_ls = ls.gm() / (2.0 * std::f64::consts::PI * 2.0 * s.cc);
                pm -= (fu / p_ls).atan().to_degrees();
            }
            if pm < s.spec.phase_margin().degrees() {
                return StepOutcome::failed(
                    "pm-short",
                    format!(
                        "parasitic poles leave only {pm:.1}° of margin at \
                         {fu:.3e} Hz (need {:.1}°)",
                        s.spec.phase_margin().degrees()
                    ),
                );
            }
            s.cc = comp.cc();
            s.pm_net = pm;
            s.compensation = Some(comp);
            StepOutcome::Done
        })
        .reads([
            "spec", "process", "ctx", "gm1", "gm2", "cc", "i_tail", "pair", "load1", "driver",
            "sink", "shifter",
        ])
        .writes(["cc", "pm_net", "compensation"])
        .emits(["pm-short"])
        .step("bias-resistors", |s: &mut State| {
            let span = s.process.supply_span().volts();
            let tail = s.tail.as_ref().expect("tail designed");
            let sink = s.sink.as_ref().expect("sink designed");
            let d1 = span - tail.input_voltage();
            let d2 = span - sink.input_voltage();
            if d1 < 0.5 || d2 < 0.5 {
                return StepOutcome::failed(
                    "bias-headroom",
                    "no headroom left for a bias resistor",
                );
            }
            s.r_bias1 = d1 / tail.spec().input_current();
            s.r_bias2 = d2 / sink.spec().input_current();
            if let Some(lsb) = &s.shifter_bias {
                let d3 = span - lsb.input_voltage();
                if d3 < 0.5 {
                    return StepOutcome::failed(
                        "bias-headroom",
                        "no headroom for the level-shifter bias",
                    );
                }
                s.r_bias3 = d3 / lsb.spec().input_current();
            }
            StepOutcome::Done
        })
        .reads(["process", "tail", "sink", "shifter_bias"])
        .writes(["r_bias1", "r_bias2", "r_bias3"])
        .emits(["bias-headroom"])
        .step("check-noise", |s: &mut State| {
            if !s.spec.has_noise() {
                return StepOutcome::Done;
            }
            let load = s.load1.as_ref().expect("load designed");
            let gm3 = 2.0 * (s.i_tail / 2.0) / load.vov();
            let kt = 1.380649e-23 * 300.0;
            let noise = (2.0 * (8.0 / 3.0) * kt / s.gm1 * (1.0 + gm3 / s.gm1)).sqrt();
            if noise > s.spec.max_noise_v_rthz() {
                return StepOutcome::failed(
                    "noise-high",
                    format!(
                        "input noise {:.0} nV/√Hz exceeds the {:.0} nV/√Hz ceiling",
                        noise * 1e9,
                        s.spec.max_noise_v_rthz() * 1e9
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "gm1", "i_tail", "load1"])
        .writes(NONE)
        .emits(["noise-high"])
        .step("check-slew", |s: &mut State| {
            if !s.spec.has_slew() {
                return StepOutcome::Done;
            }
            let cl_eff = s.spec.load().farads() + s.output_parasitic_cap();
            let sr = (s.i_tail / s.cc).min(s.i2 / cl_eff);
            if sr < s.spec.slew_rate().volts_per_second() * 0.99 {
                return StepOutcome::failed(
                    "slew-short",
                    format!(
                        "output parasitics hold the slew rate to {:.2} V/µs",
                        sr / 1e6
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "i_tail", "cc", "i2", "driver", "sink"])
        .writes(NONE)
        .emits(["slew-short"])
        .step("check-swing", |s: &mut State| {
            let sink = s.sink.as_ref().expect("sink designed");
            let vdd = s.process.vdd().volts();
            let vss = s.process.vss().volts();
            let hi = vdd - VOV2;
            let lo = vss + sink.compliance();
            s.swing = (lo, hi);
            if s.spec.has_swing() {
                let need = s.spec.output_swing().volts();
                if hi < need || lo > -need {
                    return StepOutcome::failed(
                        "swing-short",
                        format!("achievable swing {lo:+.2} … {hi:+.2} V misses ±{need:.1} V"),
                    );
                }
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "sink"])
        .writes(["swing"])
        .emits(["swing-short"])
        .step("check-offset", |s: &mut State| {
            // Residual inter-stage DC error, referred to the input through
            // the first-stage gain.
            let pair = s.pair.as_ref().expect("pair designed");
            let load = s.load1.as_ref().expect("load designed");
            let a1 = s.gm1 / (pair.gds() + 1.0 / load.rout());
            s.offset_v = s.dc_mismatch.abs() / a1;
            if s.spec.has_offset() && s.offset_v > s.spec.max_offset().volts() {
                return StepOutcome::failed(
                    "offset-high",
                    format!(
                        "systematic offset {:.3} mV exceeds {:.3} mV",
                        s.offset_v * 1e3,
                        s.spec.max_offset().volts() * 1e3
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "gm1", "pair", "load1", "dc_mismatch"])
        .writes(["offset_v"])
        .emits(["offset-high"])
        .step("check-power", |s: &mut State| {
            let span = s.process.supply_span().volts();
            let mut current = 2.0 * s.i_tail + s.i_tail + s.i2; // bias1+tail, bias2, stage2
            if s.shifter.is_some() {
                current += 2.0 * s.i_ls;
            }
            let power = span * current;
            if s.spec.has_power() && power > s.spec.max_power().watts() {
                return StepOutcome::failed(
                    "power-high",
                    format!(
                        "quiescent power {:.2} mW exceeds {:.2} mW",
                        power * 1e3,
                        s.spec.max_power().watts() * 1e3
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "i_tail", "i2", "shifter", "i_ls"])
        .writes(NONE)
        .emits(["power-high"])
        .step("predict", |s: &mut State| {
            let pair = s.pair.as_ref().expect("pair designed");
            let load = s.load1.as_ref().expect("load designed");
            let tail = s.tail.as_ref().expect("tail designed");
            let driver = s.driver.as_ref().expect("driver designed");
            let sink = s.sink.as_ref().expect("sink designed");
            let comp = s.compensation.as_ref().expect("compensated");
            let span = s.process.supply_span().volts();

            let a1 = s.gm1 / (pair.gds() + 1.0 / load.rout());
            // CMRR is set by the first stage: A_cm1 ≈ 1/(2·gm3·R_tail)
            // while the differential path carries the full gain.
            let gm3 = 2.0 * (s.i_tail / 2.0) / load.vov();
            let cmrr = a1 * 2.0 * gm3 * tail.rout();
            // First stage dominates the input noise.
            let kt = 1.380649e-23 * 300.0;
            let noise = (2.0 * (8.0 / 3.0) * kt / s.gm1 * (1.0 + gm3 / s.gm1)).sqrt();
            let a2 = driver.gm() / (driver.gout_driver() + 1.0 / sink.rout());
            let ls_gain = s.shifter.as_ref().map_or(1.0, LevelShifter::gain);
            let gain = a1 * a2 * ls_gain;

            let mut current = 2.0 * s.i_tail + s.i_tail + s.i2;
            if s.shifter.is_some() {
                current += 2.0 * s.i_ls;
            }

            s.predicted = Some(Predicted {
                dc_gain_db: 20.0 * gain.log10(),
                unity_gain_hz: comp.unity_gain_freq(),
                phase_margin_deg: s.pm_net,
                slew_v_per_s: (s.i_tail / s.cc)
                    .min(s.i2 / (s.spec.load().farads() + s.output_parasitic_cap())),
                swing_neg_v: s.swing.0,
                swing_pos_v: s.swing.1,
                offset_v: s.offset_v,
                power_w: span * current,
                cmrr_db: 20.0 * cmrr.log10(),
                noise_v_rthz: noise,
            });
            StepOutcome::Done
        })
        .reads([
            "spec",
            "process",
            "gm1",
            "i_tail",
            "i2",
            "cc",
            "pair",
            "load1",
            "tail",
            "driver",
            "sink",
            "compensation",
            "shifter",
            "i_ls",
            "pm_net",
            "swing",
            "offset_v",
        ])
        .writes(["predicted"])
        .emits(NONE)
        // ---- patch rules ----
        .rule(
            "cascode-first-stage",
            |s: &State, f| {
                !s.s1_cascoded && matches!(f.code(), "stage1-gain-short" | "stage2-gain-short")
            },
            |s: &mut State| {
                s.s1_cascoded = true;
                s.alpha1 = 0.85;
                s.skew = CASCODE_SKEW;
                s.i2_boost = 1.0;
                s.notes.push(
                    "cascoded the first-stage load and tail; skewed the gain \
                     partition toward the cascoded stage"
                        .to_owned(),
                );
                PatchAction::RestartFrom("partition-gain".into())
            },
        )
        .on_codes(["stage1-gain-short", "stage2-gain-short"])
        .guarded()
        .reads(["s1_cascoded"])
        .writes(["s1_cascoded", "alpha1", "skew", "i2_boost", "notes"])
        .restarts_from("partition-gain")
        .rule(
            "lower-pair-overdrive",
            |s: &State, f| matches!(f.code(), "stage1-gain-short" | "noise-high") && s.vov1 > 0.11,
            |s: &mut State| {
                s.vov1 /= 2.0;
                s.notes
                    .push(format!("lowered pair overdrive to {:.2} V", s.vov1));
                PatchAction::RestartFrom("size-input".into())
            },
        )
        .on_codes(["stage1-gain-short", "noise-high"])
        .guarded()
        .reads(["vov1"])
        .writes(["vov1", "notes"])
        .restarts_from("size-input")
        .rule(
            "insert-level-shifter",
            |s: &State, f| f.code() == "dc-mismatch" && s.shifter.is_none(),
            |s: &mut State| {
                // The driver gate must sit above the stage-1 output: a
                // PMOS source follower (bulk tied to source, so no body
                // effect) shifts up by its V_SG.
                let needed = s.v_gate2_required() - s.v1_out();
                if needed <= 0.0 {
                    return PatchAction::Abort(format!(
                        "stage-1 output is above the driver gate level by \
                         {:.2} V; no follower polarity fits",
                        -needed
                    ));
                }
                // The follower sits inside the compensation loop: its
                // output pole gm_ls/(Cc + C_gate2) must clear the
                // crossover by ~10×, which sets the bias current.
                let probe = LevelShiftSpec::new(Polarity::Pmos, needed, 1e-6);
                let vov_ls = match LevelShifter::design_with(&probe, &s.process, &s.ctx) {
                    Ok(ls) => ls.vov(),
                    Err(e) => return PatchAction::Abort(format!("level shifter infeasible: {e}")),
                };
                let gm_req = 2.0 * std::f64::consts::PI * (10.0 * s.fu_achieved()) * (2.0 * s.cc);
                s.i_ls = (gm_req * vov_ls / 2.0).max(s.i_tail / 2.0);
                let ls_spec = LevelShiftSpec::new(Polarity::Pmos, needed, s.i_ls);
                match LevelShifter::design_with(&ls_spec, &s.process, &s.ctx) {
                    Ok(ls) => {
                        s.shifter = Some(ls);
                        let bias_spec = MirrorSpec::new(Polarity::Pmos, s.i_ls)
                            .with_headroom(1.0)
                            .with_only_style(MirrorStyle::Simple);
                        match CurrentMirror::design_with(&bias_spec, &s.process, &s.ctx) {
                            Ok(m) => s.shifter_bias = Some(m),
                            Err(e) => {
                                return PatchAction::Abort(format!(
                                    "level-shifter bias infeasible: {e}"
                                ))
                            }
                        }
                        s.notes.push(format!(
                            "inserted a {needed:.2} V level shifter between the stages"
                        ));
                        PatchAction::Retry
                    }
                    Err(e) => PatchAction::Abort(format!("level shifter infeasible: {e}")),
                }
            },
        )
        .on_codes(["dc-mismatch"])
        .guarded()
        .reads([
            "spec", "process", "ctx", "load1", "gm1", "cc", "i_tail", "shifter",
        ])
        .writes(["shifter", "shifter_bias", "i_ls", "notes"])
        .retries()
        .aborts()
        .rule(
            "boost-for-slew",
            |s: &State, f| f.code() == "slew-short" && s.slew_boost < 2.5,
            |s: &mut State| {
                s.slew_boost *= 1.25;
                PatchAction::RestartFrom("size-input".into())
            },
        )
        .on_codes(["slew-short"])
        .guarded()
        .reads(["slew_boost"])
        .writes(["slew_boost"])
        .restarts_from("size-input")
        .rule(
            "relax-input-overdrive",
            |s: &State, f| {
                // Guard against fighting the stage-1 gain rules: raising
                // V_ov lengthens the pair; only fire while that stays
                // manufacturable for the current gain partition.
                let l_projected =
                    s.process.nmos().lambda_l() * (s.vov1 * 1.4) * s.a1_target / (2.0 * s.alpha1);
                f.code() == "pm-short"
                    && s.vov1 < 0.45
                    && s.fu_achieved() > 1.3 * s.spec.unity_gain_freq().hertz()
                    && l_projected <= MAX_L_FACTOR * s.process.min_length().micrometers()
            },
            |s: &mut State| {
                s.vov1 *= 1.4;
                s.notes.push(format!(
                    "raised pair overdrive to {:.2} V, trading excess bandwidth \
                     for phase margin",
                    s.vov1
                ));
                PatchAction::RestartFrom("size-input".into())
            },
        )
        .on_codes(["pm-short"])
        .guarded()
        .reads([
            "spec",
            "process",
            "vov1",
            "a1_target",
            "alpha1",
            "gm1",
            "cc",
        ])
        .writes(["vov1", "notes"])
        .restarts_from("size-input")
        .rule(
            "cascode-for-phase-margin",
            |s: &State, f| {
                // Boosting gm2 saturates once the driver's own junction
                // capacitance dominates the output pole; shifting gain
                // into a cascoded first stage shrinks the driver and
                // raises the pole ceiling.
                f.code() == "pm-short" && !s.s1_cascoded && s.i2_boost > 4.0
            },
            |s: &mut State| {
                s.s1_cascoded = true;
                s.alpha1 = 0.85;
                s.skew = CASCODE_SKEW;
                s.i2_boost = 1.0;
                s.notes.push(
                    "cascoded the first stage and skewed the partition to shrink \
                     the second-stage driver for phase margin"
                        .to_owned(),
                );
                PatchAction::RestartFrom("partition-gain".into())
            },
        )
        .on_codes(["pm-short"])
        .guarded()
        .reads(["s1_cascoded", "i2_boost"])
        .writes(["s1_cascoded", "alpha1", "skew", "i2_boost", "notes"])
        .restarts_from("partition-gain")
        .rule(
            "boost-second-stage",
            |s: &State, f| f.code() == "pm-short" && s.i2_boost < 8.0,
            |s: &mut State| {
                s.i2_boost *= 1.5;
                s.notes.push(format!(
                    "raised the second-stage current budget (×{:.1}) for phase margin",
                    s.i2_boost
                ));
                PatchAction::RestartFrom("stage2-requirements".into())
            },
        )
        .on_codes(["pm-short"])
        .guarded()
        .reads(["i2_boost"])
        .writes(["i2_boost", "notes"])
        .restarts_from("stage2-requirements")
        .rule(
            "give-up-gain",
            |_, f| matches!(f.code(), "stage1-gain-short" | "stage2-gain-short"),
            |_s: &mut State| {
                PatchAction::Abort(
                    "gain infeasible for the two-stage style even with cascoding".into(),
                )
            },
        )
        .on_codes(["stage1-gain-short", "stage2-gain-short"])
        .writes(NONE)
        .aborts()
        .rule(
            "give-up",
            |_, f| {
                matches!(
                    f.code(),
                    "spec-unsupported"
                        | "pair-design"
                        | "tail-design"
                        | "stage2-design"
                        | "compensation"
                        | "dc-mismatch"
                        | "bias-headroom"
                        | "swing-short"
                        | "offset-high"
                        | "pm-short"
                        | "power-high"
                        | "slew-short"
                        | "noise-high"
                )
            },
            |_s: &mut State| PatchAction::Abort("two-stage style infeasible".into()),
        )
        .on_codes([
            "spec-unsupported",
            "pair-design",
            "tail-design",
            "stage2-design",
            "compensation",
            "dc-mismatch",
            "bias-headroom",
            "swing-short",
            "offset-high",
            "pm-short",
            "power-high",
            "slew-short",
            "noise-high",
        ])
        .writes(NONE)
        .aborts()
        .build()
}

/// Runs the two-stage plan and assembles the sized schematic.
///
/// # Errors
///
/// [`StyleError::Plan`] when the plan (after patching) cannot meet the
/// specification; [`StyleError::Netlist`] for template assembly bugs.
pub fn design_two_stage(spec: &OpAmpSpec, process: &Process) -> Result<OpAmpDesign, StyleError> {
    let tel = Telemetry::disabled();
    design_two_stage_with(spec, process, &tel)
}

/// [`design_two_stage`] with run telemetry recorded into `tel`.
///
/// # Errors
///
/// Same failure modes as [`design_two_stage`].
pub fn design_two_stage_with(
    spec: &OpAmpSpec,
    process: &Process,
    tel: &Telemetry,
) -> Result<OpAmpDesign, StyleError> {
    run_style::<TwoStageDef>(spec, process, &DesignContext::new(tel))
}

/// The two-stage op amp's [`StyleDef`]: the plan above plus state
/// construction. Everything else is the shared [`run_style`] engine.
pub(super) struct TwoStageDef;

impl StyleDef for TwoStageDef {
    const STYLE: OpAmpStyle = OpAmpStyle::TwoStage;
    type State<'a> = State<'a>;

    fn build_plan<'a>() -> Plan<State<'a>> {
        build_plan()
    }

    fn init<'a>(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> State<'a> {
        State::new(spec, process, ctx)
    }
}

impl StyleState for State<'_> {
    fn emit(&self) -> Result<Circuit, oasys_netlist::ValidateError> {
        emit(self)
    }

    fn area(&self) -> AreaEstimate {
        let w_min = self.process.min_width().micrometers();
        let r_total = self.r_bias1 + self.r_bias2 + self.r_bias3;
        let r_area = r_total / BIAS_SHEET_OHMS * w_min * w_min;
        let mut area = self.pair.as_ref().expect("plan done").area()
            + self.load1.as_ref().expect("plan done").area()
            + self.tail.as_ref().expect("plan done").area()
            + self.driver.as_ref().expect("plan done").area()
            + self.sink.as_ref().expect("plan done").area()
            + AreaEstimate::for_capacitor(self.cc, &self.process)
            + AreaEstimate::from_um2(r_area, 0.0);
        if let Some(ls) = &self.shifter {
            area = area + ls.area();
        }
        if let Some(lsb) = &self.shifter_bias {
            area = area + lsb.area();
        }
        area
    }

    fn predicted(&self) -> Predicted {
        self.predicted.expect("predict ran")
    }

    fn take_notes(&mut self) -> Vec<String> {
        std::mem::take(&mut self.notes)
    }
}

/// Assembles the two-stage netlist from the designed sub-blocks.
fn emit(state: &State) -> Result<Circuit, oasys_netlist::ValidateError> {
    let pair = state.pair.as_ref().expect("plan done");
    let load1 = state.load1.as_ref().expect("plan done");
    let tail = state.tail.as_ref().expect("plan done");
    let driver = state.driver.as_ref().expect("plan done");
    let sink = state.sink.as_ref().expect("plan done");

    let mut c = Circuit::new("two-stage op amp");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let out = c.node("out");
    let tail_node = c.node("tail");
    let d1 = c.node("d1");
    let s1out = c.node("s1out");
    let nbias1 = c.node("nbias1");
    let nbias2 = c.node("nbias2");
    for (label, node) in [
        ("inp", inp),
        ("inn", inn),
        ("out", out),
        ("vdd", vdd),
        ("vss", vss),
    ] {
        c.mark_port(label, node);
    }

    // First stage. M1 (gate inp) drains into s1out; M2 (gate inn) into
    // the mirror diode, so the overall amp is non-inverting at inp after
    // the inverting second stage.
    pair.emit(&mut c, "DP_", inp, inn, d1, s1out, tail_node, vss)?;
    load1.emit(&mut c, "LD_", d1, s1out, vdd, None)?;
    tail.emit(&mut c, "TL_", nbias1, tail_node, vss, None)?;
    c.add_resistor("RBIAS1", vdd, nbias1, state.r_bias1)?;

    // Optional level shifter between the stages.
    let g6 = if let Some(ls) = &state.shifter {
        let g6 = c.node("g6");
        // PMOS follower with bulk tied to its source (its own n-well).
        ls.emit(&mut c, "LS_", s1out, g6, vss, g6)?;
        let lsb = state
            .shifter_bias
            .as_ref()
            .expect("shifter bias designed with shifter");
        let nbias3 = c.node("nbias3");
        lsb.emit(&mut c, "LB_", nbias3, g6, vdd, None)?;
        c.add_resistor("RBIAS3", nbias3, vss, state.r_bias3)?;
        g6
    } else {
        s1out
    };

    // Second stage: PMOS common-source driver, NMOS mirror sink.
    driver.emit(&mut c, "ST2_", g6, out, vdd, vdd, None)?;
    sink.emit(&mut c, "SK_", nbias2, out, vss, None)?;
    c.add_resistor("RBIAS2", vdd, nbias2, state.r_bias2)?;

    // Miller compensation: always returned to the first-stage output so
    // the capacitance is Miller-multiplied onto the high-impedance node
    // (pole splitting). With a level shifter present the follower sits
    // inside the compensation loop, where its high gm keeps its pole far
    // above crossover.
    let _ = g6;
    c.add_capacitor("CC", out, s1out, state.cc)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;
    use oasys_process::builtin;

    #[test]
    fn plan_analyzes_clean() {
        let report = analyze_plan();
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn case_a_designs_simply() {
        let d = design_two_stage(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        assert_eq!(d.style(), OpAmpStyle::TwoStage);
        assert!(d.predicted().dc_gain_db >= 60.0);
        assert!(d.predicted().phase_margin_deg >= 45.0);
        // The compensation step may iterate the second-stage current, but
        // the topology must stay the simple template (no cascodes, no
        // level shifter).
        assert!(
            !d.notes()
                .iter()
                .any(|n| n.contains("cascoded") || n.contains("shifter")),
            "case A should keep the simple topology: {:?}",
            d.notes()
        );
        // Simple everything: 2 pair + 2 load + 2 tail + 1 driver + 2 sink.
        assert_eq!(d.device_count(), 9);
        d.circuit().validate().unwrap();
    }

    #[test]
    fn case_b_meets_gain_offset_swing() {
        let d = design_two_stage(&test_cases::spec_b(), &builtin::cmos_5um()).unwrap();
        let p = d.predicted();
        assert!(p.dc_gain_db >= 75.0, "gain {:.1}", p.dc_gain_db);
        assert!(
            p.swing_symmetric() >= 4.0,
            "swing ±{:.2}",
            p.swing_symmetric()
        );
        assert!(p.offset_v <= 1e-3, "offset {:.4} V", p.offset_v);
        assert!(
            !d.notes()
                .iter()
                .any(|n| n.contains("cascoded") || n.contains("shifter")),
            "case B should stay the simple two-stage topology: {:?}",
            d.notes()
        );
    }

    #[test]
    fn case_c_cascodes_and_inserts_level_shifter() {
        let d = design_two_stage(&test_cases::spec_c(), &builtin::cmos_5um()).unwrap();
        let p = d.predicted();
        assert!(p.dc_gain_db >= 100.0, "gain {:.1}", p.dc_gain_db);
        let notes = d.notes().join("; ");
        assert!(notes.contains("cascoded"), "notes: {notes}");
        assert!(notes.contains("level shifter"), "notes: {notes}");
        // Cascoded load (4) + cascoded tail (4) + pair (2) + shifter (1)
        // + shifter bias (2) + driver (1) + sink (2) = 16 devices.
        assert!(d.device_count() >= 14, "{} devices", d.device_count());
        assert!(d.trace().rule_firings() >= 2);
        d.circuit().validate().unwrap();
    }

    #[test]
    fn case_c_costs_more_area_than_b() {
        let b = design_two_stage(&test_cases::spec_b(), &builtin::cmos_5um()).unwrap();
        let c = design_two_stage(&test_cases::spec_c(), &builtin::cmos_5um()).unwrap();
        assert!(c.area().total_um2() > b.area().total_um2());
        assert!(c.device_count() > b.device_count());
    }

    #[test]
    fn extreme_gain_aborts() {
        let spec = test_cases::spec_a().with_dc_gain_db(135.0);
        let err = design_two_stage(&spec, &builtin::cmos_5um()).unwrap_err();
        assert!(err.reason().contains("gain"), "reason: {}", err.reason());
    }

    #[test]
    fn compensation_capacitor_present() {
        let d = design_two_stage(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        assert!(d.circuit().element("CC").is_some());
        // Cc contributes to the area estimate.
        assert!(d.area().capacitor().square_micrometers() > 0.0);
    }

    #[test]
    fn larger_load_needs_more_second_stage_current() {
        let small = design_two_stage(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        let large = design_two_stage(
            &test_cases::spec_a().with_load_pf(20.0),
            &builtin::cmos_5um(),
        )
        .unwrap();
        assert!(large.predicted().power_w > small.predicted().power_w);
    }
}
