//! The one-stage operational-transconductance-amplifier style.
//!
//! Template (hierarchical, per the paper's Figure 2): an NMOS differential
//! pair, a PMOS current-mirror load (simple, or cascoded when the gain
//! demands it — the Figure 7 "topology change"), an NMOS tail mirror fed
//! from a resistor reference. The load capacitor itself compensates the
//! amplifier, so there is no compensation sub-block.
//!
//! The translation plan derives `gm1` from the unity-gain and slew
//! requirements, splits the output-conductance budget between the pair
//! and the load (a heuristic the patch rules re-skew), and sizes each
//! sub-block through its own designer. Patch rules: cascode the load,
//! lower the pair overdrive, and the aborts that reproduce the paper's
//! case-B narrative (the style's inherent systematic offset and the
//! gain/swing conflict cannot be patched away).

use super::{run_style, OpAmpDesign, OpAmpStyle, StyleDef, StyleError, StyleState};
use crate::datasheet::Predicted;
use crate::spec::OpAmpSpec;
use oasys_blocks::area::AreaEstimate;
use oasys_blocks::diffpair::{DiffPair, DiffPairSpec};
use oasys_blocks::mirror::{CurrentMirror, MirrorSpec, MirrorStyle};
use oasys_mos::Mosfet;
use oasys_netlist::Circuit;
use oasys_plan::{DesignContext, Expr, Interval, PatchAction, PerfRelation, Plan, StepOutcome};
use oasys_process::{Polarity, Process};
use oasys_telemetry::Telemetry;
use oasys_units::Dimension;

/// Longest pair channel, in multiples of the process minimum.
const MAX_L_FACTOR: f64 = 4.0;
/// Initial pair overdrive target, V.
const VOV1_INIT: f64 = 0.20;
/// Initial pair share of the output-conductance budget.
const ALPHA_INIT: f64 = 0.5;
/// Pair share once the load is cascoded (the load then contributes
/// almost nothing).
const ALPHA_CASCODE: f64 = 0.85;
/// Sheet resistance assumed for bias resistors (a serpentine well
/// resistor), Ω/square.
const BIAS_SHEET_OHMS: f64 = 10_000.0;

/// Empty annotation list (the builder cannot infer element types from `[]`).
const NONE: [&str; 0] = [];

/// Mutable design state threaded through the plan.
pub(super) struct State<'a> {
    spec: OpAmpSpec,
    process: Process,
    /// The invoking design context: sub-block design steps record
    /// `block:<level>` spans and memoize through it.
    ctx: DesignContext<'a>,
    // Heuristic knobs the patch rules adjust.
    vov1: f64,
    alpha: f64,
    load_cascoded: bool,
    /// Multiplier on the slew-derived tail current, raised when junction
    /// parasitics on the output eat into the achieved slew rate.
    slew_boost: f64,
    // Derived electrical targets.
    gm1: f64,
    i_tail: f64,
    pair_l_um: f64,
    // Designed sub-blocks.
    pair: Option<DiffPair>,
    load: Option<CurrentMirror>,
    tail: Option<CurrentMirror>,
    r_bias: f64,
    // Analysis results.
    swing: (f64, f64),
    offset_v: f64,
    pm_deg: f64,
    predicted: Option<Predicted>,
    notes: Vec<String>,
}

impl<'a> State<'a> {
    fn new(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> Self {
        Self {
            spec: *spec,
            process: process.clone(),
            ctx,
            vov1: VOV1_INIT,
            alpha: ALPHA_INIT,
            load_cascoded: false,
            slew_boost: 1.0,
            gm1: 0.0,
            i_tail: 0.0,
            pair_l_um: 0.0,
            pair: None,
            load: None,
            tail: None,
            r_bias: 0.0,
            swing: (0.0, 0.0),
            offset_v: 0.0,
            pm_deg: 0.0,
            predicted: None,
            notes: Vec::new(),
        }
    }

    fn gout_total(&self) -> f64 {
        self.gm1 / self.spec.dc_gain_linear()
    }

    /// Junction/overlap capacitance the OTA hangs on its own output (the
    /// M2 pair device plus the load mirror's output device), F.
    fn output_parasitic_cap(&self) -> f64 {
        let mut total = 0.0;
        if let Some(pair) = &self.pair {
            let m = Mosfet::new(Polarity::Nmos, pair.geometry(), &self.process);
            let vgs = self.process.nmos().vth().volts() + pair.vov();
            let op = m.operating_point(vgs, 2.0, 0.0);
            total += m.capacitances(&op).drain_total().farads();
        }
        if let Some(load) = &self.load {
            let m = Mosfet::new(Polarity::Pmos, load.unit_geometry(), &self.process);
            let vgs = load.vgs();
            let op = m.operating_point(-vgs, -2.0, 0.0);
            total += m.capacitances(&op).drain_total().farads();
        }
        total
    }

    fn cl_effective(&self) -> f64 {
        self.spec.load().farads() + self.output_parasitic_cap()
    }
}

/// Statically analyzes the stored plan (see [`oasys_plan::analyze`]).
pub(super) fn analyze_plan() -> oasys_lint::Report {
    oasys_plan::analyze(&build_plan())
}

/// The one-stage style's declared performance relations (see
/// [`super::perf_relations`]).
///
/// The gain ceiling is the single intrinsic gain `gm/gout` this
/// topology offers, taken at every favorable extreme: the whole output
/// conductance budget on the pair, the pair channel at the
/// `MAX_L_FACTOR` cap `gain-budget` enforces, and the overdrive at
/// [`super::STATIC_VOV_FLOOR`]. The swing relation mirrors `check-spec`
/// exactly: the output must clear the load's headroom on the positive
/// rail.
pub(super) fn perf_relations(spec: &OpAmpSpec, process: &Process) -> Vec<PerfRelation> {
    let ceiling = super::stage_gain_ceiling(
        process.nmos().lambda_l(),
        process.min_length().micrometers(),
        MAX_L_FACTOR,
    );
    let mut relations = vec![PerfRelation::new(
        "dc-gain",
        "dB",
        Interval::point(spec.dc_gain().db()),
        Interval::new(0.0, 20.0 * ceiling.log10()),
    )];
    if spec.has_swing() {
        relations.push(PerfRelation::new(
            "output-swing",
            "V",
            Interval::point(spec.output_swing().volts()),
            Interval::at_most(process.vdd().volts() - 0.4),
        ));
    }
    relations
}

/// Builds the one-stage translation plan (steps and patch rules).
fn build_plan<'a>() -> Plan<State<'a>> {
    Plan::<State>::builder("one-stage OTA")
        .inputs([
            "spec",
            "process",
            "ctx",
            "vov1",
            "alpha",
            "load_cascoded",
            "slew_boost",
            "notes",
        ])
        // Knob domains for the interval analyzer: the initial values,
        // widened to the whole range the patch rules can steer through.
        .input_domain("vov1", Interval::new(0.05, 0.5), Dimension::VOLTAGE)
        .input_domain(
            "alpha",
            Interval::new(ALPHA_INIT, ALPHA_CASCODE),
            Dimension::NONE,
        )
        .input_domain("slew_boost", Interval::new(1.0, 8.0), Dimension::NONE)
        .step("check-spec", |s: &mut State| {
            let vdd = s.process.vdd().volts();
            if s.spec.has_swing() && s.spec.output_swing().volts() > vdd - 0.4 {
                return StepOutcome::failed(
                    "spec-unsupported",
                    format!(
                        "requested ±{:.1} V swing leaves no headroom on ±{vdd:.1} V rails",
                        s.spec.output_swing().volts()
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process"])
        .writes(NONE)
        .emits(["spec-unsupported"])
        .step("size-input-gm", |s: &mut State| {
            // gm floor from the unity-gain spec (the OTA's f_u = gm1/2πC_L),
            // current floor from the slew spec; keep the pair at its target
            // overdrive, letting f_u exceed its minimum if slew dominates.
            let gm_min = 2.0
                * std::f64::consts::PI
                * s.spec.unity_gain_freq().hertz()
                * s.spec.load().farads();
            let i_slew =
                s.spec.slew_rate().volts_per_second() * s.spec.load().farads() * s.slew_boost;
            s.i_tail = i_slew.max(gm_min * s.vov1).max(1e-6);
            s.gm1 = s.i_tail / s.vov1;
            StepOutcome::Done
        })
        .reads(["spec", "vov1", "slew_boost"])
        .writes(["gm1", "i_tail"])
        // Interval transfers mirroring the step's arithmetic. The
        // spec-derived floors are opaque to the analyzer (`i_slew`,
        // `gm_min` are not state variables), so `i_tail` degrades to
        // unknown — what matters is that `gm1 = i_tail / vov1` shows the
        // divisor, whose declared domain excludes zero.
        .transfer(
            "i_tail",
            Expr::var("i_slew")
                .max(Expr::var("gm_min").mul(Expr::var("vov1")))
                .max(Expr::qty(1e-6, Dimension::CURRENT)),
        )
        .transfer("gm1", Expr::var("i_tail").div(Expr::var("vov1")))
        .emits(NONE)
        .step("gain-budget", |s: &mut State| {
            // Split the allowed output conductance between pair and load,
            // then pick the pair channel length that fits its share.
            let pair_budget = s.alpha * s.gout_total();
            let mos = s.process.nmos();
            let l_needed = mos.lambda_l() * (s.i_tail / 2.0) / pair_budget;
            let l_min = s.process.min_length().micrometers();
            s.pair_l_um = l_needed.max(l_min);
            if s.pair_l_um > MAX_L_FACTOR * l_min {
                return StepOutcome::failed(
                    "pair-gain-short",
                    format!(
                        "pair needs L = {:.1} µm (> {MAX_L_FACTOR}× minimum) for its \
                         share of the {:.1} dB gain",
                        s.pair_l_um,
                        s.spec.dc_gain().db()
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "alpha", "gm1", "i_tail"])
        .writes(["pair_l_um"])
        .emits(["pair-gain-short"])
        .step("design-pair", |s: &mut State| {
            let spec =
                DiffPairSpec::new(Polarity::Nmos, s.gm1, s.i_tail).with_length_um(s.pair_l_um);
            match DiffPair::design_with(&spec, &s.process, &s.ctx) {
                Ok(pair) => {
                    s.pair = Some(pair);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("pair-design", e.to_string()),
            }
        })
        .reads(["process", "ctx", "gm1", "i_tail", "pair_l_um"])
        .writes(["pair"])
        .emits(["pair-design"])
        .step("design-load", |s: &mut State| {
            let load_budget = (1.0 - s.alpha) * s.gout_total();
            let vdd = s.process.vdd().volts();
            // Headroom: the load stack must stay saturated up to the most
            // positive output the spec demands.
            let headroom = if s.spec.has_swing() {
                vdd - s.spec.output_swing().volts()
            } else {
                (vdd - 3.0).max(1.0)
            };
            let style = if s.load_cascoded {
                MirrorStyle::Cascode
            } else {
                MirrorStyle::Simple
            };
            let spec = MirrorSpec::new(Polarity::Pmos, s.i_tail / 2.0)
                .with_min_rout(1.0 / load_budget)
                .with_headroom(headroom)
                .with_only_style(style);
            match CurrentMirror::design_with(&spec, &s.process, &s.ctx) {
                Ok(m) => {
                    s.load = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("load-design", e.to_string()),
            }
        })
        .reads([
            "spec",
            "process",
            "ctx",
            "alpha",
            "gm1",
            "i_tail",
            "load_cascoded",
        ])
        .writes(["load"])
        .emits(["load-design"])
        .step("design-tail", |s: &mut State| {
            let spec = MirrorSpec::new(Polarity::Nmos, s.i_tail)
                .with_headroom(1.5)
                .with_only_style(MirrorStyle::Simple);
            match CurrentMirror::design_with(&spec, &s.process, &s.ctx) {
                Ok(m) => {
                    s.tail = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("tail-design", e.to_string()),
            }
        })
        .reads(["process", "ctx", "i_tail"])
        .writes(["tail"])
        .emits(["tail-design"])
        .step("bias-resistor", |s: &mut State| {
            let tail = s.tail.as_ref().expect("design-tail ran");
            let span = s.process.supply_span().volts();
            let drop = span - tail.input_voltage();
            if drop < 0.5 {
                return StepOutcome::failed(
                    "bias-headroom",
                    "no headroom left for the bias resistor",
                );
            }
            s.r_bias = drop / tail.spec().input_current();
            StepOutcome::Done
        })
        .reads(["process", "tail"])
        .writes(["r_bias"])
        .emits(["bias-headroom"])
        .step("check-swing", |s: &mut State| {
            let load = s.load.as_ref().expect("design-load ran");
            let tail = s.tail.as_ref().expect("design-tail ran");
            let pair = s.pair.as_ref().expect("design-pair ran");
            let vdd = s.process.vdd().volts();
            let vss = s.process.vss().volts();
            let hi = vdd - load.compliance();
            // Two floors limit the negative swing: the tail/pair compliance,
            // and — the binding one at mid-rail common mode — the pair
            // output device entering triode once the output drops more than
            // a (body-effect-corrected) threshold below its gate.
            let compliance_lo = vss + tail.compliance() + pair.vov();
            let nmos = s.process.nmos();
            let mut vgs1 = nmos.vth().volts() + pair.vov();
            for _ in 0..3 {
                let vsb = (-vgs1 - vss).max(0.0);
                vgs1 = nmos.vth().volts()
                    + nmos.gamma() * ((nmos.phi() + vsb).sqrt() - nmos.phi().sqrt())
                    + pair.vov();
            }
            let triode_lo = -(vgs1 - pair.vov()); // v_cm(=0) − Vth_eff
            let lo = compliance_lo.max(triode_lo);
            s.swing = (lo, hi);
            if s.spec.has_swing() {
                let need = s.spec.output_swing().volts();
                if hi < need || lo > -need {
                    return StepOutcome::failed(
                        "swing-short",
                        format!("achievable swing {lo:+.2} V … {hi:+.2} V misses ±{need:.1} V"),
                    );
                }
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "pair", "load", "tail"])
        .writes(["swing"])
        .emits(["swing-short"])
        .step("check-offset", |s: &mut State| {
            // The 5T OTA's inherent systematic offset: the two load-mirror
            // devices see different V_DS (diode voltage vs. the output at
            // mid-rail), so their currents mismatch by λ·ΔV_DS; referred
            // to the input through gm1. A cascoded load shields the bottom
            // devices and shrinks the error to ΔV·g_out/gm1.
            let load = s.load.as_ref().expect("design-load ran");
            let vdd = s.process.vdd().volts();
            let diode_v = vdd - load.input_voltage(); // output-branch DC at balance
            let delta_v = diode_v.abs(); // target output is 0 V
            s.offset_v = if s.load_cascoded {
                delta_v / load.rout() / s.gm1
            } else {
                let lambda = s.process.pmos().lambda(load.unit_geometry().l_um());
                lambda * delta_v * (s.i_tail / 2.0) / s.gm1
            };
            if s.spec.has_offset() && s.offset_v > s.spec.max_offset().volts() {
                return StepOutcome::failed(
                    "offset-high",
                    format!(
                        "systematic offset {:.2} mV exceeds the {:.2} mV ceiling",
                        s.offset_v * 1e3,
                        s.spec.max_offset().volts() * 1e3
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "gm1", "i_tail", "load", "load_cascoded"])
        .writes(["offset_v"])
        .emits(["offset-high"])
        .step("check-phase", |s: &mut State| {
            // Non-dominant pole at the mirror node: gm3 over the
            // capacitance hanging there (both mirror gates plus the pair
            // drain junction).
            let load = s.load.as_ref().expect("design-load ran");
            let pair = s.pair.as_ref().expect("design-pair ran");
            let gm3 = 2.0 * (s.i_tail / 2.0) / load.vov();
            let c_mirror = {
                let m3 = Mosfet::new(Polarity::Pmos, load.input_geometry(), &s.process);
                let vgs = load.vgs();
                let op = m3.operating_point(-vgs, -vgs, 0.0);
                let c3 = m3.capacitances(&op);
                let m1 = Mosfet::new(Polarity::Nmos, pair.geometry(), &s.process);
                let op1 = m1.operating_point(s.process.nmos().vth().volts() + pair.vov(), 2.0, 0.0);
                let c1 = m1.capacitances(&op1);
                2.0 * c3.cgs().farads() + c3.cdb().farads() + c1.drain_total().farads()
            };
            let p2 = gm3 / (2.0 * std::f64::consts::PI * c_mirror);
            let fu = s.gm1 / (2.0 * std::f64::consts::PI * s.spec.load().farads());
            s.pm_deg = 90.0 - (fu / p2).atan().to_degrees();
            if s.pm_deg < s.spec.phase_margin().degrees() {
                return StepOutcome::failed(
                    "pm-short",
                    format!(
                        "mirror pole at {p2:.3e} Hz leaves only {:.1}° of margin",
                        s.pm_deg
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "gm1", "i_tail", "pair", "load"])
        .writes(["pm_deg"])
        .emits(["pm-short"])
        .step("check-power", |s: &mut State| {
            let span = s.process.supply_span().volts();
            let power = span * 2.0 * s.i_tail; // tail branch + reference branch
            if s.spec.has_power() && power > s.spec.max_power().watts() {
                return StepOutcome::failed(
                    "power-high",
                    format!(
                        "quiescent power {:.2} mW exceeds the {:.2} mW budget",
                        power * 1e3,
                        s.spec.max_power().watts() * 1e3
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "i_tail"])
        .writes(NONE)
        .emits(["power-high"])
        .step("check-noise", |s: &mut State| {
            if !s.spec.has_noise() {
                return StepOutcome::Done;
            }
            let load = s.load.as_ref().expect("design-load ran");
            let gm3 = 2.0 * (s.i_tail / 2.0) / load.vov();
            let kt = 1.380649e-23 * 300.0;
            let noise = (2.0 * (8.0 / 3.0) * kt / s.gm1 * (1.0 + gm3 / s.gm1)).sqrt();
            if noise > s.spec.max_noise_v_rthz() {
                return StepOutcome::failed(
                    "noise-high",
                    format!(
                        "input noise {:.0} nV/√Hz exceeds the {:.0} nV/√Hz ceiling",
                        noise * 1e9,
                        s.spec.max_noise_v_rthz() * 1e9
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "gm1", "i_tail", "load"])
        .writes(NONE)
        .emits(["noise-high"])
        .step("check-slew", |s: &mut State| {
            if !s.spec.has_slew() {
                return StepOutcome::Done;
            }
            let sr = s.i_tail / s.cl_effective();
            if sr < s.spec.slew_rate().volts_per_second() * 0.99 {
                return StepOutcome::failed(
                    "slew-short",
                    format!(
                        "output parasitics hold the slew rate to {:.2} V/µs",
                        sr / 1e6
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "i_tail", "pair", "load"])
        .writes(NONE)
        .emits(["slew-short"])
        .step("predict", |s: &mut State| {
            let pair = s.pair.as_ref().expect("design-pair ran");
            let load = s.load.as_ref().expect("design-load ran");
            let tail = s.tail.as_ref().expect("design-tail ran");
            let span = s.process.supply_span().volts();
            let gain = s.gm1 / (pair.gds() + 1.0 / load.rout());
            // Classic mirror-loaded pair: A_cm ≈ 1/(2·gm3·R_tail), so
            // CMRR ≈ A_dm · 2·gm3·R_tail (systematic component only).
            let gm3 = 2.0 * (s.i_tail / 2.0) / load.vov();
            let cmrr = gain * 2.0 * gm3 * tail.rout();
            // Thermal floor: both pair devices plus both mirror devices,
            // the latter weighted by (gm3/gm1)².
            let kt = 1.380649e-23 * 300.0;
            let gm1_side = s.gm1;
            let noise = (2.0 * (8.0 / 3.0) * kt / gm1_side * (1.0 + gm3 / gm1_side)).sqrt();
            s.predicted = Some(Predicted {
                dc_gain_db: 20.0 * gain.log10(),
                unity_gain_hz: s.gm1 / (2.0 * std::f64::consts::PI * s.spec.load().farads()),
                phase_margin_deg: s.pm_deg,
                slew_v_per_s: s.i_tail / s.cl_effective(),
                swing_neg_v: s.swing.0,
                swing_pos_v: s.swing.1,
                offset_v: s.offset_v,
                power_w: span * 2.0 * s.i_tail,
                cmrr_db: 20.0 * cmrr.log10(),
                noise_v_rthz: noise,
            });
            StepOutcome::Done
        })
        .reads([
            "spec", "process", "gm1", "i_tail", "pair", "load", "tail", "pm_deg", "swing",
            "offset_v",
        ])
        .writes(["predicted"])
        .emits(NONE)
        // ---- patch rules (consulted in order) ----
        .rule(
            "cascode-load",
            |s: &State, f| {
                !s.load_cascoded
                    && matches!(
                        f.code(),
                        "pair-gain-short" | "load-design" | "offset-high" | "pm-short"
                    )
            },
            |s: &mut State| {
                s.load_cascoded = true;
                s.alpha = ALPHA_CASCODE;
                s.notes
                    .push("cascoded the load mirror for gain/offset".to_owned());
                PatchAction::RestartFrom("gain-budget".into())
            },
        )
        .on_codes(["pair-gain-short", "load-design", "offset-high", "pm-short"])
        .guarded()
        .reads(["load_cascoded"])
        .writes(["load_cascoded", "alpha", "notes"])
        .restarts_from("gain-budget")
        .rule(
            "boost-tail-for-slew",
            |s: &State, f| f.code() == "slew-short" && s.slew_boost < 2.5,
            |s: &mut State| {
                s.slew_boost *= 1.25;
                PatchAction::RestartFrom("size-input-gm".into())
            },
        )
        .on_codes(["slew-short"])
        .guarded()
        .reads(["slew_boost"])
        .writes(["slew_boost"])
        .restarts_from("size-input-gm")
        .rule(
            "relax-input-overdrive",
            |s: &State, f| {
                // When slew (not bandwidth) set the tail current, f_u
                // overshoots its spec; trading that excess back (higher
                // V_ov → lower gm1) buys phase margin for free.
                let fu = s.gm1 / (2.0 * std::f64::consts::PI * s.spec.load().farads());
                // Guard against fighting the gain rules: raising V_ov
                // lengthens the pair the gain budget demands; only fire
                // while that stays manufacturable.
                let l_projected =
                    s.process.nmos().lambda_l() * (s.vov1 * 1.4) * s.spec.dc_gain_linear()
                        / (2.0 * s.alpha);
                f.code() == "pm-short"
                    && s.vov1 < 0.45
                    && fu > 1.3 * s.spec.unity_gain_freq().hertz()
                    && l_projected <= MAX_L_FACTOR * s.process.min_length().micrometers()
            },
            |s: &mut State| {
                s.vov1 *= 1.4;
                s.notes.push(format!(
                    "raised pair overdrive to {:.2} V, trading excess bandwidth \
                     for phase margin",
                    s.vov1
                ));
                PatchAction::RestartFrom("size-input-gm".into())
            },
        )
        .on_codes(["pm-short"])
        .guarded()
        .reads(["spec", "process", "gm1", "vov1", "alpha"])
        .writes(["vov1", "notes"])
        .restarts_from("size-input-gm")
        .rule(
            "lower-pair-overdrive",
            |s: &State, f| matches!(f.code(), "pair-gain-short" | "noise-high") && s.vov1 > 0.11,
            |s: &mut State| {
                s.vov1 /= 2.0;
                s.notes.push(format!(
                    "lowered pair overdrive to {:.2} V for gain",
                    s.vov1
                ));
                PatchAction::RestartFrom("size-input-gm".into())
            },
        )
        .on_codes(["pair-gain-short", "noise-high"])
        .guarded()
        .reads(["vov1"])
        .writes(["vov1", "notes"])
        .restarts_from("size-input-gm")
        .rule(
            "swing-gain-conflict",
            |s: &State, f| f.code() == "swing-short" && s.load_cascoded,
            |_s: &mut State| {
                PatchAction::Abort(
                    "the cascoded load the gain requires cannot meet the output \
                     swing — one-stage style cannot satisfy gain and swing \
                     simultaneously"
                        .into(),
                )
            },
        )
        .on_codes(["swing-short"])
        .guarded()
        .reads(["load_cascoded"])
        .writes(NONE)
        .aborts()
        .rule(
            "inherent-offset",
            |s: &State, f| f.code() == "offset-high" && s.load_cascoded,
            |_s: &mut State| {
                PatchAction::Abort(
                    "the one-stage style's inherent systematic offset exceeds the \
                     specification"
                        .into(),
                )
            },
        )
        .on_codes(["offset-high"])
        .guarded()
        .reads(["load_cascoded"])
        .writes(NONE)
        .aborts()
        .rule(
            "give-up-gain",
            |_, f| matches!(f.code(), "pair-gain-short" | "load-design"),
            |_s: &mut State| {
                PatchAction::Abort(
                    "gain infeasible for the one-stage style (with swing and \
                     offset constraints limiting the load)"
                        .into(),
                )
            },
        )
        .on_codes(["pair-gain-short", "load-design"])
        .writes(NONE)
        .aborts()
        .rule(
            "give-up",
            |_, f| {
                matches!(
                    f.code(),
                    "spec-unsupported"
                        | "pair-design"
                        | "tail-design"
                        | "bias-headroom"
                        | "swing-short"
                        | "pm-short"
                        | "power-high"
                        | "slew-short"
                        | "noise-high"
                )
            },
            |_s: &mut State| PatchAction::Abort("one-stage style infeasible".into()),
        )
        .on_codes([
            "spec-unsupported",
            "pair-design",
            "tail-design",
            "bias-headroom",
            "swing-short",
            "pm-short",
            "power-high",
            "slew-short",
            "noise-high",
        ])
        .writes(NONE)
        .aborts()
        .build()
}

/// Runs the one-stage plan and assembles the sized schematic.
///
/// # Errors
///
/// [`StyleError::Plan`] when the plan (after patching) cannot meet the
/// specification; [`StyleError::Netlist`] for template assembly bugs.
pub fn design_one_stage(spec: &OpAmpSpec, process: &Process) -> Result<OpAmpDesign, StyleError> {
    let tel = Telemetry::disabled();
    design_one_stage_with(spec, process, &tel)
}

/// [`design_one_stage`] with telemetry: plan execution and netlist
/// assembly are recorded as spans/events on `tel`.
///
/// # Errors
///
/// Same contract as [`design_one_stage`].
pub fn design_one_stage_with(
    spec: &OpAmpSpec,
    process: &Process,
    tel: &Telemetry,
) -> Result<OpAmpDesign, StyleError> {
    run_style::<OneStageDef>(spec, process, &DesignContext::new(tel))
}

/// The one-stage OTA's [`StyleDef`]: the plan above plus state
/// construction. Everything else is the shared [`run_style`] engine.
pub(super) struct OneStageDef;

impl StyleDef for OneStageDef {
    const STYLE: OpAmpStyle = OpAmpStyle::OneStageOta;
    type State<'a> = State<'a>;

    fn build_plan<'a>() -> Plan<State<'a>> {
        build_plan()
    }

    fn init<'a>(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> State<'a> {
        State::new(spec, process, ctx)
    }
}

impl StyleState for State<'_> {
    fn emit(&self) -> Result<Circuit, oasys_netlist::ValidateError> {
        emit(self)
    }

    fn area(&self) -> AreaEstimate {
        let pair = self.pair.as_ref().expect("plan completed");
        let load = self.load.as_ref().expect("plan completed");
        let tail = self.tail.as_ref().expect("plan completed");
        let w_min = self.process.min_width().micrometers();
        let r_area = self.r_bias / BIAS_SHEET_OHMS * w_min * w_min;
        pair.area() + load.area() + tail.area() + AreaEstimate::from_um2(r_area, 0.0)
    }

    fn predicted(&self) -> Predicted {
        self.predicted.expect("predict step ran")
    }

    fn take_notes(&mut self) -> Vec<String> {
        std::mem::take(&mut self.notes)
    }
}

/// Assembles the OTA netlist from the designed sub-blocks.
fn emit(state: &State) -> Result<Circuit, oasys_netlist::ValidateError> {
    let pair = state.pair.as_ref().expect("plan completed");
    let load = state.load.as_ref().expect("plan completed");
    let tail = state.tail.as_ref().expect("plan completed");

    let mut c = Circuit::new("one-stage OTA");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let out = c.node("out");
    let tail_node = c.node("tail");
    let d1 = c.node("d1");
    let nbias = c.node("nbias");
    for (label, node) in [
        ("inp", inp),
        ("inn", inn),
        ("out", out),
        ("vdd", vdd),
        ("vss", vss),
    ] {
        c.mark_port(label, node);
    }

    // Differential pair: M1 gate = inp drains into the mirror diode (d1),
    // M2 gate = inn drains into the output.
    pair.emit(&mut c, "DP_", inp, inn, out, d1, tail_node, vss)?;
    // PMOS load mirror: diode side at d1, mirrored side at out.
    load.emit(&mut c, "LD_", d1, out, vdd, None)?;
    // NMOS tail mirror fed from the bias resistor.
    tail.emit(&mut c, "TL_", nbias, tail_node, vss, None)?;
    c.add_resistor("RBIAS", vdd, nbias, state.r_bias)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;
    use oasys_process::builtin;

    #[test]
    fn plan_analyzes_clean() {
        let report = analyze_plan();
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn case_a_designs_successfully() {
        let design = design_one_stage(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        assert_eq!(design.style(), OpAmpStyle::OneStageOta);
        let p = design.predicted();
        assert!(p.dc_gain_db >= 60.0, "gain {:.1} dB", p.dc_gain_db);
        assert!(p.unity_gain_hz >= 0.5e6);
        assert!(p.phase_margin_deg >= 45.0);
        assert!(p.slew_v_per_s >= 2e6 * 0.99);
        assert!(p.swing_symmetric() >= 1.2);
        // Netlist shape: 2 pair + load mirror + tail mirror devices.
        assert!(design.device_count() >= 6);
        design.circuit().validate().unwrap();
    }

    #[test]
    fn case_a_cascodes_the_load_for_gain() {
        let design = design_one_stage(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        assert!(
            design.notes().iter().any(|n| n.contains("cascoded")),
            "notes: {:?}",
            design.notes()
        );
        assert!(design.trace().rule_firings() >= 1);
    }

    #[test]
    fn case_b_fails_as_the_paper_reports() {
        let err = design_one_stage(&test_cases::spec_b(), &builtin::cmos_5um()).unwrap_err();
        let reason = err.reason();
        assert!(
            reason.contains("gain") || reason.contains("swing") || reason.contains("offset"),
            "unexpected failure reason: {reason}"
        );
    }

    #[test]
    fn case_c_fails() {
        assert!(design_one_stage(&test_cases::spec_c(), &builtin::cmos_5um()).is_err());
    }

    #[test]
    fn low_gain_spec_keeps_simple_load() {
        let spec = test_cases::spec_a().with_dc_gain_db(40.0);
        let design = design_one_stage(&spec, &builtin::cmos_5um()).unwrap();
        assert!(
            design.notes().is_empty(),
            "no patching expected at 40 dB: {:?}",
            design.notes()
        );
        // Simple load: 2 pair + 2 load + 2 tail = 6 devices.
        assert_eq!(design.device_count(), 6);
    }

    #[test]
    fn high_gain_uses_more_devices() {
        let lo = design_one_stage(
            &test_cases::spec_a().with_dc_gain_db(40.0),
            &builtin::cmos_5um(),
        )
        .unwrap();
        let hi = design_one_stage(
            &test_cases::spec_a().with_dc_gain_db(61.0),
            &builtin::cmos_5um(),
        )
        .unwrap();
        assert!(
            hi.device_count() > lo.device_count(),
            "cascode adds devices"
        );
    }

    #[test]
    fn absurd_gain_aborts_with_trace() {
        let spec = test_cases::spec_a().with_dc_gain_db(100.0);
        let err = design_one_stage(&spec, &builtin::cmos_5um()).unwrap_err();
        let trace = err.trace().expect("plan failure carries a trace");
        assert!(
            trace.rule_firings() >= 1,
            "rules should have tried patching"
        );
    }

    #[test]
    fn bigger_load_means_bigger_devices() {
        let small = design_one_stage(&test_cases::spec_a(), &builtin::cmos_5um()).unwrap();
        let large = design_one_stage(
            &test_cases::spec_a().with_load_pf(20.0),
            &builtin::cmos_5um(),
        )
        .unwrap();
        assert!(large.area().total_um2() > small.area().total_um2());
    }
}
