//! Fixed op-amp topology templates and their translation plans.
//!
//! Each style module owns (a) a hierarchical template — which sub-blocks
//! connect where — and (b) the stored plan that translates op-amp
//! specifications into sub-block specifications, with the patch rules the
//! paper describes (cascode a stage, skew the gain partition, insert a
//! level shifter, abort when the style provably cannot meet the spec).

mod folded_cascode;
mod one_stage;
mod two_stage;

pub use folded_cascode::{design_folded_cascode, design_folded_cascode_with};
pub use one_stage::{design_one_stage, design_one_stage_with};
pub use two_stage::{design_two_stage, design_two_stage_with};

use crate::datasheet::Predicted;
use crate::spec::OpAmpSpec;
use oasys_blocks::AreaEstimate;
use oasys_netlist::Circuit;
use oasys_plan::{first_infeasible, DesignContext, PerfRelation, PlanError, PlanExecutor, Trace};
use oasys_process::Process;
use oasys_telemetry::Telemetry;
use std::error::Error;
use std::fmt;

/// The op-amp design styles OASYS knows.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpAmpStyle {
    /// One-stage operational transconductance amplifier (5T OTA, with an
    /// optional cascoded load).
    OneStageOta,
    /// Two-stage unbuffered, Miller-compensated op amp (with optional
    /// cascoding and level shifter).
    TwoStage,
    /// Folded-cascode OTA (extension — the paper's stated "immediate
    /// plan").
    FoldedCascode,
}

impl OpAmpStyle {
    /// All styles, in the order the breadth-first selector tries them.
    pub const ALL: [OpAmpStyle; 3] = [
        OpAmpStyle::OneStageOta,
        OpAmpStyle::TwoStage,
        OpAmpStyle::FoldedCascode,
    ];

    /// Resolves a style from its display name (`"one-stage OTA"`,
    /// `"two-stage"`, `"folded cascode"`), as used by the `--styles`
    /// filter and the [`oasys_plan::BlockDesigner`] string interface.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.to_string() == name)
    }
}

/// A style's declarative knowledge: its translation plan and the hooks
/// [`run_style`] needs around plan execution. Each style module supplies
/// exactly this — the shared engine owns the run loop, telemetry, and
/// netlist-assembly error handling.
pub(crate) trait StyleDef {
    /// The style this definition realizes.
    const STYLE: OpAmpStyle;
    /// The mutable design state the plan threads; borrows the invoking
    /// [`DesignContext`] so steps can reach sub-block designers with
    /// spans and memoization.
    type State<'a>: StyleState;
    /// Builds the stored translation plan (steps and patch rules).
    fn build_plan<'a>() -> oasys_plan::Plan<Self::State<'a>>;
    /// Initial state for one run against `spec` on `process`.
    fn init<'a>(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> Self::State<'a>;
}

/// What a completed style run must yield: the assembled netlist, the
/// area estimate the selector ranks on, the predicted datasheet, and the
/// patch-rule notes.
pub(crate) trait StyleState {
    /// Assembles the sized schematic from the designed sub-blocks.
    fn emit(&self) -> Result<Circuit, oasys_netlist::ValidateError>;
    /// Estimated layout area of the design.
    fn area(&self) -> AreaEstimate;
    /// The performance predicted by the plan's circuit equations.
    fn predicted(&self) -> Predicted;
    /// Takes the accumulated patch-rule notes out of the state.
    fn take_notes(&mut self) -> Vec<String>;
}

/// Runs one style definition end to end: executes its plan on the
/// context's telemetry, assembles and validates the netlist under an
/// `assemble-netlist` span, and packages the [`OpAmpDesign`].
///
/// This is the single engine behind all three `design_*` entry points;
/// the per-style modules contribute only their [`StyleDef`].
pub(crate) fn run_style<D: StyleDef>(
    spec: &OpAmpSpec,
    process: &Process,
    ctx: &DesignContext<'_>,
) -> Result<OpAmpDesign, StyleError> {
    let tel = ctx.telemetry();
    let plan = D::build_plan();
    let deadline = ctx.deadline().clone();
    let mut state = D::init(spec, process, ctx.clone());
    let trace = PlanExecutor::new().run_with_deadline(&plan, &mut state, tel, &deadline)?;
    static ASSEMBLE: std::sync::OnceLock<oasys_telemetry::Sym> = std::sync::OnceLock::new();
    let assembly = tel.span_sym(*ASSEMBLE.get_or_init(|| oasys_telemetry::sym("assemble-netlist")));
    let circuit = state
        .emit()
        .map_err(|e| StyleError::Netlist(e.to_string()))?;
    circuit
        .validate()
        .map_err(|e| StyleError::Netlist(e.to_string()))?;
    drop(assembly);
    Ok(OpAmpDesign {
        style: D::STYLE,
        circuit,
        area: state.area(),
        predicted: state.predicted(),
        trace,
        notes: state.take_notes(),
    })
}

/// As [`design_style_with`], but inside an existing [`DesignContext`]:
/// sub-block invocations inherit the context's memo cache and telemetry
/// scope. This is the dispatch the breadth-first selector uses.
pub(crate) fn design_style_in(
    style: OpAmpStyle,
    spec: &OpAmpSpec,
    process: &Process,
    ctx: &DesignContext<'_>,
) -> Result<OpAmpDesign, StyleError> {
    match style {
        OpAmpStyle::OneStageOta => run_style::<one_stage::OneStageDef>(spec, process, ctx),
        OpAmpStyle::TwoStage => run_style::<two_stage::TwoStageDef>(spec, process, ctx),
        OpAmpStyle::FoldedCascode => {
            run_style::<folded_cascode::FoldedCascodeDef>(spec, process, ctx)
        }
    }
}

/// Runs one style's translation plan against a specification, recording
/// spans, events and counters into `tel`.
///
/// This is the instrumented dispatch the selector uses; plain callers can
/// reach the same designs through the per-style `design_*` functions.
///
/// # Errors
///
/// [`StyleError::Plan`] when the style cannot meet the specification;
/// [`StyleError::Netlist`] for template assembly bugs.
pub fn design_style_with(
    style: OpAmpStyle,
    spec: &crate::spec::OpAmpSpec,
    process: &oasys_process::Process,
    tel: &Telemetry,
) -> Result<OpAmpDesign, StyleError> {
    design_style_in(style, spec, process, &DesignContext::new(tel))
}

/// Runs the static plan analyzer over a style's stored synthesis plan.
///
/// The built-in plans declare their dataflow (reads/writes/emitted failure
/// codes), so [`oasys_plan::analyze()`] can check them for use-before-def,
/// unreachable steps, dangling restart targets, shadowed rules and
/// never-firing rules. The built-ins are expected to analyze clean; a
/// non-empty report indicates a knowledge-base bug.
#[must_use]
pub fn analyze_plan(style: OpAmpStyle) -> oasys_lint::Report {
    match style {
        OpAmpStyle::OneStageOta => one_stage::analyze_plan(),
        OpAmpStyle::TwoStage => two_stage::analyze_plan(),
        OpAmpStyle::FoldedCascode => folded_cascode::analyze_plan(),
    }
}

/// Runs [`analyze_plan`] over every built-in style and merges the reports.
/// The merged report is re-normalized so diagnostics across plans come out
/// in stable (code, site) order with duplicates removed.
#[must_use]
pub fn analyze_all_plans() -> oasys_lint::Report {
    let mut report = oasys_lint::Report::default();
    for style in OpAmpStyle::ALL {
        report.merge(analyze_plan(style));
    }
    report.normalize();
    report
}

/// The overdrive floor the static gain ceilings assume, V.
///
/// Strictly at the minimum any plan's patch rules can reach (the
/// lower-overdrive rules stop lowering at 0.06 V and divide by at most
/// 1.5, so no plan ever operates a pair below 0.04 V). Using the floor —
/// rather than each plan's larger initial overdrive — keeps the ceilings
/// sound over-approximations of what the runtime search can achieve.
pub(crate) const STATIC_VOV_FLOOR: f64 = 0.04;

/// A sound ceiling on one gain stage's DC gain (linear) on a process
/// with channel-length modulation `lambda_l` (V⁻¹·µm) and minimum
/// length `l_min_um`: intrinsic gain `gm/gout = (2/vov)·(L/λ_L)`, with
/// the overdrive at [`STATIC_VOV_FLOOR`] and the channel length at the
/// plans' shared `max_l_factor`× minimum-length cap. Every quantity is
/// taken at its most favorable extreme, so no plan execution can exceed
/// the ceiling.
pub(crate) fn stage_gain_ceiling(lambda_l: f64, l_min_um: f64, max_l_factor: f64) -> f64 {
    (2.0 / STATIC_VOV_FLOOR) * (max_l_factor * l_min_um / lambda_l)
}

/// The style's statically declared performance relations against `spec`
/// on `process`: for each constrained performance, the interval the spec
/// requires and a sound over-approximation of what the style can
/// achieve.
pub(crate) fn perf_relations(
    style: OpAmpStyle,
    spec: &OpAmpSpec,
    process: &Process,
) -> Vec<PerfRelation> {
    match style {
        OpAmpStyle::OneStageOta => one_stage::perf_relations(spec, process),
        OpAmpStyle::TwoStage => two_stage::perf_relations(spec, process),
        OpAmpStyle::FoldedCascode => folded_cascode::perf_relations(spec, process),
    }
}

/// Static feasibility of a style for `spec` on `process`, decided from
/// the style's declared performance relations without running its plan.
///
/// Returns the first provably infeasible relation's explanation, or
/// `Ok(())` when every required interval intersects its achievable one.
/// Sound: the achievable intervals over-approximate the runtime search,
/// so a rejected style could never have produced a design — pruning it
/// changes which work runs, never which specs succeed.
///
/// # Errors
///
/// The infeasible relation's explanation
/// (see [`oasys_plan::PerfRelation::explain`]).
pub fn static_feasibility(
    style: OpAmpStyle,
    spec: &OpAmpSpec,
    process: &Process,
) -> Result<(), String> {
    let relations = perf_relations(style, spec, process);
    match first_infeasible(&relations) {
        Some(relation) => Err(relation.explain()),
        None => Ok(()),
    }
}

impl fmt::Display for OpAmpStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpAmpStyle::OneStageOta => "one-stage OTA",
            OpAmpStyle::TwoStage => "two-stage",
            OpAmpStyle::FoldedCascode => "folded cascode",
        })
    }
}

/// A completed style design: the sized schematic plus everything the
/// selector and the verifier need.
///
/// The circuit's declared ports are `inp`, `inn`, `out`, `vdd`, `vss`;
/// supplies and stimuli are *not* included — the verification harness
/// adds them.
#[derive(Clone, Debug)]
pub struct OpAmpDesign {
    pub(crate) style: OpAmpStyle,
    pub(crate) circuit: Circuit,
    pub(crate) area: AreaEstimate,
    pub(crate) predicted: Predicted,
    pub(crate) trace: Trace,
    pub(crate) notes: Vec<String>,
}

impl OpAmpDesign {
    /// The style this design instantiates.
    #[must_use]
    pub fn style(&self) -> OpAmpStyle {
        self.style
    }

    /// The sized schematic. Ports: `inp`, `inn`, `out`, `vdd`, `vss`.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Estimated layout area (active + compensation capacitor), the
    /// selection criterion.
    #[must_use]
    pub fn area(&self) -> AreaEstimate {
        self.area
    }

    /// The performance the plan predicts from its circuit equations.
    #[must_use]
    pub fn predicted(&self) -> &Predicted {
        &self.predicted
    }

    /// The plan-execution trace (the paper's Figure 3 in data form).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Human-readable design decisions taken by patch rules
    /// (e.g. `"cascoded first-stage load"`).
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Number of MOSFETs in the schematic.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.circuit.mosfets().count()
    }
}

impl fmt::Display for OpAmpDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} design: {} devices, area {}",
            self.style,
            self.device_count(),
            self.area
        )
    }
}

/// Why a style could not meet a specification.
#[derive(Debug, Clone)]
pub enum StyleError {
    /// The style's plan failed (carries the trace, which explains where).
    Plan(PlanError),
    /// The assembled netlist failed validation — a template bug, not a
    /// spec problem.
    Netlist(String),
    /// The style was pruned before its plan ran: a declared performance
    /// relation's required interval provably cannot intersect what the
    /// style can achieve (carries the relation's explanation).
    Infeasible(String),
}

impl StyleError {
    /// A one-line reason suitable for the candidate table.
    #[must_use]
    pub fn reason(&self) -> String {
        match self {
            StyleError::Plan(e) => e.to_string(),
            StyleError::Netlist(e) => format!("netlist assembly failed: {e}"),
            StyleError::Infeasible(e) => format!("statically-infeasible: {e}"),
        }
    }

    /// The plan trace, when the failure came from plan execution.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            StyleError::Plan(e) => Some(e.trace()),
            StyleError::Netlist(_) | StyleError::Infeasible(_) => None,
        }
    }
}

impl fmt::Display for StyleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason())
    }
}

impl Error for StyleError {}

impl From<PlanError> for StyleError {
    fn from(e: PlanError) -> Self {
        StyleError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_display() {
        assert_eq!(OpAmpStyle::OneStageOta.to_string(), "one-stage OTA");
        assert_eq!(OpAmpStyle::TwoStage.to_string(), "two-stage");
        assert_eq!(OpAmpStyle::FoldedCascode.to_string(), "folded cascode");
        assert_eq!(OpAmpStyle::ALL.len(), 3);
    }
}
