//! The folded-cascode OTA style — the extension the paper names as its
//! immediate plan: *"Our immediate plan is to expand the breadth of
//! circuit knowledge in OASYS to include more op amp topologies (e.g.,
//! folded cascode and fully differential styles)."*
//!
//! Template: NMOS differential pair whose drains are *folded* into two
//! PMOS current-source branches; PMOS cascodes carry the signal down into
//! a wide-swing NMOS cascode mirror that forms the output. A single stage
//! with near-two-stage gain, cascode-quality systematic offset, and no
//! compensation capacitor (the load compensates).
//!
//! The style trades power (two extra full branches) and headroom
//! (stacked cascodes) for that gain, so area-based selection usually
//! prefers the simple OTA at low gain and the two-stage at very high
//! gain, leaving the folded cascode a middle band — a genuinely
//! three-way Figure 7.

use super::{run_style, OpAmpDesign, OpAmpStyle, StyleDef, StyleError, StyleState};
use crate::datasheet::Predicted;
use crate::spec::OpAmpSpec;
use oasys_blocks::area::AreaEstimate;
use oasys_blocks::diffpair::{DiffPair, DiffPairSpec};
use oasys_blocks::mirror::{CurrentMirror, MirrorSpec, MirrorStyle};
use oasys_mos::{sizing, Geometry, Mosfet};
use oasys_netlist::Circuit;
use oasys_plan::{DesignContext, Expr, Interval, PatchAction, PerfRelation, Plan, StepOutcome};
use oasys_process::{Polarity, Process};
use oasys_telemetry::Telemetry;
use oasys_units::Dimension;

/// Initial pair overdrive target, V.
const VOV1_INIT: f64 = 0.20;
/// Cascode/current-source overdrive, V.
const VOV_C: f64 = 0.25;
/// Sheet resistance assumed for bias resistors, Ω/square.
const BIAS_SHEET_OHMS: f64 = 10_000.0;

/// Empty annotation list (the builder cannot infer element types from `[]`).
const NONE: [&str; 0] = [];

pub(super) struct State<'a> {
    spec: OpAmpSpec,
    process: Process,
    /// The invoking design context: sub-block design steps record
    /// `block:<level>` spans and memoize through it.
    ctx: DesignContext<'a>,
    vov1: f64,
    gm1: f64,
    i_tail: f64,
    pair_l_um: f64,
    pair: Option<DiffPair>,
    tail: Option<CurrentMirror>,
    /// NMOS wide-swing output mirror.
    out_mirror: Option<CurrentMirror>,
    /// PMOS current-source geometry (M3/M4).
    p_source: Option<Geometry>,
    /// PMOS cascode geometry (M5/M6).
    p_cascode: Option<Geometry>,
    /// Bias-chain diode geometries.
    p_diode: Option<Geometry>,
    n_diode: Option<Geometry>,
    r_tail: f64,
    r_psrc: f64,
    r_pcasc: f64,
    r_ncasc: f64,
    rout: f64,
    swing: (f64, f64),
    offset_v: f64,
    pm_deg: f64,
    predicted: Option<Predicted>,
    notes: Vec<String>,
}

impl<'a> State<'a> {
    fn new(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> Self {
        Self {
            spec: *spec,
            process: process.clone(),
            ctx,
            vov1: VOV1_INIT,
            gm1: 0.0,
            i_tail: 0.0,
            pair_l_um: 0.0,
            pair: None,
            tail: None,
            out_mirror: None,
            p_source: None,
            p_cascode: None,
            p_diode: None,
            n_diode: None,
            r_tail: 0.0,
            r_psrc: 0.0,
            r_pcasc: 0.0,
            r_ncasc: 0.0,
            rout: 0.0,
            swing: (0.0, 0.0),
            offset_v: 0.0,
            pm_deg: 0.0,
            predicted: None,
            notes: Vec::new(),
        }
    }

    /// Fold-branch standing current (each PMOS source carries the full
    /// tail current so the branch never starves during slewing).
    fn i_fold(&self) -> f64 {
        self.i_tail
    }

    /// Branch current through each cascode at balance.
    fn i_branch(&self) -> f64 {
        self.i_fold() - self.i_tail / 2.0
    }
}

/// Statically analyzes the stored plan (see [`oasys_plan::analyze`]).
pub(super) fn analyze_plan() -> oasys_lint::Report {
    oasys_plan::analyze(&build_plan())
}

/// The folded-cascode style's declared performance relations (see
/// [`super::perf_relations`]).
///
/// The cascoded output stacks two intrinsic gains (`gm1 · rout` with
/// `rout ≈ gm·ro²`), so the ceiling is the squared single-stage bound —
/// computed from the smaller channel-length-modulation coefficient and
/// the shared 4× channel-length cap, both at their favorable extremes.
/// The swing relation mirrors `check-spec` exactly: two stacked
/// overdrives on each side of the output plus tail headroom.
pub(super) fn perf_relations(spec: &OpAmpSpec, process: &Process) -> Vec<PerfRelation> {
    let lambda = process.nmos().lambda_l().min(process.pmos().lambda_l());
    let stage = super::stage_gain_ceiling(lambda, process.min_length().micrometers(), 4.0);
    let ceiling = stage * stage;
    let mut relations = vec![PerfRelation::new(
        "dc-gain",
        "dB",
        Interval::point(spec.dc_gain().db()),
        Interval::new(0.0, 20.0 * ceiling.log10()),
    )];
    if spec.has_swing() {
        let span = process.supply_span().volts();
        relations.push(PerfRelation::new(
            "output-swing",
            "V",
            Interval::point(spec.output_swing().volts()),
            Interval::at_most((span - 4.0 * VOV_C - 0.4) / 2.0),
        ));
    }
    relations
}

fn build_plan<'a>() -> Plan<State<'a>> {
    Plan::<State>::builder("folded cascode")
        .inputs(["spec", "process", "ctx", "vov1", "notes"])
        // Knob domain for the interval analyzer: the lower-overdrive
        // rule divides by 1.5 while above 0.06 V, so 0.04 V bounds it.
        .input_domain("vov1", Interval::new(0.04, 0.5), Dimension::VOLTAGE)
        .step("check-spec", |s: &mut State| {
            // Two stacked overdrives on each side of the output.
            let span = s.process.supply_span().volts();
            if s.spec.has_swing() && 2.0 * s.spec.output_swing().volts() > span - 4.0 * VOV_C - 0.4
            {
                return StepOutcome::failed(
                    "spec-unsupported",
                    "stacked cascodes cannot leave that much swing",
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process"])
        .writes(NONE)
        .emits(["spec-unsupported"])
        .step("size-input", |s: &mut State| {
            let gm_min = 2.0
                * std::f64::consts::PI
                * s.spec.unity_gain_freq().hertz()
                * s.spec.load().farads();
            let i_slew = s.spec.slew_rate().volts_per_second() * s.spec.load().farads();
            s.i_tail = i_slew.max(gm_min * s.vov1).max(1e-6);
            s.gm1 = s.i_tail / s.vov1;
            StepOutcome::Done
        })
        .reads(["spec", "vov1"])
        .writes(["gm1", "i_tail"])
        // Spec-derived floors are opaque, so `i_tail` degrades to
        // unknown; the divisor `vov1` has a declared zero-free domain.
        .transfer(
            "i_tail",
            Expr::var("i_slew")
                .max(Expr::var("gm_min").mul(Expr::var("vov1")))
                .max(Expr::qty(1e-6, Dimension::CURRENT)),
        )
        .transfer("gm1", Expr::var("i_tail").div(Expr::var("vov1")))
        .emits(NONE)
        .step("design-pair", |s: &mut State| {
            // The pair's r_o barely matters (the fold node is low
            // impedance), so minimum length serves.
            s.pair_l_um = s.process.min_length().micrometers();
            let spec =
                DiffPairSpec::new(Polarity::Nmos, s.gm1, s.i_tail).with_length_um(s.pair_l_um);
            match DiffPair::design_with(&spec, &s.process, &s.ctx) {
                Ok(p) => {
                    s.pair = Some(p);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("pair-design", e.to_string()),
            }
        })
        .reads(["process", "ctx", "gm1", "i_tail"])
        .writes(["pair_l_um", "pair"])
        .emits(["pair-design"])
        .step("design-branches", |s: &mut State| {
            // PMOS current sources (carry i_fold) and cascodes (carry the
            // branch current), both at the cascode overdrive.
            let p = s.process.pmos();
            let l_min = s.process.min_length().micrometers();
            let w_min = s.process.min_width().micrometers();
            let make = |current: f64| -> Result<Geometry, String> {
                let wl = sizing::w_over_l_from_id_vov(current, VOV_C, p.kprime());
                let w = ((wl * l_min).max(w_min) / 0.5).ceil() * 0.5;
                Geometry::new_um(w, l_min).map_err(|e| e.to_string())
            };
            match (make(s.i_fold()), make(s.i_branch())) {
                (Ok(src), Ok(casc)) => {
                    s.p_source = Some(src);
                    s.p_cascode = Some(casc);
                    StepOutcome::Done
                }
                (Err(e), _) | (_, Err(e)) => StepOutcome::failed("branch-design", e),
            }
        })
        .reads(["process", "i_tail"])
        .writes(["p_source", "p_cascode"])
        .emits(["branch-design"])
        .step("design-output-mirror", |s: &mut State| {
            // Wide-swing NMOS cascode mirror at the bottom: its r_out and
            // the PMOS cascode's r_out form the output resistance the
            // gain needs.
            let need_rout = 2.0 * s.spec.dc_gain_linear() / s.gm1;
            let vss_budget = if s.spec.has_swing() {
                s.process.vss().volts().abs() - s.spec.output_swing().volts()
            } else {
                1.0
            };
            let spec = MirrorSpec::new(Polarity::Nmos, s.i_branch())
                .with_min_rout(need_rout)
                .with_headroom(vss_budget.max(0.5))
                .with_only_style(MirrorStyle::WideSwing);
            match CurrentMirror::design_with(&spec, &s.process, &s.ctx) {
                Ok(m) => {
                    s.out_mirror = Some(m);
                    StepOutcome::Done
                }
                Err(e) => StepOutcome::failed("gain-short", e.to_string()),
            }
        })
        .reads(["spec", "process", "ctx", "gm1", "i_tail"])
        .writes(["out_mirror"])
        .emits(["gain-short"])
        .step("check-gain", |s: &mut State| {
            // Rout = (gm·ro·ro_eff of the PMOS side) ∥ (mirror r_out).
            let p = s.process.pmos();
            let l_min = s.process.min_length().micrometers();
            let lambda_p = p.lambda(l_min);
            let ro_src = 1.0 / (lambda_p * s.i_fold());
            let ro_pair = {
                let n = s.process.nmos();
                1.0 / (n.lambda(s.pair_l_um) * s.i_tail / 2.0)
            };
            let ro_casc = 1.0 / (lambda_p * s.i_branch());
            let gm_casc = 2.0 * s.i_branch() / VOV_C;
            // The fold node sees ro_src ∥ ro_pair.
            let r_up = gm_casc * ro_casc * (1.0 / (1.0 / ro_src + 1.0 / ro_pair));
            let mirror = s.out_mirror.as_ref().expect("mirror designed");
            let rout = 1.0 / (1.0 / r_up + 1.0 / mirror.rout());
            s.rout = rout;
            let gain = s.gm1 * rout;
            if gain < s.spec.dc_gain_linear() {
                return StepOutcome::failed(
                    "gain-short",
                    format!(
                        "folded-cascode gain {:.0} < required {:.0}",
                        gain,
                        s.spec.dc_gain_linear()
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads([
            "spec",
            "process",
            "gm1",
            "i_tail",
            "pair_l_um",
            "out_mirror",
        ])
        .writes(["rout"])
        .emits(["gain-short"])
        .step("design-bias", |s: &mut State| {
            // Four bias branches: tail mirror reference, PMOS source
            // reference, PMOS cascode-gate chain, NMOS cascode-gate chain.
            let span = s.process.supply_span().volts();
            let tail_spec = MirrorSpec::new(Polarity::Nmos, s.i_tail)
                .with_headroom(1.5)
                .with_only_style(MirrorStyle::Simple);
            let tail = match CurrentMirror::design_with(&tail_spec, &s.process, &s.ctx) {
                Ok(t) => t,
                Err(e) => return StepOutcome::failed("bias-design", e.to_string()),
            };
            let n = s.process.nmos();
            let p = s.process.pmos();
            let i_ref = (s.i_tail / 4.0).max(2e-6);
            let l_min = s.process.min_length().micrometers();
            let w_min = s.process.min_width().micrometers();
            let diode = |kprime: f64| -> Result<Geometry, String> {
                let wl = sizing::w_over_l_from_id_vov(i_ref, VOV_C, kprime);
                let w = ((wl * l_min).max(w_min) / 0.5).ceil() * 0.5;
                Geometry::new_um(w, l_min).map_err(|e| e.to_string())
            };
            let (pd, nd) = match (diode(p.kprime()), diode(n.kprime())) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return StepOutcome::failed("bias-design", e),
            };
            let vsg = p.vth().volts() + VOV_C;
            let vgs = n.vth().volts() + VOV_C;
            let guard = |drop: f64| drop.max(0.5);
            s.r_tail = guard(span - tail.input_voltage()) / tail.spec().input_current();
            // The PMOS source reference carries i_fold through its diode.
            s.r_psrc = guard(span - vsg) / s.i_fold();
            s.r_pcasc = guard(span - 2.0 * vsg) / i_ref;
            s.r_ncasc = guard(span - 2.0 * vgs) / i_ref;
            s.p_diode = Some(pd);
            s.n_diode = Some(nd);
            s.tail = Some(tail);
            StepOutcome::Done
        })
        .reads(["process", "ctx", "i_tail"])
        .writes([
            "tail", "p_diode", "n_diode", "r_tail", "r_psrc", "r_pcasc", "r_ncasc",
        ])
        .emits(["bias-design"])
        .step("check-swing", |s: &mut State| {
            let vdd = s.process.vdd().volts();
            let vss = s.process.vss().volts();
            // Top: the source device plus the cascode each need an
            // overdrive; the 2·V_SG gate bias costs one threshold more of
            // margin at the cascode source.
            let p = s.process.pmos();
            let hi = vdd - (2.0 * VOV_C + p.vth().volts());
            let mirror = s.out_mirror.as_ref().expect("mirror designed");
            let lo = vss + mirror.compliance();
            s.swing = (lo, hi);
            if s.spec.has_swing() {
                let need = s.spec.output_swing().volts();
                if hi < need || lo > -need {
                    return StepOutcome::failed(
                        "swing-short",
                        format!("achievable {lo:+.2} … {hi:+.2} V misses ±{need:.1} V"),
                    );
                }
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "out_mirror"])
        .writes(["swing"])
        .emits(["swing-short"])
        .step("check-offset", |s: &mut State| {
            // Fully cascoded: the residual is ΔV·g_out/gm1 like the
            // cascode OTA.
            let delta_v = 2.5;
            s.offset_v = delta_v / s.rout / s.gm1;
            if s.spec.has_offset() && s.offset_v > s.spec.max_offset().volts() {
                return StepOutcome::failed(
                    "offset-high",
                    format!("systematic offset {:.3} mV", s.offset_v * 1e3),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "gm1", "rout"])
        .writes(["offset_v"])
        .emits(["offset-high"])
        .step("check-phase", |s: &mut State| {
            // Non-dominant pole at the folding node: the cascode's gm
            // over the junk parked there (pair drain, source drain,
            // cascode source).
            let gm_casc = 2.0 * s.i_branch() / VOV_C;
            let c_fold = {
                let pair = s.pair.as_ref().expect("pair designed");
                let m1 = Mosfet::new(Polarity::Nmos, pair.geometry(), &s.process);
                let op1 = m1.operating_point(s.process.nmos().vth().volts() + pair.vov(), 2.0, 0.0);
                let c1 = m1.capacitances(&op1).drain_total().farads();
                let src = s.p_source.expect("branches designed");
                let m3 = Mosfet::new(Polarity::Pmos, src, &s.process);
                let vsg = s.process.pmos().vth().volts() + VOV_C;
                let op3 = m3.operating_point(-vsg, -2.0, 0.0);
                let c3 = m3.capacitances(&op3).drain_total().farads();
                let casc = s.p_cascode.expect("branches designed");
                let m5 = Mosfet::new(Polarity::Pmos, casc, &s.process);
                let op5 = m5.operating_point(-vsg, -2.0, 0.0);
                let c5 = m5.capacitances(&op5).cgs().farads();
                c1 + c3 + c5
            };
            let p2 = gm_casc / (2.0 * std::f64::consts::PI * c_fold);
            let fu = s.gm1 / (2.0 * std::f64::consts::PI * s.spec.load().farads());
            s.pm_deg = 90.0 - (fu / p2).atan().to_degrees();
            if s.pm_deg < s.spec.phase_margin().degrees() {
                return StepOutcome::failed(
                    "pm-short",
                    format!("folding-node pole leaves {:.1}°", s.pm_deg),
                );
            }
            StepOutcome::Done
        })
        .reads([
            "spec",
            "process",
            "gm1",
            "i_tail",
            "pair",
            "p_source",
            "p_cascode",
        ])
        .writes(["pm_deg"])
        .emits(["pm-short"])
        .step("check-noise", |s: &mut State| {
            if !s.spec.has_noise() {
                return StepOutcome::Done;
            }
            let kt = 1.380649e-23 * 300.0;
            let gm_others = 2.0 * s.i_fold() / VOV_C + 2.0 * s.i_branch() / VOV_C;
            let noise = (2.0 * (8.0 / 3.0) * kt / s.gm1 * (1.0 + gm_others / s.gm1)).sqrt();
            if noise > s.spec.max_noise_v_rthz() {
                return StepOutcome::failed(
                    "noise-high",
                    format!(
                        "input noise {:.0} nV/√Hz exceeds the {:.0} nV/√Hz ceiling",
                        noise * 1e9,
                        s.spec.max_noise_v_rthz() * 1e9
                    ),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "gm1", "i_tail"])
        .writes(NONE)
        .emits(["noise-high"])
        .step("check-power", |s: &mut State| {
            let span = s.process.supply_span().volts();
            let power = span * s.total_current();
            if s.spec.has_power() && power > s.spec.max_power().watts() {
                return StepOutcome::failed(
                    "power-high",
                    format!("quiescent power {:.2} mW", power * 1e3),
                );
            }
            StepOutcome::Done
        })
        .reads(["spec", "process", "i_tail"])
        .writes(NONE)
        .emits(["power-high"])
        .step("predict", |s: &mut State| {
            let span = s.process.supply_span().volts();
            let gain = s.gm1 * s.rout;
            let tail = s.tail.as_ref().expect("bias designed");
            let gm_casc = 2.0 * s.i_branch() / VOV_C;
            let cmrr = gain * 2.0 * gm_casc * tail.rout();
            // Pair plus the fold current sources and the mirror bottoms
            // all inject channel noise; lump the non-pair devices as one
            // gm at the cascode overdrive per side.
            let kt = 1.380649e-23 * 300.0;
            let gm_others = 2.0 * s.i_fold() / VOV_C + 2.0 * s.i_branch() / VOV_C;
            let noise = (2.0 * (8.0 / 3.0) * kt / s.gm1 * (1.0 + gm_others / s.gm1)).sqrt();
            s.predicted = Some(Predicted {
                dc_gain_db: 20.0 * gain.log10(),
                unity_gain_hz: s.gm1 / (2.0 * std::f64::consts::PI * s.spec.load().farads()),
                phase_margin_deg: s.pm_deg,
                slew_v_per_s: s.i_tail / s.spec.load().farads(),
                swing_neg_v: s.swing.0,
                swing_pos_v: s.swing.1,
                offset_v: s.offset_v,
                power_w: span * s.total_current(),
                cmrr_db: 20.0 * cmrr.log10(),
                noise_v_rthz: noise,
            });
            StepOutcome::Done
        })
        .reads([
            "spec", "process", "gm1", "i_tail", "rout", "tail", "pm_deg", "swing", "offset_v",
        ])
        .writes(["predicted"])
        .emits(NONE)
        // ---- patch rules ----
        .rule(
            "lower-pair-overdrive",
            |s: &State, f| matches!(f.code(), "gain-short" | "noise-high") && s.vov1 > 0.06,
            |s: &mut State| {
                s.vov1 /= 1.5;
                s.notes
                    .push(format!("lowered pair overdrive to {:.2} V", s.vov1));
                PatchAction::RestartFrom("size-input".into())
            },
        )
        .on_codes(["gain-short", "noise-high"])
        .guarded()
        .reads(["vov1"])
        .writes(["vov1", "notes"])
        .restarts_from("size-input")
        .rule(
            "give-up",
            |_, f| {
                matches!(
                    f.code(),
                    "spec-unsupported"
                        | "pair-design"
                        | "branch-design"
                        | "gain-short"
                        | "bias-design"
                        | "swing-short"
                        | "offset-high"
                        | "pm-short"
                        | "power-high"
                        | "noise-high"
                )
            },
            |_s: &mut State| PatchAction::Abort("folded-cascode style infeasible".into()),
        )
        .on_codes([
            "spec-unsupported",
            "pair-design",
            "branch-design",
            "gain-short",
            "bias-design",
            "swing-short",
            "offset-high",
            "pm-short",
            "power-high",
            "noise-high",
        ])
        .writes(NONE)
        .aborts()
        .build()
}

impl State<'_> {
    /// All quiescent branches: tail + two fold branches + four bias
    /// references.
    fn total_current(&self) -> f64 {
        let i_ref = (self.i_tail / 4.0).max(2e-6);
        self.i_tail + 2.0 * self.i_fold() + self.i_tail + self.i_fold() + 2.0 * i_ref
    }
}

/// Runs the folded-cascode plan and assembles the sized schematic.
///
/// # Errors
///
/// [`StyleError::Plan`] when the plan cannot meet the specification;
/// [`StyleError::Netlist`] for template assembly bugs.
pub fn design_folded_cascode(
    spec: &OpAmpSpec,
    process: &Process,
) -> Result<OpAmpDesign, StyleError> {
    let tel = Telemetry::disabled();
    design_folded_cascode_with(spec, process, &tel)
}

/// [`design_folded_cascode`] with run telemetry recorded into `tel`.
///
/// # Errors
///
/// Same failure modes as [`design_folded_cascode`].
pub fn design_folded_cascode_with(
    spec: &OpAmpSpec,
    process: &Process,
    tel: &Telemetry,
) -> Result<OpAmpDesign, StyleError> {
    run_style::<FoldedCascodeDef>(spec, process, &DesignContext::new(tel))
}

/// The folded cascode's [`StyleDef`]: the plan above plus state
/// construction. Everything else is the shared [`run_style`] engine.
pub(super) struct FoldedCascodeDef;

impl StyleDef for FoldedCascodeDef {
    const STYLE: OpAmpStyle = OpAmpStyle::FoldedCascode;
    type State<'a> = State<'a>;

    fn build_plan<'a>() -> Plan<State<'a>> {
        build_plan()
    }

    fn init<'a>(spec: &OpAmpSpec, process: &Process, ctx: DesignContext<'a>) -> State<'a> {
        State::new(spec, process, ctx)
    }
}

impl StyleState for State<'_> {
    fn emit(&self) -> Result<Circuit, oasys_netlist::ValidateError> {
        emit(self)
    }

    fn area(&self) -> AreaEstimate {
        let w_min = self.process.min_width().micrometers();
        let r_total = self.r_tail + self.r_psrc + self.r_pcasc + self.r_ncasc;
        let device = |g: &Geometry| AreaEstimate::for_device(g, &self.process);
        self.pair.as_ref().expect("plan done").area()
            + self.tail.as_ref().expect("plan done").area()
            + self.out_mirror.as_ref().expect("plan done").area()
            + device(&self.p_source.expect("plan done")) * 2.0
            + device(&self.p_cascode.expect("plan done")) * 2.0
            + device(&self.p_diode.expect("plan done")) * 3.0
            + device(&self.n_diode.expect("plan done")) * 2.0
            + AreaEstimate::from_um2(r_total / BIAS_SHEET_OHMS * w_min * w_min, 0.0)
    }

    fn predicted(&self) -> Predicted {
        self.predicted.expect("predict ran")
    }

    fn take_notes(&mut self) -> Vec<String> {
        std::mem::take(&mut self.notes)
    }
}

/// Assembles the folded-cascode netlist.
fn emit(state: &State) -> Result<Circuit, oasys_netlist::ValidateError> {
    let pair = state.pair.as_ref().expect("plan done");
    let tail = state.tail.as_ref().expect("plan done");
    let out_mirror = state.out_mirror.as_ref().expect("plan done");
    let p_source = state.p_source.expect("plan done");
    let p_cascode = state.p_cascode.expect("plan done");
    let p_diode = state.p_diode.expect("plan done");
    let n_diode = state.n_diode.expect("plan done");

    let mut c = Circuit::new("folded-cascode OTA");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let out = c.node("out");
    let tail_node = c.node("tail");
    let fold_a = c.node("fold_a");
    let fold_b = c.node("fold_b");
    let mir_in = c.node("mir_in");
    let nbias1 = c.node("nbias1");
    let pbias1 = c.node("pbias1");
    let pbias2 = c.node("pbias2");
    let nbias2 = c.node("nbias2");
    for (label, node) in [
        ("inp", inp),
        ("inn", inn),
        ("out", out),
        ("vdd", vdd),
        ("vss", vss),
    ] {
        c.mark_port(label, node);
    }

    // Input pair: M1 (gate inp) drains into fold_a, M2 into fold_b.
    pair.emit(&mut c, "DP_", inp, inn, fold_b, fold_a, tail_node, vss)?;
    // Tail mirror with its reference resistor.
    tail.emit(&mut c, "TL_", nbias1, tail_node, vss, None)?;
    c.add_resistor("RB_TL", vdd, nbias1, state.r_tail)?;

    // PMOS current sources: reference diode + two matched outputs.
    c.add_mosfet(
        "SRC_MDIO",
        Polarity::Pmos,
        p_source,
        pbias1,
        pbias1,
        vdd,
        vdd,
    )?;
    c.add_resistor("RB_SRC", pbias1, vss, state.r_psrc)?;
    c.add_mosfet("SRC_M3", Polarity::Pmos, p_source, fold_a, pbias1, vdd, vdd)?;
    c.add_mosfet("SRC_M4", Polarity::Pmos, p_source, fold_b, pbias1, vdd, vdd)?;

    // PMOS cascode gate bias: two stacked diodes from VDD.
    let pmid = c.node("pbias_mid");
    c.add_mosfet("PCB_M1", Polarity::Pmos, p_diode, pmid, pmid, vdd, vdd)?;
    c.add_mosfet("PCB_M2", Polarity::Pmos, p_diode, pbias2, pbias2, pmid, vdd)?;
    c.add_resistor("RB_PC", pbias2, vss, state.r_pcasc)?;

    // PMOS cascodes fold the branches down.
    c.add_mosfet(
        "CAS_M5",
        Polarity::Pmos,
        p_cascode,
        mir_in,
        pbias2,
        fold_a,
        vdd,
    )?;
    c.add_mosfet(
        "CAS_M6",
        Polarity::Pmos,
        p_cascode,
        out,
        pbias2,
        fold_b,
        vdd,
    )?;

    // NMOS cascode gate bias: two stacked diodes from VSS.
    let nmid = c.node("nbias_mid");
    c.add_mosfet("NCB_M1", Polarity::Nmos, n_diode, nmid, nmid, vss, vss)?;
    c.add_mosfet("NCB_M2", Polarity::Nmos, n_diode, nbias2, nbias2, nmid, vss)?;
    c.add_resistor("RB_NC", vdd, nbias2, state.r_ncasc)?;

    // Wide-swing NMOS output mirror.
    out_mirror.emit(&mut c, "OM_", mir_in, out, vss, Some(nbias2))?;

    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::test_cases;
    use oasys_process::builtin;

    #[test]
    fn plan_analyzes_clean() {
        let report = analyze_plan();
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn designs_a_mid_gain_spec() {
        // 80 dB, modest swing: the folded cascode's sweet spot.
        let spec = OpAmpSpec::builder()
            .dc_gain_db(80.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .slew_rate_v_per_us(2.0)
            .output_swing_v(2.5)
            .build()
            .unwrap();
        let d = design_folded_cascode(&spec, &builtin::cmos_5um()).unwrap();
        assert_eq!(d.style(), OpAmpStyle::FoldedCascode);
        let p = d.predicted();
        assert!(p.dc_gain_db >= 80.0, "gain {:.1}", p.dc_gain_db);
        assert!(p.phase_margin_deg >= 45.0);
        assert!(p.swing_symmetric() >= 2.5);
        // Full cell: pair 2 + tail 2 + sources 3 + p-casc bias 2 +
        // cascodes 2 + n-casc bias 2 + WS mirror 4 = 17 devices.
        assert!(d.device_count() >= 15, "{} devices", d.device_count());
        d.circuit().validate().unwrap();
    }

    #[test]
    fn rejects_wide_swing_specs() {
        // ±4 V swing is impossible under the stacked cascodes.
        let spec = OpAmpSpec::builder()
            .dc_gain_db(80.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .output_swing_v(4.0)
            .build()
            .unwrap();
        assert!(design_folded_cascode(&spec, &builtin::cmos_5um()).is_err());
    }

    #[test]
    fn case_a_is_feasible_but_hungry() {
        // Case A fits the folded cascode electrically; the style burns
        // several branches of current doing it.
        let d = design_folded_cascode(&test_cases::spec_a(), &builtin::cmos_5um());
        if let Ok(d) = d {
            assert!(d.predicted().power_w > 2.0 * 200e-6);
        }
    }

    #[test]
    fn folded_cascode_verifies_in_simulation() {
        let spec = OpAmpSpec::builder()
            .dc_gain_db(80.0)
            .unity_gain_mhz(0.5)
            .phase_margin_deg(45.0)
            .load_pf(5.0)
            .slew_rate_v_per_us(2.0)
            .output_swing_v(2.0)
            .build()
            .unwrap();
        let process = builtin::cmos_5um();
        let d = design_folded_cascode(&spec, &process).unwrap();
        let v = crate::verify(&d, &process, spec.load().farads()).unwrap();
        let m = &v.measured;
        assert!(
            m.dc_gain_db >= 80.0 - 3.0,
            "measured {:.1} dB vs predicted {:.1} dB",
            m.dc_gain_db,
            d.predicted().dc_gain_db
        );
        let fu = m.unity_gain_hz.expect("crosses 0 dB");
        assert!(fu >= 0.5e6 * 0.7, "fu {fu:.3e}");
        let pm = m.phase_margin_deg.expect("has margin");
        assert!(pm > 35.0, "pm {pm:.1}");
    }

    #[test]
    fn gain_beyond_single_stage_fails() {
        let spec = test_cases::spec_a().with_dc_gain_db(115.0);
        assert!(design_folded_cascode(&spec, &builtin::cmos_5um()).is_err());
    }
}
