//! The `oasys` command-line tool: synthesize a sized CMOS op-amp
//! schematic from a specification file and a technology file.
//!
//! ```text
//! oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify]
//! ```
//!
//! Prints the style-selection outcome, the sized device table, and the
//! spec/predicted/measured datasheet; optionally writes a SPICE deck.

use oasys::{specfile, synthesize, verify, Datasheet};
use oasys_netlist::{report, spice};
use oasys_process::techfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("oasys: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let usage = "usage: oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify]";
    let spec_path = args.next().ok_or(usage)?;
    let tech_path = args.next().ok_or(usage)?;
    let mut out_path: Option<String> = None;
    let mut run_verify = true;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => {
                out_path = Some(args.next().ok_or("--out needs a path")?);
            }
            "--no-verify" => run_verify = false,
            other => return Err(format!("unknown flag `{other}`\n{usage}")),
        }
    }

    let spec_text = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = specfile::parse(&spec_text).map_err(|e| e.to_string())?;
    let tech_text = std::fs::read_to_string(&tech_path).map_err(|e| format!("{tech_path}: {e}"))?;
    let process = techfile::parse(&tech_text).map_err(|e| e.to_string())?;

    println!("specification: {spec}");
    println!("process:       {process}\n");

    let result = synthesize(&spec, &process).map_err(|e| e.to_string())?;
    println!("{result}");
    let design = result.selected();
    if !design.notes().is_empty() {
        println!("design decisions: {}\n", design.notes().join("; "));
    }
    println!("{}", report::device_table(design.circuit()));

    let measured = if run_verify {
        let verification =
            verify(design, &process, spec.load().farads()).map_err(|e| e.to_string())?;
        Some(verification.measured)
    } else {
        None
    };
    let sheet = Datasheet::new(
        format!("{} op amp", design.style()),
        &spec,
        design.predicted(),
        measured.as_ref(),
    );
    println!("{sheet}");
    if measured.is_some() && !sheet.all_measured_pass() {
        println!("!! measured shortfalls: {:?}", sheet.failures());
    }

    if let Some(path) = out_path {
        let deck = spice::to_spice(design.circuit(), &process);
        std::fs::write(&path, deck).map_err(|e| format!("{path}: {e}"))?;
        println!("SPICE deck written to {path}");
    }
    Ok(())
}
