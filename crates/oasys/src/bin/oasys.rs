//! The `oasys` command-line tool: synthesize a sized CMOS op-amp
//! schematic from a specification file and a technology file.
//!
//! ```text
//! oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify]
//!       [--styles <list>] [--explain] [--trace-out <file.json>]
//!       [--trace-format json|chrome]
//! oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json|sarif]
//! oasys batch <manifest> [--records <file.jsonl>] [--aggregate <file.json>]
//!       [--checkpoint <file>] [--workers <n>] [--timeout-ms <n>]
//!       [--retries <n>] [--no-verify] [--styles <list>] [--explain]
//! oasys dataset <manifest> --out <dir> [--shards <n>] [--shard-index <i>]
//!       [--workers <n>] [--timeout-ms <n>] [--retries <n>] [--no-verify]
//! oasys dataset merge <dir>
//! oasys serve --socket <path> [--workers <n>] [--max-inflight <n>]
//!       [--cache-entries <n>] [--timeout-ms <n>]
//! oasys client --socket <path> <spec-file> <tech-file> [--timeout-ms <n>]
//! oasys client --socket <path> --ping|--shutdown
//! ```
//!
//! The first form prints the style-selection outcome, the sized device
//! table, and the spec/predicted/measured datasheet; optionally writes a
//! SPICE deck. `--styles` restricts the breadth-first search to a
//! comma-separated subset of the style catalog (`one-stage-ota`,
//! `two-stage`, `folded-cascode`); unknown names are rejected up front.
//! `--explain` prints the annotated span tree of the run
//! (style attempts, plan steps, rule firings, simulator phases);
//! `--trace-out` writes the machine-readable run report — JSON-lines
//! events plus a metrics snapshot by default, or the Chrome trace-event
//! format (loadable in Perfetto / `chrome://tracing`) under
//! `--trace-format chrome`.
//!
//! The `lint` form runs the static analyzers: the plan dataflow checks
//! over every built-in style plan, and — when a spec and tech file are
//! given — the netlist electrical-rule checks over each successfully
//! synthesized design. Diagnostics go to stdout (human-readable or as a
//! JSON array); the exit code is nonzero when any error fires, or, under
//! `--deny-warnings`, when any diagnostic fires at all.
//!
//! The `batch` form expands a manifest of `spec × tech` inputs into a
//! job list and runs it on a bounded worker pool, streaming one JSON
//! line per job (to stdout, or `--records`) and ending with the
//! deterministic aggregate report (to stdout, or `--aggregate`).
//! `--checkpoint` makes the run resumable: completed jobs are recorded
//! by content fingerprint and skipped when the batch is re-run; a
//! corrupt or truncated checkpoint is discarded and the batch restarts
//! cleanly. A panicking or timed-out job is reported as failed in its
//! own record while the remaining jobs complete; the exit code is
//! nonzero only when some job failed (infeasible specs are definitive
//! answers, not failures). Command-line flags override the manifest's
//! `workers =` / `timeout_ms =` / `retries =` / `verify =` settings;
//! `--timeout-ms 0` disables the per-job timeout.
//!
//! The `dataset` form runs a *sampled sweep*: the manifest's `sample.*`,
//! `corners`, and `mc.*` directives expand into a deterministic point
//! list (see `DATASET.md`), partitioned `id % shards` across
//! independent shard runs that each stream `oasys-dataset/2` JSONL
//! records into `--out`. An interrupted shard resumes from its partial
//! file; `oasys dataset merge` stitches the published shards into one
//! `dataset.jsonl` whose bytes are identical for every shard count.
//!
//! The `serve` form starts a resident synthesis server on a Unix domain
//! socket (see [`oasys::serve`] for the wire protocol): requests reuse
//! one warm, bounded design cache across their lifetime, admission is
//! bounded by `--max-inflight`, and SIGTERM (or a `shutdown` request)
//! drains in-flight work before exiting. The `client` form sends one
//! request — a spec × tech synthesis, `--ping`, or `--shutdown` — and
//! prints the server's JSON response; the exit code is nonzero unless
//! the server answered `ok`.

use oasys::{
    batch, specfile, styles, synthesize_with, synthesize_with_options, verify_with, Datasheet,
    OpAmpStyle, SearchOptions, Synthesis,
};
use oasys_netlist::{lint, report, spice};
use oasys_process::techfile;
use oasys_telemetry::Telemetry;
use std::process::ExitCode;

const SYNTH_USAGE: &str = "usage: oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify] [--styles <list>] [--explain] [--trace-out <file.json>] [--trace-format json|chrome] [--metrics-out <file.json>] [--faults <list>]\n       oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json|sarif]";
const LINT_USAGE: &str =
    "usage: oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json|sarif]";
const BATCH_USAGE: &str = "usage: oasys batch <manifest> [--records <file.jsonl>] [--aggregate <file.json>] [--checkpoint <file>] [--workers <n>] [--timeout-ms <n>] [--retries <n>] [--no-verify] [--styles <list>] [--explain] [--faults <list>]";
const DATASET_USAGE: &str = "usage: oasys dataset <manifest> --out <dir> [--shards <n>] [--shard-index <i>] [--workers <n>] [--timeout-ms <n>] [--retries <n>] [--no-verify] [--faults <list>]\n       oasys dataset merge <dir>";
const SERVE_USAGE: &str = "usage: oasys serve --socket <path> [--workers <n>] [--max-inflight <n>] [--queue-depth <n>] [--io-timeout-ms <n>] [--cache-entries <n>] [--timeout-ms <n>] [--faults <list>]";
const CLIENT_USAGE: &str = "usage: oasys client --socket <path> <spec-file> <tech-file> [--timeout-ms <n>] [--retries <n>] [--retry-seed <n>]\n       oasys client --socket <path> --ping|--health|--shutdown [--retries <n>] [--retry-seed <n>]";

fn main() -> ExitCode {
    if let Err(e) = oasys_faults::init_from_env() {
        eprintln!("oasys: {}: {e}", oasys_faults::FAULTS_ENV);
        return ExitCode::FAILURE;
    }
    let result = {
        let mut args = std::env::args().skip(1).peekable();
        match args.peek().map(String::as_str) {
            Some("lint") => {
                args.next();
                run_lint(args)
            }
            Some("batch") => {
                args.next();
                run_batch(args)
            }
            Some("dataset") => {
                args.next();
                run_dataset(args)
            }
            Some("serve") => {
                args.next();
                run_serve(args).map(|()| ExitCode::SUCCESS)
            }
            Some("client") => {
                args.next();
                run_client(args)
            }
            _ => run_synth(args).map(|()| ExitCode::SUCCESS),
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("oasys: {message}");
            ExitCode::FAILURE
        }
    }
}

/// On-disk format for `--trace-out`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    /// JSON-lines events plus a metrics snapshot (the default).
    Json,
    /// Chrome trace-event array for Perfetto / `chrome://tracing`.
    Chrome,
}

/// Resolves one `--styles` entry. Accepts the display name exactly
/// (`"one-stage OTA"`) or the shell-friendly form with hyphens for
/// spaces, case-insensitively (`one-stage-ota`, `folded-cascode`).
fn parse_style(name: &str) -> Option<OpAmpStyle> {
    let normalized = name.trim().to_lowercase().replace(' ', "-");
    OpAmpStyle::ALL
        .into_iter()
        .find(|s| s.to_string().to_lowercase().replace(' ', "-") == normalized)
}

/// Parses the comma-separated `--styles` list into validated display
/// names (the form [`SearchOptions::with_styles`] matches against).
fn parse_styles_list(list: &str) -> Result<Vec<String>, String> {
    let names: Vec<&str> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err(format!("--styles needs at least one style\n{SYNTH_USAGE}"));
    }
    names
        .into_iter()
        .map(|name| {
            parse_style(name).map(|s| s.to_string()).ok_or_else(|| {
                let known: Vec<String> = OpAmpStyle::ALL
                    .iter()
                    .map(|s| s.to_string().to_lowercase().replace(' ', "-"))
                    .collect();
                format!(
                    "unknown style `{name}` (known styles: {})\n{SYNTH_USAGE}",
                    known.join(", ")
                )
            })
        })
        .collect()
}

/// Parsed arguments of the synthesis mode.
#[derive(Debug, PartialEq, Eq)]
struct SynthOptions {
    spec_path: String,
    tech_path: String,
    out_path: Option<String>,
    run_verify: bool,
    styles: Option<Vec<String>>,
    explain: bool,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    metrics_out: Option<String>,
    faults: Option<String>,
}

/// Applies a `--faults site=spec,…` list to the process-global fault
/// plane (the same syntax the `OASYS_FAULTS` environment variable takes;
/// the flag is applied second, so it wins on overlapping sites).
fn apply_faults(list: Option<&str>) -> Result<(), String> {
    if let Some(list) = list {
        oasys_faults::configure(list).map_err(|e| format!("--faults: {e}"))?;
    }
    Ok(())
}

impl SynthOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let spec_path = args.next().ok_or(SYNTH_USAGE)?;
        let tech_path = args.next().ok_or(SYNTH_USAGE)?;
        let mut opts = SynthOptions {
            spec_path,
            tech_path,
            out_path: None,
            run_verify: true,
            styles: None,
            explain: false,
            trace_out: None,
            trace_format: TraceFormat::Json,
            metrics_out: None,
            faults: None,
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--out" => {
                    opts.out_path = Some(args.next().ok_or("--out needs a path")?);
                }
                "--faults" => {
                    opts.faults = Some(args.next().ok_or("--faults needs a site=spec list")?);
                }
                "--no-verify" => opts.run_verify = false,
                "--styles" => {
                    let list = args.next().ok_or("--styles needs a comma-separated list")?;
                    opts.styles = Some(parse_styles_list(&list)?);
                }
                "--explain" => opts.explain = true,
                "--trace-out" => {
                    opts.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
                }
                "--metrics-out" => {
                    opts.metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?);
                }
                "--trace-format" => match args.next().as_deref() {
                    Some("json") => opts.trace_format = TraceFormat::Json,
                    Some("chrome") => opts.trace_format = TraceFormat::Chrome,
                    Some(other) => {
                        return Err(format!("unknown trace format `{other}`\n{SYNTH_USAGE}"));
                    }
                    None => {
                        return Err(format!(
                            "--trace-format needs `json` or `chrome`\n{SYNTH_USAGE}"
                        ));
                    }
                },
                other => return Err(format!("unknown flag `{other}`\n{SYNTH_USAGE}")),
            }
        }
        Ok(opts)
    }

    /// `true` when any flag asks for the run report, so the recorder
    /// should actually collect spans.
    fn telemetry_requested(&self) -> bool {
        self.explain || self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// The engine search options this invocation asks for.
    fn search_options(&self) -> SearchOptions {
        match &self.styles {
            Some(styles) => SearchOptions::new().with_styles(styles.clone()),
            None => SearchOptions::new(),
        }
    }
}

/// Output shape of the lint report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LintFormat {
    Human,
    Json,
    Sarif,
}

/// Parsed arguments of the lint mode.
#[derive(Debug, PartialEq, Eq)]
struct LintOptions {
    paths: Vec<String>,
    deny_warnings: bool,
    format: LintFormat,
}

impl LintOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = LintOptions {
            paths: Vec::new(),
            deny_warnings: false,
            format: LintFormat::Human,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--deny-warnings" => opts.deny_warnings = true,
                "--format" => match args.next().as_deref() {
                    Some("human") => opts.format = LintFormat::Human,
                    Some("json") => opts.format = LintFormat::Json,
                    Some("sarif") => opts.format = LintFormat::Sarif,
                    Some(other) => return Err(format!("unknown format `{other}`\n{LINT_USAGE}")),
                    None => {
                        return Err(format!(
                            "--format needs `human`, `json`, or `sarif`\n{LINT_USAGE}"
                        ));
                    }
                },
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`\n{LINT_USAGE}"));
                }
                path => opts.paths.push(path.to_string()),
            }
        }
        Ok(opts)
    }
}

fn run_synth(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = SynthOptions::parse(args)?;
    apply_faults(opts.faults.as_deref())?;
    let (spec, process) = load_inputs(&opts.spec_path, &opts.tech_path)?;

    println!("specification: {spec}");
    println!("process:       {process}\n");

    let tel = if opts.telemetry_requested() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };

    let result = match synthesize_with_options(&spec, &process, &opts.search_options(), &tel) {
        Ok(result) => result,
        Err(e) => {
            // The trace is most valuable exactly when synthesis fails:
            // emit the report before propagating the error.
            emit_telemetry(&opts, &tel, None)?;
            return Err(e.to_string());
        }
    };
    println!("{result}");
    let design = result.selected();
    if !design.notes().is_empty() {
        println!("design decisions: {}\n", design.notes().join("; "));
    }
    println!("{}", report::device_table(design.circuit()));

    let measured = if opts.run_verify {
        let verification =
            verify_with(design, &process, spec.load().farads(), &tel).map_err(|e| e.to_string())?;
        if !verification.erc.is_empty() {
            println!("electrical-rule findings:");
            print!("{}", verification.erc.render_human());
        }
        Some(verification.measured)
    } else {
        None
    };
    let sheet = Datasheet::new(
        format!("{} op amp", design.style()),
        &spec,
        design.predicted(),
        measured.as_ref(),
    );
    println!("{sheet}");
    if measured.is_some() && !sheet.all_measured_pass() {
        println!("!! measured shortfalls: {:?}", sheet.failures());
    }

    if let Some(path) = &opts.out_path {
        let deck = spice::to_spice(design.circuit(), &process);
        std::fs::write(path, deck).map_err(|e| format!("{path}: {e}"))?;
        println!("SPICE deck written to {path}");
    }

    emit_telemetry(&opts, &tel, Some(&result))
}

/// Prints the `--explain` tree and/or writes the `--trace-out` file.
///
/// `synthesis` is `None` when synthesis itself failed — the report still
/// goes out (that run's trace is the diagnosis), but the summary line's
/// restart count then comes from the metrics registry instead of the
/// per-style traces.
fn emit_telemetry(
    opts: &SynthOptions,
    tel: &Telemetry,
    synthesis: Option<&Synthesis>,
) -> Result<(), String> {
    if !tel.is_enabled() {
        return Ok(());
    }
    let run_report = tel.report();
    if opts.explain {
        println!("run trace:");
        print!("{}", run_report.render_explain());
        let histograms = run_report.render_histograms();
        if !histograms.is_empty() {
            println!("latency histograms (log2 ns buckets):");
            print!("{histograms}");
        }
        let restarts = synthesis.map_or_else(
            || usize::try_from(tel.counter("plan.restarts")).unwrap_or(usize::MAX),
            Synthesis::restarts,
        );
        println!(
            "summary: {} styles attempted, {} feasible, {} statically pruned, \
             {} plan restarts, {} step executions",
            tel.counter("synth.styles_attempted"),
            tel.counter("synth.styles_feasible"),
            tel.counter("engine.pruned"),
            restarts,
            tel.counter("plan.step_executions"),
        );
    }
    if let Some(path) = &opts.trace_out {
        let text = match opts.trace_format {
            TraceFormat::Json => run_report.render_jsonl(),
            TraceFormat::Chrome => run_report.render_chrome(),
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("run trace written to {path}");
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, run_report.render_metrics_json())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// `oasys lint`: static analysis only, no simulation.
fn run_lint(args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let opts = LintOptions::parse(args)?;

    // Prong 1: the plan dataflow analyzer over every built-in style.
    let mut merged = styles::analyze_all_plans();

    // Prong 2: electrical-rule checks over each design the spec
    // synthesizes (all successful styles, not just the selected one).
    match opts.paths.as_slice() {
        [] => {}
        [spec_path, tech_path] => {
            let (spec, process) = load_inputs(spec_path, tech_path)?;
            let synthesis = synthesize_with(&spec, &process, &Telemetry::disabled())
                .map_err(|e| e.to_string())?;
            for outcome in synthesis.outcomes() {
                if let Some(design) = outcome.design() {
                    merged.merge(lint::lint(design.circuit(), Some(&process)));
                }
            }
        }
        _ => {
            return Err(format!(
                "expected no positional arguments or a spec file and a tech file\n{LINT_USAGE}"
            ));
        }
    }

    // Findings from both prongs were merged: normalize once more so the
    // combined report keeps the stable (code, site) order and no dupes.
    merged.normalize();
    match opts.format {
        LintFormat::Human => print!("{}", merged.render_human()),
        LintFormat::Json => print!("{}", merged.render_json()),
        LintFormat::Sarif => print!("{}", merged.render_sarif()),
    }
    Ok(if merged.passes(opts.deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parsed arguments of the batch mode.
#[derive(Debug, PartialEq, Eq)]
struct BatchCliOptions {
    manifest_path: String,
    records_path: Option<String>,
    aggregate_path: Option<String>,
    checkpoint_path: Option<String>,
    workers: Option<usize>,
    timeout_ms: Option<u64>,
    retries: Option<u32>,
    no_verify: bool,
    styles: Option<Vec<String>>,
    explain: bool,
    faults: Option<String>,
}

impl BatchCliOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let manifest_path = args.next().ok_or(BATCH_USAGE)?;
        if manifest_path.starts_with("--") {
            return Err(format!(
                "the manifest path must come before any flags\n{BATCH_USAGE}"
            ));
        }
        let mut opts = BatchCliOptions {
            manifest_path,
            records_path: None,
            aggregate_path: None,
            checkpoint_path: None,
            workers: None,
            timeout_ms: None,
            retries: None,
            no_verify: false,
            styles: None,
            explain: false,
            faults: None,
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--records" => {
                    opts.records_path = Some(args.next().ok_or("--records needs a path")?);
                }
                "--aggregate" => {
                    opts.aggregate_path = Some(args.next().ok_or("--aggregate needs a path")?);
                }
                "--checkpoint" => {
                    opts.checkpoint_path = Some(args.next().ok_or("--checkpoint needs a path")?);
                }
                "--workers" => {
                    let value = args.next().ok_or("--workers needs a count")?;
                    opts.workers = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--workers needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--timeout-ms" => {
                    let value = args
                        .next()
                        .ok_or("--timeout-ms needs a value (0 disables)")?;
                    opts.timeout_ms =
                        Some(value.parse::<u64>().map_err(|_| {
                            format!("--timeout-ms needs an integer, got `{value}`")
                        })?);
                }
                "--retries" => {
                    let value = args.next().ok_or("--retries needs a count")?;
                    opts.retries = Some(
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("--retries needs an integer, got `{value}`"))?,
                    );
                }
                "--no-verify" => opts.no_verify = true,
                "--styles" => {
                    let list = args.next().ok_or("--styles needs a comma-separated list")?;
                    opts.styles = Some(parse_styles_list(&list)?);
                }
                "--explain" => opts.explain = true,
                "--faults" => {
                    opts.faults = Some(args.next().ok_or("--faults needs a site=spec list")?);
                }
                other => return Err(format!("unknown flag `{other}`\n{BATCH_USAGE}")),
            }
        }
        Ok(opts)
    }

    /// Resolves final batch options: defaults, overlaid with the
    /// manifest's settings, overridden by command-line flags.
    fn batch_options(&self, settings: &batch::ManifestSettings) -> batch::BatchOptions {
        let mut options = batch::BatchOptions::default();
        options.apply_manifest(settings);
        if let Some(workers) = self.workers {
            options = options.with_workers(workers);
        }
        if let Some(ms) = self.timeout_ms {
            options = options.with_timeout(if ms == 0 {
                None
            } else {
                Some(std::time::Duration::from_millis(ms))
            });
        }
        if let Some(retries) = self.retries {
            options = options.with_retries(retries);
        }
        if self.no_verify {
            options = options.with_verify(false);
        }
        if let Some(styles) = &self.styles {
            options = options.with_search(SearchOptions::new().with_styles(styles.clone()));
        }
        options
    }
}

/// `oasys batch`: a manifest-driven sweep on the worker pool.
fn run_batch(args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    use std::io::Write as _;

    let opts = BatchCliOptions::parse(args)?;
    apply_faults(opts.faults.as_deref())?;
    if let Some(msg) = injected_io_fault("io.manifest.read") {
        return Err(format!("{}: {msg}", opts.manifest_path));
    }
    let manifest = batch::Manifest::load(&opts.manifest_path).map_err(|e| e.to_string())?;
    let options = opts.batch_options(&manifest.settings());
    let jobs = manifest.expand().map_err(|e| e.to_string())?;
    eprintln!(
        "batch: {} jobs ({} specs × {} techs), {} workers",
        jobs.len(),
        manifest.specs().len(),
        manifest.techs().len(),
        options.workers()
    );

    let verify = options.verify();
    let search = options.search().clone();
    let mut batch_run = batch::Batch::new(jobs, options);
    if let Some(path) = &opts.checkpoint_path {
        batch_run = batch_run.with_checkpoint(path).map_err(|e| e.to_string())?;
        if batch_run.recovered_checkpoint() {
            eprintln!(
                "batch: checkpoint {path} was damaged — recovered, {} completed jobs salvaged",
                batch_run.resumable_count()
            );
        } else if batch_run.resumable_count() > 0 {
            eprintln!(
                "batch: resuming — {} completed jobs on record",
                batch_run.resumable_count()
            );
        }
    }

    let mut records_file = match &opts.records_path {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => None,
    };

    let tel = if opts.explain {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let runner = std::sync::Arc::new(
        batch::SynthRunner::new()
            .with_search(search)
            .with_verify(verify),
    );
    let report = batch_run
        .run(&runner, &tel, |record| {
            let line = record.render_json();
            match &mut records_file {
                Some(file) => {
                    let _ = writeln!(file, "{line}");
                    let _ = file.flush();
                }
                None => println!("{line}"),
            }
        })
        .map_err(|e| e.to_string())?;
    drop(records_file);

    match &opts.aggregate_path {
        Some(path) => {
            write_atomic(path, &report.render_aggregate())?;
            eprintln!("batch: aggregate written to {path}");
        }
        None => print!("{}", report.render_aggregate()),
    }
    eprintln!("{}", report.render_summary());
    if opts.explain {
        println!("run trace:");
        print!("{}", tel.report().render_explain());
    }

    Ok(if report.all_definitive() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parsed arguments of the dataset mode.
#[derive(Debug, PartialEq, Eq)]
struct DatasetCliOptions {
    manifest_path: String,
    out_dir: String,
    shards: usize,
    shard_index: usize,
    workers: Option<usize>,
    timeout_ms: Option<u64>,
    retries: Option<u32>,
    no_verify: bool,
    faults: Option<String>,
}

impl DatasetCliOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let manifest_path = args.next().ok_or(DATASET_USAGE)?;
        if manifest_path.starts_with("--") {
            return Err(format!(
                "the manifest path must come before any flags\n{DATASET_USAGE}"
            ));
        }
        let mut out_dir = None;
        let mut opts = DatasetCliOptions {
            manifest_path,
            out_dir: String::new(),
            shards: 1,
            shard_index: 0,
            workers: None,
            timeout_ms: None,
            retries: None,
            no_verify: false,
            faults: None,
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--out" => {
                    out_dir = Some(args.next().ok_or("--out needs a directory")?);
                }
                "--shards" => {
                    let value = args.next().ok_or("--shards needs a count")?;
                    opts.shards =
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--shards needs a positive integer, got `{value}`")
                            })?;
                }
                "--shard-index" => {
                    let value = args.next().ok_or("--shard-index needs an index")?;
                    opts.shard_index = value
                        .parse::<usize>()
                        .map_err(|_| format!("--shard-index needs an integer, got `{value}`"))?;
                }
                "--workers" => {
                    let value = args.next().ok_or("--workers needs a count")?;
                    opts.workers = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--workers needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--timeout-ms" => {
                    let value = args
                        .next()
                        .ok_or("--timeout-ms needs a value (0 disables)")?;
                    opts.timeout_ms =
                        Some(value.parse::<u64>().map_err(|_| {
                            format!("--timeout-ms needs an integer, got `{value}`")
                        })?);
                }
                "--retries" => {
                    let value = args.next().ok_or("--retries needs a count")?;
                    opts.retries = Some(
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("--retries needs an integer, got `{value}`"))?,
                    );
                }
                "--no-verify" => opts.no_verify = true,
                "--faults" => {
                    opts.faults = Some(args.next().ok_or("--faults needs a site=spec list")?);
                }
                other => return Err(format!("unknown flag `{other}`\n{DATASET_USAGE}")),
            }
        }
        opts.out_dir = out_dir.ok_or_else(|| format!("--out is required\n{DATASET_USAGE}"))?;
        if opts.shard_index >= opts.shards {
            return Err(format!(
                "--shard-index {} is out of range for --shards {}",
                opts.shard_index, opts.shards
            ));
        }
        Ok(opts)
    }
}

/// `oasys dataset`: a sampled sweep sharded into streaming JSONL
/// records, and `oasys dataset merge` to stitch the shards together.
fn run_dataset(
    mut args: std::iter::Peekable<impl Iterator<Item = String>>,
) -> Result<ExitCode, String> {
    if args.peek().map(String::as_str) == Some("merge") {
        args.next();
        let dir = args.next().ok_or(DATASET_USAGE)?;
        if let Some(extra) = args.next() {
            return Err(format!("unexpected argument `{extra}`\n{DATASET_USAGE}"));
        }
        let report =
            oasys::dataset::merge(std::path::Path::new(&dir)).map_err(|e| e.to_string())?;
        eprintln!(
            "dataset: merged {} shards, {} records ({} passed) into {}",
            report.shards,
            report.records,
            report.passed,
            report.records_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let opts = DatasetCliOptions::parse(args)?;
    apply_faults(opts.faults.as_deref())?;
    if let Some(msg) = injected_io_fault("io.manifest.read") {
        return Err(format!("{}: {msg}", opts.manifest_path));
    }
    let manifest = batch::Manifest::load(&opts.manifest_path).map_err(|e| e.to_string())?;
    let mut batch_options = batch::BatchOptions::default();
    batch_options.apply_manifest(&manifest.settings());
    if let Some(workers) = opts.workers {
        batch_options = batch_options.with_workers(workers);
    }
    if let Some(ms) = opts.timeout_ms {
        batch_options = batch_options.with_timeout(if ms == 0 {
            None
        } else {
            Some(std::time::Duration::from_millis(ms))
        });
    }
    if let Some(retries) = opts.retries {
        batch_options = batch_options.with_retries(retries);
    }
    if opts.no_verify {
        batch_options = batch_options.with_verify(false);
    }
    let workers = batch_options.workers();
    let options = oasys::dataset::DatasetOptions {
        shards: opts.shards,
        shard_index: opts.shard_index,
        batch: batch_options,
    };
    let tel = Telemetry::new();
    let report = oasys::dataset::generate(
        &manifest,
        std::path::Path::new(&opts.out_dir),
        &options,
        &tel,
    )
    .map_err(|e| e.to_string())?;
    let lookups = report.cache_hits + report.cache_misses;
    eprintln!(
        "dataset: shard {}/{} published — {} records ({} resumed, {} executed, {} passed, {} draws rejected), {} workers, cache {:.0}% hit, plan {:016x}",
        opts.shard_index,
        opts.shards,
        report.records,
        report.resumed,
        report.executed,
        report.passed,
        report.samples_rejected,
        workers,
        if lookups == 0 {
            0.0
        } else {
            100.0 * report.cache_hits as f64 / lookups as f64
        },
        report.plan_fingerprint,
    );
    Ok(ExitCode::SUCCESS)
}

/// Parsed arguments of the `serve` mode.
#[derive(Debug, PartialEq, Eq)]
struct ServeCliOptions {
    socket: String,
    workers: Option<usize>,
    max_inflight: Option<usize>,
    queue_depth: Option<usize>,
    io_timeout_ms: Option<u64>,
    cache_entries: Option<usize>,
    timeout_ms: Option<u64>,
    faults: Option<String>,
}

impl ServeCliOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut socket = None;
        let mut opts = ServeCliOptions {
            socket: String::new(),
            workers: None,
            max_inflight: None,
            queue_depth: None,
            io_timeout_ms: None,
            cache_entries: None,
            timeout_ms: None,
            faults: None,
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--socket" => {
                    socket = Some(args.next().ok_or("--socket needs a path")?);
                }
                "--workers" => {
                    let value = args.next().ok_or("--workers needs a count")?;
                    opts.workers = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--workers needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--max-inflight" => {
                    let value = args.next().ok_or("--max-inflight needs a count")?;
                    opts.max_inflight = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--max-inflight needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--queue-depth" => {
                    let value = args.next().ok_or("--queue-depth needs a count")?;
                    opts.queue_depth = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--queue-depth needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--io-timeout-ms" => {
                    let value = args.next().ok_or("--io-timeout-ms needs a value")?;
                    opts.io_timeout_ms = Some(
                        value
                            .parse::<u64>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--io-timeout-ms needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--cache-entries" => {
                    let value = args.next().ok_or("--cache-entries needs a count")?;
                    opts.cache_entries = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("--cache-entries needs a positive integer, got `{value}`")
                            })?,
                    );
                }
                "--timeout-ms" => {
                    let value = args
                        .next()
                        .ok_or("--timeout-ms needs a value (0 disables)")?;
                    opts.timeout_ms =
                        Some(value.parse::<u64>().map_err(|_| {
                            format!("--timeout-ms needs an integer, got `{value}`")
                        })?);
                }
                "--faults" => {
                    opts.faults = Some(args.next().ok_or("--faults needs a site=spec list")?);
                }
                other => return Err(format!("unknown flag `{other}`\n{SERVE_USAGE}")),
            }
        }
        opts.socket = socket.ok_or_else(|| format!("--socket is required\n{SERVE_USAGE}"))?;
        Ok(opts)
    }

    /// Resolves the library-level server options.
    fn serve_options(&self) -> oasys::serve::ServeOptions {
        let mut options = oasys::serve::ServeOptions::new(&self.socket);
        if let Some(workers) = self.workers {
            options = options.with_workers(workers);
        }
        if let Some(max_inflight) = self.max_inflight {
            options = options.with_max_inflight(max_inflight);
        }
        if let Some(depth) = self.queue_depth {
            options = options.with_queue_depth(depth);
        }
        if let Some(ms) = self.io_timeout_ms {
            options = options.with_io_timeout(std::time::Duration::from_millis(ms));
        }
        if let Some(entries) = self.cache_entries {
            options = options.with_cache_entries(entries);
        }
        if let Some(ms) = self.timeout_ms {
            options = options.with_timeout(if ms == 0 {
                None
            } else {
                Some(std::time::Duration::from_millis(ms))
            });
        }
        options
    }
}

/// `oasys serve`: a resident synthesis server on a Unix socket.
fn run_serve(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = ServeCliOptions::parse(args)?;
    apply_faults(opts.faults.as_deref())?;
    oasys::serve::install_sigterm_drain();
    let server = oasys::serve::Server::bind(opts.serve_options())
        .map_err(|e| format!("{}: {e}", opts.socket))?;
    eprintln!(
        "serve: listening on {} ({} workers, {} in-flight max)",
        opts.socket,
        server.options().workers(),
        server.options().max_inflight()
    );
    let report = server.run().map_err(|e| format!("{}: {e}", opts.socket))?;
    eprintln!(
        "serve: drained — {} served ({} degraded), {} shed, {} evicted, {} brownouts, \
         {} workers replaced, cache {} hits / {} misses / {} evictions",
        report.served,
        report.degraded,
        report.shed,
        report.evicted,
        report.brownout_entries,
        report.workers_replaced,
        report.cache_hits,
        report.cache_misses,
        report.cache_evictions
    );
    Ok(())
}

/// Parsed arguments of the `client` mode.
#[derive(Debug, PartialEq, Eq)]
struct ClientCliOptions {
    socket: String,
    spec_path: Option<String>,
    tech_path: Option<String>,
    timeout_ms: Option<u64>,
    retries: u32,
    retry_seed: u64,
    ping: bool,
    health: bool,
    shutdown: bool,
}

impl ClientCliOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut socket = None;
        let mut positional = Vec::new();
        let mut opts = ClientCliOptions {
            socket: String::new(),
            spec_path: None,
            tech_path: None,
            timeout_ms: None,
            retries: 0,
            retry_seed: 0,
            ping: false,
            health: false,
            shutdown: false,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--socket" => {
                    socket = Some(args.next().ok_or("--socket needs a path")?);
                }
                "--timeout-ms" => {
                    let value = args.next().ok_or("--timeout-ms needs a value")?;
                    opts.timeout_ms =
                        Some(value.parse::<u64>().map_err(|_| {
                            format!("--timeout-ms needs an integer, got `{value}`")
                        })?);
                }
                "--retries" => {
                    let value = args.next().ok_or("--retries needs a count")?;
                    opts.retries = value
                        .parse::<u32>()
                        .map_err(|_| format!("--retries needs an integer, got `{value}`"))?;
                }
                "--retry-seed" => {
                    let value = args.next().ok_or("--retry-seed needs a value")?;
                    opts.retry_seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("--retry-seed needs an integer, got `{value}`"))?;
                }
                "--ping" => opts.ping = true,
                "--health" => opts.health = true,
                "--shutdown" => opts.shutdown = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag `{other}`\n{CLIENT_USAGE}"));
                }
                _ => positional.push(arg),
            }
        }
        opts.socket = socket.ok_or_else(|| format!("--socket is required\n{CLIENT_USAGE}"))?;
        let op_flags =
            usize::from(opts.ping) + usize::from(opts.health) + usize::from(opts.shutdown);
        if op_flags > 0 {
            if op_flags > 1 {
                return Err(format!(
                    "--ping, --health, and --shutdown are exclusive\n{CLIENT_USAGE}"
                ));
            }
            if !positional.is_empty() {
                return Err(format!(
                    "--ping/--health/--shutdown take no spec or tech files\n{CLIENT_USAGE}"
                ));
            }
            return Ok(opts);
        }
        let mut positional = positional.into_iter();
        opts.spec_path = Some(positional.next().ok_or(CLIENT_USAGE)?);
        opts.tech_path = Some(positional.next().ok_or(CLIENT_USAGE)?);
        if let Some(extra) = positional.next() {
            return Err(format!("unexpected argument `{extra}`\n{CLIENT_USAGE}"));
        }
        Ok(opts)
    }
}

/// Base delay of the client's capped-exponential retry backoff.
const RETRY_BACKOFF_BASE_MS: u64 = 25;
/// Ceiling on any single retry delay.
const RETRY_BACKOFF_CAP_MS: u64 = 400;

/// SplitMix64: a tiny, seedable mixer used to jitter retry backoff so
/// that a herd of clients retrying after the same `busy` response does
/// not reconverge on the server in lockstep. Deterministic per
/// `(seed, attempt)`, so tests can pin `--retry-seed`.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The jittered backoff before retry `attempt` (1-based): the capped
/// exponential delay, scaled by a factor in [0.5, 1.0) drawn from the
/// seeded mixer.
fn retry_backoff(attempt: u32, seed: u64) -> std::time::Duration {
    let shift = (attempt - 1).min(10);
    let base = (RETRY_BACKOFF_BASE_MS << shift).min(RETRY_BACKOFF_CAP_MS);
    let jitter = splitmix64(seed ^ u64::from(attempt));
    // Map the high 32 bits onto [0.5, 1.0).
    let scale = 0.5 + f64::from((jitter >> 32) as u32) / f64::from(u32::MAX) * 0.5;
    std::time::Duration::from_millis(((base as f64) * scale) as u64)
}

/// Whether a server response warrants a retry: only `busy` (overload
/// shedding) is transient; `error` responses are answers.
fn response_is_busy(response: &str) -> bool {
    oasys_telemetry::json::parse(response)
        .ok()
        .and_then(|json| {
            json.get("status")
                .and_then(oasys_telemetry::json::Json::as_str)
                .map(|status| status == "busy")
        })
        .unwrap_or(false)
}

/// `oasys client`: send one request to a running server and print the
/// JSON response. Exits nonzero unless the server answered `ok`.
/// `--retries` retries connect failures, I/O errors, and `busy`
/// responses with seeded-jitter capped-exponential backoff.
fn run_client(args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let opts = ClientCliOptions::parse(args)?;
    let body = if opts.ping {
        oasys::serve::op_request("ping")
    } else if opts.health {
        oasys::serve::op_request("health")
    } else if opts.shutdown {
        oasys::serve::op_request("shutdown")
    } else {
        let (spec_path, tech_path) = match (&opts.spec_path, &opts.tech_path) {
            (Some(spec), Some(tech)) => (spec, tech),
            _ => return Err(CLIENT_USAGE.to_string()),
        };
        let spec_text =
            std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
        let tech_text =
            std::fs::read_to_string(tech_path).map_err(|e| format!("{tech_path}: {e}"))?;
        oasys::serve::synth_request(&spec_text, &tech_text, opts.timeout_ms)
    };
    let socket = std::path::Path::new(&opts.socket);
    let mut attempt = 0u32;
    let response = loop {
        let outcome = oasys::serve::request(socket, &body);
        let retryable = match &outcome {
            Ok(response) => response_is_busy(response),
            Err(_) => true,
        };
        if !retryable || attempt >= opts.retries {
            break outcome.map_err(|e| format!("{}: {e}", opts.socket))?;
        }
        attempt += 1;
        let delay = retry_backoff(attempt, opts.retry_seed);
        eprintln!(
            "client: attempt {attempt}/{} {}, retrying in {} ms",
            opts.retries,
            match &outcome {
                Ok(_) => "was shed (busy)".to_string(),
                Err(e) => format!("failed ({e})"),
            },
            delay.as_millis()
        );
        std::thread::sleep(delay);
    };
    println!("{response}");
    let ok = oasys_telemetry::json::parse(&response)
        .ok()
        .and_then(|json| {
            json.get("status")
                .and_then(oasys_telemetry::json::Json::as_str)
                .map(|status| status == "ok")
        })
        .unwrap_or(false);
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// An injected error at a file-IO fault site, when one is configured —
/// these sites simulate unreadable inputs without touching the disk.
fn injected_io_fault(site: &str) -> Option<String> {
    if oasys_faults::armed() {
        oasys_faults::eval_err(site)
    } else {
        None
    }
}

/// Parses the specification and technology files shared by both modes.
fn load_inputs(
    spec_path: &str,
    tech_path: &str,
) -> Result<(oasys::OpAmpSpec, oasys_process::Process), String> {
    if let Some(msg) = injected_io_fault("io.spec.read") {
        return Err(format!("{spec_path}: {msg}"));
    }
    let spec_text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = specfile::parse(&spec_text).map_err(|e| e.to_string())?;
    if let Some(msg) = injected_io_fault("io.tech.read") {
        return Err(format!("{tech_path}: {msg}"));
    }
    let tech_text = std::fs::read_to_string(tech_path).map_err(|e| format!("{tech_path}: {e}"))?;
    let process = techfile::parse(&tech_text).map_err(|e| e.to_string())?;
    Ok((spec, process))
}

/// Writes `text` to `path` atomically: the bytes land in a sibling
/// temporary file, are fsynced, and the file is renamed over the target,
/// so a crash mid-write can never leave a torn aggregate behind.
fn write_atomic(path: &str, text: &str) -> Result<(), String> {
    use std::io::Write as _;
    let err = |e: std::io::Error| format!("{path}: {e}");
    let tmp = format!("{path}.tmp.{}", std::process::id());
    let mut file = std::fs::File::create(&tmp).map_err(err)?;
    file.write_all(text.as_bytes()).map_err(err)?;
    file.sync_all().map_err(err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn synth_defaults() {
        let opts = SynthOptions::parse(argv(&["spec.txt", "tech.txt"])).unwrap();
        assert_eq!(opts.spec_path, "spec.txt");
        assert_eq!(opts.tech_path, "tech.txt");
        assert_eq!(opts.out_path, None);
        assert!(opts.run_verify);
        assert!(!opts.explain);
        assert_eq!(opts.trace_out, None);
        assert_eq!(opts.trace_format, TraceFormat::Json);
        assert!(!opts.telemetry_requested());
    }

    #[test]
    fn synth_missing_positional_args_shows_usage() {
        let err = SynthOptions::parse(argv(&["spec.txt"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn synth_unknown_flag_rejected() {
        let err = SynthOptions::parse(argv(&["s", "t", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag `--bogus`"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn synth_out_requires_path() {
        let err = SynthOptions::parse(argv(&["s", "t", "--out"])).unwrap_err();
        assert!(err.contains("--out needs a path"), "{err}");
    }

    #[test]
    fn synth_trace_out_requires_path() {
        let err = SynthOptions::parse(argv(&["s", "t", "--trace-out"])).unwrap_err();
        assert!(err.contains("--trace-out needs a path"), "{err}");
    }

    #[test]
    fn synth_explain_and_trace_out_parse() {
        let opts = SynthOptions::parse(argv(&[
            "s",
            "t",
            "--explain",
            "--trace-out",
            "run.json",
            "--no-verify",
        ]))
        .unwrap();
        assert!(opts.explain);
        assert_eq!(opts.trace_out.as_deref(), Some("run.json"));
        assert!(!opts.run_verify);
        assert!(opts.telemetry_requested());
    }

    #[test]
    fn synth_metrics_out_parses_and_enables_telemetry() {
        let opts = SynthOptions::parse(argv(&["s", "t", "--metrics-out", "m.json"])).unwrap();
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert!(opts.telemetry_requested());
        let err = SynthOptions::parse(argv(&["s", "t", "--metrics-out"])).unwrap_err();
        assert!(err.contains("--metrics-out needs a path"), "{err}");
    }

    #[test]
    fn synth_trace_format_values() {
        let opts = SynthOptions::parse(argv(&["s", "t", "--trace-format", "chrome"])).unwrap();
        assert_eq!(opts.trace_format, TraceFormat::Chrome);
        let opts = SynthOptions::parse(argv(&["s", "t", "--trace-format", "json"])).unwrap();
        assert_eq!(opts.trace_format, TraceFormat::Json);
    }

    #[test]
    fn synth_bad_trace_format_rejected() {
        let err = SynthOptions::parse(argv(&["s", "t", "--trace-format", "xml"])).unwrap_err();
        assert!(err.contains("unknown trace format `xml`"), "{err}");
        let err = SynthOptions::parse(argv(&["s", "t", "--trace-format"])).unwrap_err();
        assert!(err.contains("--trace-format needs"), "{err}");
    }

    #[test]
    fn synth_styles_parses_shell_friendly_names() {
        let opts =
            SynthOptions::parse(argv(&["s", "t", "--styles", "one-stage-ota,two-stage"])).unwrap();
        assert_eq!(
            opts.styles,
            Some(vec!["one-stage OTA".to_string(), "two-stage".to_string()])
        );
        let search = opts.search_options();
        assert_eq!(
            search.styles(),
            Some(&["one-stage OTA".to_string(), "two-stage".to_string()][..])
        );
    }

    #[test]
    fn synth_styles_accepts_display_names_and_spaces() {
        let opts = SynthOptions::parse(argv(&[
            "s",
            "t",
            "--styles",
            "one-stage OTA, Folded-Cascode",
        ]))
        .unwrap();
        assert_eq!(
            opts.styles,
            Some(vec![
                "one-stage OTA".to_string(),
                "folded cascode".to_string()
            ])
        );
    }

    #[test]
    fn synth_styles_rejects_unknown_name() {
        let err = SynthOptions::parse(argv(&["s", "t", "--styles", "three-stage"])).unwrap_err();
        assert!(err.contains("unknown style `three-stage`"), "{err}");
        assert!(err.contains("one-stage-ota"), "{err}");
        assert!(err.contains("folded-cascode"), "{err}");
    }

    #[test]
    fn synth_styles_requires_value() {
        let err = SynthOptions::parse(argv(&["s", "t", "--styles"])).unwrap_err();
        assert!(err.contains("--styles needs"), "{err}");
        let err = SynthOptions::parse(argv(&["s", "t", "--styles", ","])).unwrap_err();
        assert!(err.contains("--styles needs at least one style"), "{err}");
    }

    #[test]
    fn synth_default_has_no_style_filter() {
        let opts = SynthOptions::parse(argv(&["s", "t"])).unwrap();
        assert_eq!(opts.styles, None);
        assert_eq!(opts.search_options().styles(), None);
    }

    #[test]
    fn lint_defaults_and_paths() {
        let opts = LintOptions::parse(argv(&["spec.txt", "tech.txt"])).unwrap();
        assert_eq!(opts.paths, vec!["spec.txt", "tech.txt"]);
        assert!(!opts.deny_warnings);
        assert_eq!(opts.format, LintFormat::Human);
    }

    #[test]
    fn lint_flags_parse() {
        let opts = LintOptions::parse(argv(&["--deny-warnings", "--format", "json"])).unwrap();
        assert!(opts.deny_warnings);
        assert_eq!(opts.format, LintFormat::Json);
        let opts = LintOptions::parse(argv(&["--format", "sarif"])).unwrap();
        assert_eq!(opts.format, LintFormat::Sarif);
        let opts = LintOptions::parse(argv(&["--format", "sarif", "--format", "human"])).unwrap();
        assert_eq!(opts.format, LintFormat::Human, "last --format wins");
    }

    #[test]
    fn lint_bad_format_rejected() {
        let err = LintOptions::parse(argv(&["--format", "yaml"])).unwrap_err();
        assert!(err.contains("unknown format `yaml`"), "{err}");
        let err = LintOptions::parse(argv(&["--format"])).unwrap_err();
        assert!(err.contains("--format needs"), "{err}");
    }

    #[test]
    fn lint_unknown_flag_rejected() {
        let err = LintOptions::parse(argv(&["--nope"])).unwrap_err();
        assert!(err.contains("unknown flag `--nope`"), "{err}");
    }

    #[test]
    fn batch_defaults() {
        let opts = BatchCliOptions::parse(argv(&["sweep.manifest"])).unwrap();
        assert_eq!(opts.manifest_path, "sweep.manifest");
        assert_eq!(opts.records_path, None);
        assert_eq!(opts.checkpoint_path, None);
        assert_eq!(opts.workers, None);
        assert_eq!(opts.timeout_ms, None);
        assert_eq!(opts.retries, None);
        assert!(!opts.no_verify);
        assert!(!opts.explain);
    }

    #[test]
    fn batch_requires_manifest_path() {
        let err = BatchCliOptions::parse(argv(&[])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
        let err = BatchCliOptions::parse(argv(&["--workers", "2"])).unwrap_err();
        assert!(err.contains("manifest path must come before"), "{err}");
    }

    #[test]
    fn batch_all_flags_parse() {
        let opts = BatchCliOptions::parse(argv(&[
            "sweep.manifest",
            "--records",
            "out.jsonl",
            "--aggregate",
            "agg.json",
            "--checkpoint",
            "run.checkpoint",
            "--workers",
            "3",
            "--timeout-ms",
            "5000",
            "--retries",
            "1",
            "--no-verify",
            "--styles",
            "two-stage",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(opts.records_path.as_deref(), Some("out.jsonl"));
        assert_eq!(opts.aggregate_path.as_deref(), Some("agg.json"));
        assert_eq!(opts.checkpoint_path.as_deref(), Some("run.checkpoint"));
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.timeout_ms, Some(5000));
        assert_eq!(opts.retries, Some(1));
        assert!(opts.no_verify);
        assert_eq!(opts.styles, Some(vec!["two-stage".to_string()]));
        assert!(opts.explain);
    }

    #[test]
    fn dataset_defaults_and_flags_parse() {
        let opts = DatasetCliOptions::parse(argv(&["ds.manifest", "--out", "out"])).unwrap();
        assert_eq!(opts.manifest_path, "ds.manifest");
        assert_eq!(opts.out_dir, "out");
        assert_eq!(opts.shards, 1);
        assert_eq!(opts.shard_index, 0);
        assert!(!opts.no_verify);

        let opts = DatasetCliOptions::parse(argv(&[
            "ds.manifest",
            "--out",
            "out",
            "--shards",
            "4",
            "--shard-index",
            "2",
            "--workers",
            "3",
            "--timeout-ms",
            "5000",
            "--retries",
            "1",
            "--no-verify",
            "--faults",
            "dataset.sink.record=fail_once",
        ]))
        .unwrap();
        assert_eq!(opts.shards, 4);
        assert_eq!(opts.shard_index, 2);
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.timeout_ms, Some(5000));
        assert_eq!(opts.retries, Some(1));
        assert!(opts.no_verify);
        assert_eq!(
            opts.faults.as_deref(),
            Some("dataset.sink.record=fail_once")
        );
    }

    #[test]
    fn dataset_rejects_bad_arguments() {
        let err = DatasetCliOptions::parse(argv(&[])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
        let err = DatasetCliOptions::parse(argv(&["--out", "x"])).unwrap_err();
        assert!(err.contains("manifest path must come before"), "{err}");
        let err = DatasetCliOptions::parse(argv(&["m"])).unwrap_err();
        assert!(err.contains("--out is required"), "{err}");
        let err =
            DatasetCliOptions::parse(argv(&["m", "--out", "x", "--shards", "0"])).unwrap_err();
        assert!(err.contains("--shards needs a positive integer"), "{err}");
        let err = DatasetCliOptions::parse(argv(&[
            "m",
            "--out",
            "x",
            "--shards",
            "2",
            "--shard-index",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = DatasetCliOptions::parse(argv(&["m", "--out", "x", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn faults_flag_parses_and_requires_value() {
        let opts = SynthOptions::parse(argv(&["s", "t", "--faults", "sim.dc.solve=err"])).unwrap();
        assert_eq!(opts.faults.as_deref(), Some("sim.dc.solve=err"));
        let err = SynthOptions::parse(argv(&["s", "t", "--faults"])).unwrap_err();
        assert!(err.contains("--faults needs"), "{err}");
        let opts =
            BatchCliOptions::parse(argv(&["m", "--faults", "batch.attempt=fail_once"])).unwrap();
        assert_eq!(opts.faults.as_deref(), Some("batch.attempt=fail_once"));
    }

    #[test]
    fn bad_faults_list_is_rejected_with_context() {
        let err = apply_faults(Some("nonsense")).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
        assert!(apply_faults(None).is_ok());
    }

    #[test]
    fn batch_rejects_bad_numbers() {
        let err = BatchCliOptions::parse(argv(&["m", "--workers", "0"])).unwrap_err();
        assert!(err.contains("--workers needs a positive integer"), "{err}");
        let err = BatchCliOptions::parse(argv(&["m", "--timeout-ms", "soon"])).unwrap_err();
        assert!(err.contains("--timeout-ms needs an integer"), "{err}");
        let err = BatchCliOptions::parse(argv(&["m", "--retries", "-1"])).unwrap_err();
        assert!(err.contains("--retries needs an integer"), "{err}");
    }

    #[test]
    fn batch_cli_overrides_manifest_settings() {
        let opts = BatchCliOptions::parse(argv(&[
            "m",
            "--workers",
            "2",
            "--timeout-ms",
            "0",
            "--no-verify",
        ]))
        .unwrap();
        let settings = batch::ManifestSettings {
            workers: Some(7),
            timeout: Some(std::time::Duration::from_secs(9)),
            retries: Some(5),
            verify: Some(true),
        };
        let options = opts.batch_options(&settings);
        assert_eq!(options.workers(), 2);
        assert_eq!(options.timeout(), None);
        assert_eq!(options.retries(), 5);
        assert!(!options.verify());
    }

    #[test]
    fn serve_defaults_require_only_the_socket() {
        let opts = ServeCliOptions::parse(argv(&["--socket", "/tmp/oasys.sock"])).unwrap();
        assert_eq!(opts.socket, "/tmp/oasys.sock");
        assert_eq!(opts.workers, None);
        assert_eq!(opts.max_inflight, None);
        assert_eq!(opts.queue_depth, None);
        assert_eq!(opts.io_timeout_ms, None);
        assert_eq!(opts.cache_entries, None);
        assert_eq!(opts.timeout_ms, None);
        let options = opts.serve_options();
        assert_eq!(options.workers(), oasys::serve::DEFAULT_WORKERS);
        assert_eq!(options.max_inflight(), oasys::serve::DEFAULT_MAX_INFLIGHT);
        assert_eq!(options.queue_depth(), oasys::serve::DEFAULT_QUEUE_DEPTH);
        assert_eq!(options.io_timeout(), oasys::serve::DEFAULT_IO_TIMEOUT);
        assert_eq!(options.cache_entries(), batch::DEFAULT_CACHE_ENTRIES);
        assert_eq!(options.timeout(), None);
    }

    #[test]
    fn serve_missing_socket_shows_usage() {
        let err = ServeCliOptions::parse(argv(&["--workers", "2"])).unwrap_err();
        assert!(err.contains("--socket is required"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        let err = ServeCliOptions::parse(argv(&["--socket"])).unwrap_err();
        assert!(err.contains("--socket needs a path"), "{err}");
    }

    #[test]
    fn serve_all_flags_parse_and_resolve() {
        let opts = ServeCliOptions::parse(argv(&[
            "--socket",
            "srv.sock",
            "--workers",
            "3",
            "--max-inflight",
            "5",
            "--queue-depth",
            "9",
            "--io-timeout-ms",
            "750",
            "--cache-entries",
            "128",
            "--timeout-ms",
            "2500",
        ]))
        .unwrap();
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.max_inflight, Some(5));
        assert_eq!(opts.queue_depth, Some(9));
        assert_eq!(opts.io_timeout_ms, Some(750));
        assert_eq!(opts.cache_entries, Some(128));
        assert_eq!(opts.timeout_ms, Some(2500));
        let options = opts.serve_options();
        assert_eq!(options.workers(), 3);
        assert_eq!(options.max_inflight(), 5);
        assert_eq!(options.queue_depth(), 9);
        assert_eq!(options.io_timeout(), std::time::Duration::from_millis(750));
        assert_eq!(options.cache_entries(), 128);
        assert_eq!(
            options.timeout(),
            Some(std::time::Duration::from_millis(2500))
        );
    }

    #[test]
    fn serve_timeout_zero_disables_the_default_deadline() {
        let opts =
            ServeCliOptions::parse(argv(&["--socket", "s.sock", "--timeout-ms", "0"])).unwrap();
        assert_eq!(opts.timeout_ms, Some(0));
        assert_eq!(opts.serve_options().timeout(), None);
    }

    #[test]
    fn serve_rejects_bad_numbers_and_unknown_flags() {
        let err = ServeCliOptions::parse(argv(&["--socket", "s", "--workers", "0"])).unwrap_err();
        assert!(err.contains("--workers needs a positive integer"), "{err}");
        let err =
            ServeCliOptions::parse(argv(&["--socket", "s", "--max-inflight", "lots"])).unwrap_err();
        assert!(
            err.contains("--max-inflight needs a positive integer"),
            "{err}"
        );
        let err =
            ServeCliOptions::parse(argv(&["--socket", "s", "--cache-entries", "0"])).unwrap_err();
        assert!(
            err.contains("--cache-entries needs a positive integer"),
            "{err}"
        );
        let err =
            ServeCliOptions::parse(argv(&["--socket", "s", "--timeout-ms", "soon"])).unwrap_err();
        assert!(err.contains("--timeout-ms needs an integer"), "{err}");
        let err =
            ServeCliOptions::parse(argv(&["--socket", "s", "--queue-depth", "0"])).unwrap_err();
        assert!(
            err.contains("--queue-depth needs a positive integer"),
            "{err}"
        );
        let err =
            ServeCliOptions::parse(argv(&["--socket", "s", "--io-timeout-ms", "0"])).unwrap_err();
        assert!(
            err.contains("--io-timeout-ms needs a positive integer"),
            "{err}"
        );
        let err = ServeCliOptions::parse(argv(&["--socket", "s", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag `--bogus`"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn client_synth_form_parses() {
        let opts = ClientCliOptions::parse(argv(&[
            "--socket",
            "s.sock",
            "spec.txt",
            "tech.txt",
            "--timeout-ms",
            "900",
        ]))
        .unwrap();
        assert_eq!(opts.spec_path.as_deref(), Some("spec.txt"));
        assert_eq!(opts.tech_path.as_deref(), Some("tech.txt"));
        assert_eq!(opts.timeout_ms, Some(900));
        assert_eq!(opts.retries, 0);
        assert!(!opts.ping && !opts.health && !opts.shutdown);
    }

    #[test]
    fn client_ping_health_and_shutdown_forms() {
        let opts = ClientCliOptions::parse(argv(&["--socket", "s", "--ping"])).unwrap();
        assert!(opts.ping);
        let opts = ClientCliOptions::parse(argv(&["--socket", "s", "--health"])).unwrap();
        assert!(opts.health);
        let opts = ClientCliOptions::parse(argv(&["--socket", "s", "--shutdown"])).unwrap();
        assert!(opts.shutdown);
        let err =
            ClientCliOptions::parse(argv(&["--socket", "s", "--ping", "--shutdown"])).unwrap_err();
        assert!(err.contains("exclusive"), "{err}");
        let err =
            ClientCliOptions::parse(argv(&["--socket", "s", "--health", "--ping"])).unwrap_err();
        assert!(err.contains("exclusive"), "{err}");
        let err =
            ClientCliOptions::parse(argv(&["--socket", "s", "--ping", "spec.txt"])).unwrap_err();
        assert!(err.contains("take no spec"), "{err}");
    }

    #[test]
    fn client_retry_flags_parse() {
        let opts = ClientCliOptions::parse(argv(&[
            "--socket",
            "s",
            "--ping",
            "--retries",
            "4",
            "--retry-seed",
            "99",
        ]))
        .unwrap();
        assert_eq!(opts.retries, 4);
        assert_eq!(opts.retry_seed, 99);
        let err = ClientCliOptions::parse(argv(&["--socket", "s", "--retries", "-2"])).unwrap_err();
        assert!(err.contains("--retries needs an integer"), "{err}");
    }

    #[test]
    fn retry_backoff_is_capped_exponential_with_seeded_jitter() {
        // Deterministic per (attempt, seed).
        assert_eq!(retry_backoff(1, 42), retry_backoff(1, 42));
        // Jitter keeps every delay within [base/2, base).
        for attempt in 1..=8 {
            let base = (RETRY_BACKOFF_BASE_MS << (attempt - 1).min(10)).min(RETRY_BACKOFF_CAP_MS);
            let delay = retry_backoff(attempt, 7).as_millis() as u64;
            assert!(
                delay >= base / 2 && delay < base,
                "attempt {attempt}: {delay} vs {base}"
            );
        }
        // The cap holds even for huge attempt numbers.
        assert!(retry_backoff(30, 1).as_millis() as u64 <= RETRY_BACKOFF_CAP_MS);
    }

    #[test]
    fn busy_responses_are_retryable_and_errors_are_not() {
        assert!(response_is_busy(
            "{\"status\":\"busy\",\"shed\":true,\"reason\":\"admission queue full\"}"
        ));
        assert!(!response_is_busy("{\"status\":\"ok\"}"));
        assert!(!response_is_busy(
            "{\"status\":\"error\",\"kind\":\"spec\",\"message\":\"bad\"}"
        ));
        assert!(!response_is_busy("not json"));
    }

    #[test]
    fn client_missing_files_shows_usage() {
        let err = ClientCliOptions::parse(argv(&["--socket", "s", "spec.txt"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
        let err = ClientCliOptions::parse(argv(&["spec.txt", "tech.txt"])).unwrap_err();
        assert!(err.contains("--socket is required"), "{err}");
        let err = ClientCliOptions::parse(argv(&["--socket", "s", "a", "b", "c"])).unwrap_err();
        assert!(err.contains("unexpected argument `c`"), "{err}");
    }
}
