//! The `oasys` command-line tool: synthesize a sized CMOS op-amp
//! schematic from a specification file and a technology file.
//!
//! ```text
//! oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify]
//!       [--styles <list>] [--explain] [--trace-out <file.json>]
//!       [--trace-format json|chrome]
//! oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json]
//! ```
//!
//! The first form prints the style-selection outcome, the sized device
//! table, and the spec/predicted/measured datasheet; optionally writes a
//! SPICE deck. `--styles` restricts the breadth-first search to a
//! comma-separated subset of the style catalog (`one-stage-ota`,
//! `two-stage`, `folded-cascode`); unknown names are rejected up front.
//! `--explain` prints the annotated span tree of the run
//! (style attempts, plan steps, rule firings, simulator phases);
//! `--trace-out` writes the machine-readable run report — JSON-lines
//! events plus a metrics snapshot by default, or the Chrome trace-event
//! format (loadable in Perfetto / `chrome://tracing`) under
//! `--trace-format chrome`.
//!
//! The `lint` form runs the static analyzers: the plan dataflow checks
//! over every built-in style plan, and — when a spec and tech file are
//! given — the netlist electrical-rule checks over each successfully
//! synthesized design. Diagnostics go to stdout (human-readable or as a
//! JSON array); the exit code is nonzero when any error fires, or, under
//! `--deny-warnings`, when any diagnostic fires at all.

use oasys::{
    specfile, styles, synthesize_with, synthesize_with_options, verify_with, Datasheet, OpAmpStyle,
    SearchOptions, Synthesis,
};
use oasys_netlist::{lint, report, spice};
use oasys_process::techfile;
use oasys_telemetry::Telemetry;
use std::process::ExitCode;

const SYNTH_USAGE: &str = "usage: oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify] [--styles <list>] [--explain] [--trace-out <file.json>] [--trace-format json|chrome]\n       oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json]";
const LINT_USAGE: &str =
    "usage: oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json]";

fn main() -> ExitCode {
    let result = {
        let mut args = std::env::args().skip(1).peekable();
        if args.peek().map(String::as_str) == Some("lint") {
            args.next();
            run_lint(args)
        } else {
            run_synth(args).map(|()| ExitCode::SUCCESS)
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("oasys: {message}");
            ExitCode::FAILURE
        }
    }
}

/// On-disk format for `--trace-out`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    /// JSON-lines events plus a metrics snapshot (the default).
    Json,
    /// Chrome trace-event array for Perfetto / `chrome://tracing`.
    Chrome,
}

/// Resolves one `--styles` entry. Accepts the display name exactly
/// (`"one-stage OTA"`) or the shell-friendly form with hyphens for
/// spaces, case-insensitively (`one-stage-ota`, `folded-cascode`).
fn parse_style(name: &str) -> Option<OpAmpStyle> {
    let normalized = name.trim().to_lowercase().replace(' ', "-");
    OpAmpStyle::ALL
        .into_iter()
        .find(|s| s.to_string().to_lowercase().replace(' ', "-") == normalized)
}

/// Parses the comma-separated `--styles` list into validated display
/// names (the form [`SearchOptions::with_styles`] matches against).
fn parse_styles_list(list: &str) -> Result<Vec<String>, String> {
    let names: Vec<&str> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err(format!("--styles needs at least one style\n{SYNTH_USAGE}"));
    }
    names
        .into_iter()
        .map(|name| {
            parse_style(name).map(|s| s.to_string()).ok_or_else(|| {
                let known: Vec<String> = OpAmpStyle::ALL
                    .iter()
                    .map(|s| s.to_string().to_lowercase().replace(' ', "-"))
                    .collect();
                format!(
                    "unknown style `{name}` (known styles: {})\n{SYNTH_USAGE}",
                    known.join(", ")
                )
            })
        })
        .collect()
}

/// Parsed arguments of the synthesis mode.
#[derive(Debug, PartialEq, Eq)]
struct SynthOptions {
    spec_path: String,
    tech_path: String,
    out_path: Option<String>,
    run_verify: bool,
    styles: Option<Vec<String>>,
    explain: bool,
    trace_out: Option<String>,
    trace_format: TraceFormat,
}

impl SynthOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let spec_path = args.next().ok_or(SYNTH_USAGE)?;
        let tech_path = args.next().ok_or(SYNTH_USAGE)?;
        let mut opts = SynthOptions {
            spec_path,
            tech_path,
            out_path: None,
            run_verify: true,
            styles: None,
            explain: false,
            trace_out: None,
            trace_format: TraceFormat::Json,
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--out" => {
                    opts.out_path = Some(args.next().ok_or("--out needs a path")?);
                }
                "--no-verify" => opts.run_verify = false,
                "--styles" => {
                    let list = args.next().ok_or("--styles needs a comma-separated list")?;
                    opts.styles = Some(parse_styles_list(&list)?);
                }
                "--explain" => opts.explain = true,
                "--trace-out" => {
                    opts.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
                }
                "--trace-format" => match args.next().as_deref() {
                    Some("json") => opts.trace_format = TraceFormat::Json,
                    Some("chrome") => opts.trace_format = TraceFormat::Chrome,
                    Some(other) => {
                        return Err(format!("unknown trace format `{other}`\n{SYNTH_USAGE}"));
                    }
                    None => {
                        return Err(format!(
                            "--trace-format needs `json` or `chrome`\n{SYNTH_USAGE}"
                        ));
                    }
                },
                other => return Err(format!("unknown flag `{other}`\n{SYNTH_USAGE}")),
            }
        }
        Ok(opts)
    }

    /// `true` when any flag asks for the run report, so the recorder
    /// should actually collect spans.
    fn telemetry_requested(&self) -> bool {
        self.explain || self.trace_out.is_some()
    }

    /// The engine search options this invocation asks for.
    fn search_options(&self) -> SearchOptions {
        match &self.styles {
            Some(styles) => SearchOptions::new().with_styles(styles.clone()),
            None => SearchOptions::new(),
        }
    }
}

/// Parsed arguments of the lint mode.
#[derive(Debug, PartialEq, Eq)]
struct LintOptions {
    paths: Vec<String>,
    deny_warnings: bool,
    json: bool,
}

impl LintOptions {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = LintOptions {
            paths: Vec::new(),
            deny_warnings: false,
            json: false,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--deny-warnings" => opts.deny_warnings = true,
                "--format" => match args.next().as_deref() {
                    Some("human") => opts.json = false,
                    Some("json") => opts.json = true,
                    Some(other) => return Err(format!("unknown format `{other}`\n{LINT_USAGE}")),
                    None => return Err(format!("--format needs `human` or `json`\n{LINT_USAGE}")),
                },
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`\n{LINT_USAGE}"));
                }
                path => opts.paths.push(path.to_string()),
            }
        }
        Ok(opts)
    }
}

fn run_synth(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = SynthOptions::parse(args)?;
    let (spec, process) = load_inputs(&opts.spec_path, &opts.tech_path)?;

    println!("specification: {spec}");
    println!("process:       {process}\n");

    let tel = if opts.telemetry_requested() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };

    let result = match synthesize_with_options(&spec, &process, &opts.search_options(), &tel) {
        Ok(result) => result,
        Err(e) => {
            // The trace is most valuable exactly when synthesis fails:
            // emit the report before propagating the error.
            emit_telemetry(&opts, &tel, None)?;
            return Err(e.to_string());
        }
    };
    println!("{result}");
    let design = result.selected();
    if !design.notes().is_empty() {
        println!("design decisions: {}\n", design.notes().join("; "));
    }
    println!("{}", report::device_table(design.circuit()));

    let measured = if opts.run_verify {
        let verification =
            verify_with(design, &process, spec.load().farads(), &tel).map_err(|e| e.to_string())?;
        if !verification.erc.is_empty() {
            println!("electrical-rule findings:");
            print!("{}", verification.erc.render_human());
        }
        Some(verification.measured)
    } else {
        None
    };
    let sheet = Datasheet::new(
        format!("{} op amp", design.style()),
        &spec,
        design.predicted(),
        measured.as_ref(),
    );
    println!("{sheet}");
    if measured.is_some() && !sheet.all_measured_pass() {
        println!("!! measured shortfalls: {:?}", sheet.failures());
    }

    if let Some(path) = &opts.out_path {
        let deck = spice::to_spice(design.circuit(), &process);
        std::fs::write(path, deck).map_err(|e| format!("{path}: {e}"))?;
        println!("SPICE deck written to {path}");
    }

    emit_telemetry(&opts, &tel, Some(&result))
}

/// Prints the `--explain` tree and/or writes the `--trace-out` file.
///
/// `synthesis` is `None` when synthesis itself failed — the report still
/// goes out (that run's trace is the diagnosis), but the summary line's
/// restart count then comes from the metrics registry instead of the
/// per-style traces.
fn emit_telemetry(
    opts: &SynthOptions,
    tel: &Telemetry,
    synthesis: Option<&Synthesis>,
) -> Result<(), String> {
    if !tel.is_enabled() {
        return Ok(());
    }
    let run_report = tel.report();
    if opts.explain {
        println!("run trace:");
        print!("{}", run_report.render_explain());
        let restarts = synthesis.map_or_else(
            || usize::try_from(tel.counter("plan.restarts")).unwrap_or(usize::MAX),
            Synthesis::restarts,
        );
        println!(
            "summary: {} styles attempted, {} feasible, {} plan restarts, {} step executions",
            tel.counter("synth.styles_attempted"),
            tel.counter("synth.styles_feasible"),
            restarts,
            tel.counter("plan.step_executions"),
        );
    }
    if let Some(path) = &opts.trace_out {
        let text = match opts.trace_format {
            TraceFormat::Json => run_report.render_jsonl(),
            TraceFormat::Chrome => run_report.render_chrome(),
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("run trace written to {path}");
    }
    Ok(())
}

/// `oasys lint`: static analysis only, no simulation.
fn run_lint(args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let opts = LintOptions::parse(args)?;

    // Prong 1: the plan dataflow analyzer over every built-in style.
    let mut merged = styles::analyze_all_plans();

    // Prong 2: electrical-rule checks over each design the spec
    // synthesizes (all successful styles, not just the selected one).
    match opts.paths.as_slice() {
        [] => {}
        [spec_path, tech_path] => {
            let (spec, process) = load_inputs(spec_path, tech_path)?;
            let synthesis = synthesize_with(&spec, &process, &Telemetry::disabled())
                .map_err(|e| e.to_string())?;
            for outcome in synthesis.outcomes() {
                if let Some(design) = outcome.design() {
                    merged.merge(lint::lint(design.circuit(), Some(&process)));
                }
            }
        }
        _ => {
            return Err(format!(
                "expected no positional arguments or a spec file and a tech file\n{LINT_USAGE}"
            ));
        }
    }

    if opts.json {
        print!("{}", merged.render_json());
    } else {
        print!("{}", merged.render_human());
    }
    Ok(if merged.passes(opts.deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parses the specification and technology files shared by both modes.
fn load_inputs(
    spec_path: &str,
    tech_path: &str,
) -> Result<(oasys::OpAmpSpec, oasys_process::Process), String> {
    let spec_text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = specfile::parse(&spec_text).map_err(|e| e.to_string())?;
    let tech_text = std::fs::read_to_string(tech_path).map_err(|e| format!("{tech_path}: {e}"))?;
    let process = techfile::parse(&tech_text).map_err(|e| e.to_string())?;
    Ok((spec, process))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn synth_defaults() {
        let opts = SynthOptions::parse(argv(&["spec.txt", "tech.txt"])).unwrap();
        assert_eq!(opts.spec_path, "spec.txt");
        assert_eq!(opts.tech_path, "tech.txt");
        assert_eq!(opts.out_path, None);
        assert!(opts.run_verify);
        assert!(!opts.explain);
        assert_eq!(opts.trace_out, None);
        assert_eq!(opts.trace_format, TraceFormat::Json);
        assert!(!opts.telemetry_requested());
    }

    #[test]
    fn synth_missing_positional_args_shows_usage() {
        let err = SynthOptions::parse(argv(&["spec.txt"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn synth_unknown_flag_rejected() {
        let err = SynthOptions::parse(argv(&["s", "t", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag `--bogus`"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn synth_out_requires_path() {
        let err = SynthOptions::parse(argv(&["s", "t", "--out"])).unwrap_err();
        assert!(err.contains("--out needs a path"), "{err}");
    }

    #[test]
    fn synth_trace_out_requires_path() {
        let err = SynthOptions::parse(argv(&["s", "t", "--trace-out"])).unwrap_err();
        assert!(err.contains("--trace-out needs a path"), "{err}");
    }

    #[test]
    fn synth_explain_and_trace_out_parse() {
        let opts = SynthOptions::parse(argv(&[
            "s",
            "t",
            "--explain",
            "--trace-out",
            "run.json",
            "--no-verify",
        ]))
        .unwrap();
        assert!(opts.explain);
        assert_eq!(opts.trace_out.as_deref(), Some("run.json"));
        assert!(!opts.run_verify);
        assert!(opts.telemetry_requested());
    }

    #[test]
    fn synth_trace_format_values() {
        let opts = SynthOptions::parse(argv(&["s", "t", "--trace-format", "chrome"])).unwrap();
        assert_eq!(opts.trace_format, TraceFormat::Chrome);
        let opts = SynthOptions::parse(argv(&["s", "t", "--trace-format", "json"])).unwrap();
        assert_eq!(opts.trace_format, TraceFormat::Json);
    }

    #[test]
    fn synth_bad_trace_format_rejected() {
        let err = SynthOptions::parse(argv(&["s", "t", "--trace-format", "xml"])).unwrap_err();
        assert!(err.contains("unknown trace format `xml`"), "{err}");
        let err = SynthOptions::parse(argv(&["s", "t", "--trace-format"])).unwrap_err();
        assert!(err.contains("--trace-format needs"), "{err}");
    }

    #[test]
    fn synth_styles_parses_shell_friendly_names() {
        let opts =
            SynthOptions::parse(argv(&["s", "t", "--styles", "one-stage-ota,two-stage"])).unwrap();
        assert_eq!(
            opts.styles,
            Some(vec!["one-stage OTA".to_string(), "two-stage".to_string()])
        );
        let search = opts.search_options();
        assert_eq!(
            search.styles(),
            Some(&["one-stage OTA".to_string(), "two-stage".to_string()][..])
        );
    }

    #[test]
    fn synth_styles_accepts_display_names_and_spaces() {
        let opts = SynthOptions::parse(argv(&[
            "s",
            "t",
            "--styles",
            "one-stage OTA, Folded-Cascode",
        ]))
        .unwrap();
        assert_eq!(
            opts.styles,
            Some(vec![
                "one-stage OTA".to_string(),
                "folded cascode".to_string()
            ])
        );
    }

    #[test]
    fn synth_styles_rejects_unknown_name() {
        let err = SynthOptions::parse(argv(&["s", "t", "--styles", "three-stage"])).unwrap_err();
        assert!(err.contains("unknown style `three-stage`"), "{err}");
        assert!(err.contains("one-stage-ota"), "{err}");
        assert!(err.contains("folded-cascode"), "{err}");
    }

    #[test]
    fn synth_styles_requires_value() {
        let err = SynthOptions::parse(argv(&["s", "t", "--styles"])).unwrap_err();
        assert!(err.contains("--styles needs"), "{err}");
        let err = SynthOptions::parse(argv(&["s", "t", "--styles", ","])).unwrap_err();
        assert!(err.contains("--styles needs at least one style"), "{err}");
    }

    #[test]
    fn synth_default_has_no_style_filter() {
        let opts = SynthOptions::parse(argv(&["s", "t"])).unwrap();
        assert_eq!(opts.styles, None);
        assert_eq!(opts.search_options().styles(), None);
    }

    #[test]
    fn lint_defaults_and_paths() {
        let opts = LintOptions::parse(argv(&["spec.txt", "tech.txt"])).unwrap();
        assert_eq!(opts.paths, vec!["spec.txt", "tech.txt"]);
        assert!(!opts.deny_warnings);
        assert!(!opts.json);
    }

    #[test]
    fn lint_flags_parse() {
        let opts = LintOptions::parse(argv(&["--deny-warnings", "--format", "json"])).unwrap();
        assert!(opts.deny_warnings);
        assert!(opts.json);
    }

    #[test]
    fn lint_bad_format_rejected() {
        let err = LintOptions::parse(argv(&["--format", "yaml"])).unwrap_err();
        assert!(err.contains("unknown format `yaml`"), "{err}");
        let err = LintOptions::parse(argv(&["--format"])).unwrap_err();
        assert!(err.contains("--format needs"), "{err}");
    }

    #[test]
    fn lint_unknown_flag_rejected() {
        let err = LintOptions::parse(argv(&["--nope"])).unwrap_err();
        assert!(err.contains("unknown flag `--nope`"), "{err}");
    }
}
