//! The `oasys` command-line tool: synthesize a sized CMOS op-amp
//! schematic from a specification file and a technology file.
//!
//! ```text
//! oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify]
//! oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json]
//! ```
//!
//! The first form prints the style-selection outcome, the sized device
//! table, and the spec/predicted/measured datasheet; optionally writes a
//! SPICE deck.
//!
//! The `lint` form runs the static analyzers: the plan dataflow checks
//! over every built-in style plan, and — when a spec and tech file are
//! given — the netlist electrical-rule checks over each successfully
//! synthesized design. Diagnostics go to stdout (human-readable or as a
//! JSON array); the exit code is nonzero when any error fires, or, under
//! `--deny-warnings`, when any diagnostic fires at all.

use oasys::{specfile, styles, synthesize, verify, Datasheet};
use oasys_netlist::{lint, report, spice};
use oasys_process::techfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    let result = {
        let mut args = std::env::args().skip(1).peekable();
        if args.peek().map(String::as_str) == Some("lint") {
            args.next();
            run_lint(args)
        } else {
            run_synth(args).map(|()| ExitCode::SUCCESS)
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("oasys: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_synth(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let usage = "usage: oasys <spec-file> <tech-file> [--out <deck.sp>] [--no-verify]\n       oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json]";
    let spec_path = args.next().ok_or(usage)?;
    let tech_path = args.next().ok_or(usage)?;
    let mut out_path: Option<String> = None;
    let mut run_verify = true;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => {
                out_path = Some(args.next().ok_or("--out needs a path")?);
            }
            "--no-verify" => run_verify = false,
            other => return Err(format!("unknown flag `{other}`\n{usage}")),
        }
    }

    let (spec, process) = load_inputs(&spec_path, &tech_path)?;

    println!("specification: {spec}");
    println!("process:       {process}\n");

    let result = synthesize(&spec, &process).map_err(|e| e.to_string())?;
    println!("{result}");
    let design = result.selected();
    if !design.notes().is_empty() {
        println!("design decisions: {}\n", design.notes().join("; "));
    }
    println!("{}", report::device_table(design.circuit()));

    let measured = if run_verify {
        let verification =
            verify(design, &process, spec.load().farads()).map_err(|e| e.to_string())?;
        if !verification.erc.is_empty() {
            println!("electrical-rule findings:");
            print!("{}", verification.erc.render_human());
        }
        Some(verification.measured)
    } else {
        None
    };
    let sheet = Datasheet::new(
        format!("{} op amp", design.style()),
        &spec,
        design.predicted(),
        measured.as_ref(),
    );
    println!("{sheet}");
    if measured.is_some() && !sheet.all_measured_pass() {
        println!("!! measured shortfalls: {:?}", sheet.failures());
    }

    if let Some(path) = out_path {
        let deck = spice::to_spice(design.circuit(), &process);
        std::fs::write(&path, deck).map_err(|e| format!("{path}: {e}"))?;
        println!("SPICE deck written to {path}");
    }
    Ok(())
}

/// `oasys lint`: static analysis only, no simulation.
fn run_lint(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let usage =
        "usage: oasys lint [<spec-file> <tech-file>] [--deny-warnings] [--format human|json]";
    let mut paths: Vec<String> = Vec::new();
    let mut deny_warnings = false;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--format" => match args.next().as_deref() {
                Some("human") => json = false,
                Some("json") => json = true,
                Some(other) => return Err(format!("unknown format `{other}`\n{usage}")),
                None => return Err(format!("--format needs `human` or `json`\n{usage}")),
            },
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{usage}"));
            }
            path => paths.push(path.to_string()),
        }
    }

    // Prong 1: the plan dataflow analyzer over every built-in style.
    let mut merged = styles::analyze_all_plans();

    // Prong 2: electrical-rule checks over each design the spec
    // synthesizes (all successful styles, not just the selected one).
    match paths.as_slice() {
        [] => {}
        [spec_path, tech_path] => {
            let (spec, process) = load_inputs(spec_path, tech_path)?;
            let synthesis = synthesize(&spec, &process).map_err(|e| e.to_string())?;
            for outcome in synthesis.outcomes() {
                if let Some(design) = outcome.design() {
                    merged.merge(lint::lint(design.circuit(), Some(&process)));
                }
            }
        }
        _ => {
            return Err(format!(
                "expected no positional arguments or a spec file and a tech file\n{usage}"
            ));
        }
    }

    if json {
        print!("{}", merged.render_json());
    } else {
        print!("{}", merged.render_human());
    }
    Ok(if merged.passes(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parses the specification and technology files shared by both modes.
fn load_inputs(
    spec_path: &str,
    tech_path: &str,
) -> Result<(oasys::OpAmpSpec, oasys_process::Process), String> {
    let spec_text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = specfile::parse(&spec_text).map_err(|e| e.to_string())?;
    let tech_text = std::fs::read_to_string(tech_path).map_err(|e| format!("{tech_path}: {e}"))?;
    let process = techfile::parse(&tech_text).map_err(|e| e.to_string())?;
    Ok((spec, process))
}
