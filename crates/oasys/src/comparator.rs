//! Comparator synthesis — the paper's second named extension: *"…and
//! more sub-block types (e.g., comparators)"*.
//!
//! The template is a cascade of identical 5T OTA gain stages (reusing the
//! same differential-pair and current-mirror designers as the op-amp
//! styles — the paper's reuse argument made concrete) plus one *replica*
//! stage with grounded inputs whose output provides the reference level
//! for every later stage's inverting input. The result is an open-loop
//! amplifier whose total gain turns an input overdrive of one resolution
//! step into a rail-to-rail decision.
//!
//! The plan translates `(resolution, decision time, load)` into a stage
//! count and per-stage currents:
//!
//! * total gain `A ≥ span / resolution`, split as `A₁ᴺ` over identical
//!   stages (per-stage gain capped where the square law is comfortable);
//! * per-stage current from the decision-time budget: each stage must
//!   slew its internal node plus the next stage's input capacitance —
//!   and the last stage the load — within `t_max / N`.

use crate::spec::SpecError;
use oasys_blocks::area::AreaEstimate;
use oasys_blocks::diffpair::{DiffPair, DiffPairSpec};
use oasys_blocks::mirror::{CurrentMirror, MirrorSpec, MirrorStyle};
use oasys_netlist::Circuit;
use oasys_plan::{PatchAction, Plan, PlanExecutor, StepOutcome, Trace};
use oasys_process::{Polarity, Process};
use std::fmt;

/// Most cascaded stages the designer will use (regeneration and offset
/// accumulation make longer chains useless).
const MAX_STAGES: usize = 5;
/// Per-stage voltage-gain target (comfortably below the intrinsic limit).
const STAGE_GAIN: f64 = 30.0;
/// Pair overdrive, V.
const VOV1: f64 = 0.20;

/// Specification for a comparator.
///
/// # Examples
///
/// ```
/// use oasys::comparator::ComparatorSpec;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ComparatorSpec::builder()
///     .resolution_mv(5.0)
///     .decision_time_us(1.0)
///     .load_pf(1.0)
///     .build()?;
/// assert_eq!(spec.resolution_v(), 5e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComparatorSpec {
    /// Smallest input overdrive that must produce a full decision, V.
    resolution_v: f64,
    /// Decision-time budget, s.
    decision_s: f64,
    /// Load capacitance at the output, F.
    load_f: f64,
}

impl ComparatorSpec {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> ComparatorSpecBuilder {
        ComparatorSpecBuilder::default()
    }

    /// The input resolution, V.
    #[must_use]
    pub fn resolution_v(&self) -> f64 {
        self.resolution_v
    }

    /// The decision-time budget, s.
    #[must_use]
    pub fn decision_s(&self) -> f64 {
        self.decision_s
    }

    /// The output load, F.
    #[must_use]
    pub fn load_f(&self) -> f64 {
        self.load_f
    }
}

impl fmt::Display for ComparatorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resolve {:.1} mV within {:.2} µs into {:.1} pF",
            self.resolution_v * 1e3,
            self.decision_s * 1e6,
            self.load_f * 1e12
        )
    }
}

/// Builder for [`ComparatorSpec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ComparatorSpecBuilder {
    resolution_mv: Option<f64>,
    decision_us: Option<f64>,
    load_pf: Option<f64>,
}

impl ComparatorSpecBuilder {
    /// Input resolution, millivolts. Required.
    #[must_use]
    pub fn resolution_mv(mut self, mv: f64) -> Self {
        self.resolution_mv = Some(mv);
        self
    }

    /// Decision-time budget, microseconds. Required.
    #[must_use]
    pub fn decision_time_us(mut self, us: f64) -> Self {
        self.decision_us = Some(us);
        self
    }

    /// Output load, picofarads. Required.
    #[must_use]
    pub fn load_pf(mut self, pf: f64) -> Self {
        self.load_pf = Some(pf);
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for missing or non-positive entries.
    pub fn build(self) -> Result<ComparatorSpec, SpecError> {
        let need = |name: &str, v: Option<f64>| {
            v.filter(|x| *x > 0.0 && x.is_finite()).ok_or_else(|| {
                SpecError::new_public(format!("comparator: `{name}` missing or non-positive"))
            })
        };
        Ok(ComparatorSpec {
            resolution_v: need("resolution_mv", self.resolution_mv)? * 1e-3,
            decision_s: need("decision_time_us", self.decision_us)? * 1e-6,
            load_f: need("load_pf", self.load_pf)? * 1e-12,
        })
    }
}

/// A designed comparator.
#[derive(Clone, Debug)]
pub struct ComparatorDesign {
    spec: ComparatorSpec,
    circuit: Circuit,
    stages: usize,
    predicted_gain: f64,
    predicted_decision_s: f64,
    area: AreaEstimate,
    trace: Trace,
}

impl ComparatorDesign {
    /// The specification this comparator was designed to.
    #[must_use]
    pub fn spec(&self) -> &ComparatorSpec {
        &self.spec
    }

    /// The sized schematic. Ports: `inp`, `inn`, `out`, `vdd`, `vss`.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of cascaded gain stages (excluding the replica).
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Predicted open-loop gain (linear).
    #[must_use]
    pub fn predicted_gain(&self) -> f64 {
        self.predicted_gain
    }

    /// Predicted worst-case decision time, s.
    #[must_use]
    pub fn predicted_decision_s(&self) -> f64 {
        self.predicted_decision_s
    }

    /// Estimated layout area.
    #[must_use]
    pub fn area(&self) -> AreaEstimate {
        self.area
    }

    /// The plan trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of MOSFETs.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.circuit.mosfets().count()
    }
}

struct State {
    spec: ComparatorSpec,
    process: Process,
    speed_boost: f64,
    stages: usize,
    i_tail: f64,
    gm1: f64,
    pair: Option<DiffPair>,
    load: Option<CurrentMirror>,
    tail: Option<CurrentMirror>,
    r_bias: f64,
    stage_cap: f64,
    predicted_gain: f64,
    predicted_decision_s: f64,
}

impl State {
    fn new(spec: &ComparatorSpec, process: &Process) -> Self {
        Self {
            spec: *spec,
            process: process.clone(),
            speed_boost: 1.0,
            stages: 0,
            i_tail: 0.0,
            gm1: 0.0,
            pair: None,
            load: None,
            tail: None,
            r_bias: 0.0,
            stage_cap: 0.0,
            predicted_gain: 0.0,
            predicted_decision_s: 0.0,
        }
    }
}

/// Comparator synthesis error.
#[derive(Debug)]
pub struct ComparatorError {
    reason: String,
}

impl fmt::Display for ComparatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comparator synthesis failed: {}", self.reason)
    }
}

impl std::error::Error for ComparatorError {}

fn build_plan() -> Plan<State> {
    Plan::<State>::builder("comparator")
        .step("stage-count", |s: &mut State| {
            let span = s.process.supply_span().volts();
            let a_req = span / s.spec.resolution_v();
            let stages = (a_req.ln() / STAGE_GAIN.ln()).ceil() as usize;
            s.stages = stages.max(1);
            if s.stages > MAX_STAGES {
                return StepOutcome::failed(
                    "too-many-stages",
                    format!(
                        "resolving {:.1} mV needs gain {a_req:.0} = {} stages",
                        s.spec.resolution_v() * 1e3,
                        s.stages
                    ),
                );
            }
            StepOutcome::Done
        })
        .step("stage-current", |s: &mut State| {
            // Each stage must slew roughly half the supply span within its
            // share of the decision budget, into the next stage's input
            // plus its own junctions — estimated, then refined below.
            let span = s.process.supply_span().volts();
            let t_stage = s.spec.decision_s() / (s.stages as f64 + 1.0);
            let c_est = (s.stage_cap).max(s.spec.load_f().max(0.2e-12));
            s.i_tail = (c_est * 0.5 * span / t_stage * s.speed_boost).max(1e-6);
            s.gm1 = s.i_tail / VOV1;
            StepOutcome::Done
        })
        .step("design-stage", |s: &mut State| {
            let pair_spec = DiffPairSpec::new(Polarity::Nmos, s.gm1, s.i_tail);
            let pair = match DiffPair::design(&pair_spec, &s.process) {
                Ok(p) => p,
                Err(e) => return StepOutcome::failed("stage-design", e.to_string()),
            };
            let load_spec = MirrorSpec::new(Polarity::Pmos, s.i_tail / 2.0)
                .with_headroom(2.0)
                .with_only_style(MirrorStyle::Simple);
            let load = match CurrentMirror::design(&load_spec, &s.process) {
                Ok(m) => m,
                Err(e) => return StepOutcome::failed("stage-design", e.to_string()),
            };
            let tail_spec = MirrorSpec::new(Polarity::Nmos, s.i_tail)
                .with_headroom(1.5)
                .with_only_style(MirrorStyle::Simple);
            let tail = match CurrentMirror::design(&tail_spec, &s.process) {
                Ok(m) => m,
                Err(e) => return StepOutcome::failed("stage-design", e.to_string()),
            };
            let span = s.process.supply_span().volts();
            s.r_bias = (span - tail.input_voltage()).max(0.5) / tail.spec().input_current();
            s.pair = Some(pair);
            s.load = Some(load);
            s.tail = Some(tail);
            StepOutcome::Done
        })
        .step("check-speed", |s: &mut State| {
            // Refine the per-stage capacitance from the designed devices
            // and verify the ramp model against the budget.
            let pair = s.pair.as_ref().expect("stage designed");
            let load = s.load.as_ref().expect("stage designed");
            let gate_cap = {
                let m = oasys_mos::Mosfet::new(Polarity::Nmos, pair.geometry(), &s.process);
                let vgs = s.process.nmos().vth().volts() + pair.vov();
                let op = m.operating_point(vgs, 2.0, 0.0);
                m.capacitances(&op).gate_total().farads()
            };
            let drain_cap = {
                let m = oasys_mos::Mosfet::new(Polarity::Pmos, load.unit_geometry(), &s.process);
                let vsg = load.vgs();
                let op = m.operating_point(-vsg, -2.0, 0.0);
                m.capacitances(&op).drain_total().farads()
            };
            s.stage_cap = gate_cap + drain_cap;
            let span = s.process.supply_span().volts();
            let t_internal = (s.stages as f64 - 1.0).max(0.0) * s.stage_cap * 0.5 * span / s.i_tail;
            let t_output = (s.spec.load_f() + drain_cap) * 0.5 * span / s.i_tail;
            s.predicted_decision_s = t_internal + t_output;
            if s.predicted_decision_s > s.spec.decision_s() {
                return StepOutcome::failed(
                    "too-slow",
                    format!(
                        "predicted decision {:.2} µs over the {:.2} µs budget",
                        s.predicted_decision_s * 1e6,
                        s.spec.decision_s() * 1e6
                    ),
                );
            }
            StepOutcome::Done
        })
        .step("predict", |s: &mut State| {
            let pair = s.pair.as_ref().expect("stage designed");
            let load = s.load.as_ref().expect("stage designed");
            let a1 = s.gm1 / (pair.gds() + 1.0 / load.rout());
            s.predicted_gain = a1.powi(s.stages as i32);
            StepOutcome::Done
        })
        .rule(
            "speed-up",
            |s: &State, f| f.code() == "too-slow" && s.speed_boost < 16.0,
            |s: &mut State| {
                s.speed_boost *= 1.6;
                PatchAction::RestartFrom("stage-current".into())
            },
        )
        .rule(
            "give-up",
            |_, f| matches!(f.code(), "too-many-stages" | "stage-design" | "too-slow"),
            |_s: &mut State| PatchAction::Abort("comparator infeasible".into()),
        )
        .build()
}

/// Synthesizes a comparator for `spec` on `process`.
///
/// # Errors
///
/// Returns [`ComparatorError`] when no stage count/current combination
/// fits the budget.
pub fn design_comparator(
    spec: &ComparatorSpec,
    process: &Process,
) -> Result<ComparatorDesign, ComparatorError> {
    let plan = build_plan();
    let mut state = State::new(spec, process);
    let trace = PlanExecutor::new()
        .run(&plan, &mut state)
        .map_err(|e| ComparatorError {
            reason: e.to_string(),
        })?;
    let circuit = emit(&state).map_err(|e| ComparatorError {
        reason: format!("netlist assembly failed: {e}"),
    })?;
    circuit.validate().map_err(|e| ComparatorError {
        reason: format!("netlist validation failed: {e}"),
    })?;

    let pair = state.pair.as_ref().expect("plan completed");
    let load = state.load.as_ref().expect("plan completed");
    let tail = state.tail.as_ref().expect("plan completed");
    let per_stage = pair.area() + load.area() + tail.area();
    let w_min = process.min_width().micrometers();
    let area = per_stage * (state.stages as f64 + 1.0)
        + AreaEstimate::from_um2(state.r_bias / 10_000.0 * w_min * w_min, 0.0);

    Ok(ComparatorDesign {
        spec: *spec,
        circuit,
        stages: state.stages,
        predicted_gain: state.predicted_gain,
        predicted_decision_s: state.predicted_decision_s,
        area,
        trace,
    })
}

/// Assembles the cascade: N gain stages plus the replica reference stage,
/// all sharing one bias branch.
fn emit(state: &State) -> Result<Circuit, oasys_netlist::ValidateError> {
    let pair = state.pair.as_ref().expect("plan completed");
    let load = state.load.as_ref().expect("plan completed");
    let tail = state.tail.as_ref().expect("plan completed");

    let mut c = Circuit::new("comparator");
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let inp = c.node("inp");
    let inn = c.node("inn");
    let out = c.node("out");
    let nbias = c.node("nbias");
    for (label, node) in [
        ("inp", inp),
        ("inn", inn),
        ("out", out),
        ("vdd", vdd),
        ("vss", vss),
    ] {
        c.mark_port(label, node);
    }
    c.add_resistor("RBIAS", vdd, nbias, state.r_bias)?;

    // Replica stage: both inputs grounded; its output is the reference
    // level every post-first stage compares against.
    let vref = c.node("vref");
    let gnd = c.ground();
    emit_stage(
        &mut c, "REP", pair, load, tail, gnd, gnd, vref, nbias, vss, vdd,
    )?;

    let mut stage_in = inp;
    let mut stage_ref = inn;
    for k in 0..state.stages {
        let stage_out = if k + 1 == state.stages {
            out
        } else {
            c.node(format!("s{k}_out"))
        };
        emit_stage(
            &mut c,
            &format!("S{k}"),
            pair,
            load,
            tail,
            stage_in,
            stage_ref,
            stage_out,
            nbias,
            vss,
            vdd,
        )?;
        stage_in = stage_out;
        stage_ref = vref;
    }
    Ok(c)
}

/// One 5T OTA stage with its tail device mirrored from the shared bias.
#[allow(clippy::too_many_arguments)]
fn emit_stage(
    c: &mut Circuit,
    prefix: &str,
    pair: &DiffPair,
    load: &CurrentMirror,
    tail: &CurrentMirror,
    inp: oasys_netlist::NodeId,
    inn: oasys_netlist::NodeId,
    out: oasys_netlist::NodeId,
    nbias: oasys_netlist::NodeId,
    vss: oasys_netlist::NodeId,
    vdd: oasys_netlist::NodeId,
) -> Result<(), oasys_netlist::ValidateError> {
    let tail_node = c.node(format!("{prefix}_tail"));
    let d1 = c.node(format!("{prefix}_d1"));
    pair.emit(
        c,
        &format!("{prefix}_DP_"),
        inp,
        inn,
        out,
        d1,
        tail_node,
        vss,
    )?;
    load.emit(c, &format!("{prefix}_LD_"), d1, out, vdd, None)?;
    // Tail device only (gate on the shared bias); the diode lives in the
    // replica's position once — emit the full mirror only for the replica.
    if prefix == "REP" {
        tail.emit(c, &format!("{prefix}_TL_"), nbias, tail_node, vss, None)?;
    } else {
        c.add_mosfet(
            format!("{prefix}_TL_MOUT"),
            Polarity::Nmos,
            tail.unit_geometry(),
            tail_node,
            nbias,
            vss,
            vss,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_netlist::SourceValue;
    use oasys_process::builtin;
    use oasys_sim::tran::{self, Stimuli, TranSpec};

    fn spec() -> ComparatorSpec {
        ComparatorSpec::builder()
            .resolution_mv(5.0)
            .decision_time_us(2.0)
            .load_pf(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn designs_a_multi_stage_cascade() {
        let d = design_comparator(&spec(), &builtin::cmos_5um()).unwrap();
        // 10 V / 5 mV = 2000 → ln(2000)/ln(30) ≈ 2.2 → 3 stages.
        assert_eq!(d.stages(), 3);
        assert!(d.predicted_gain() >= 2000.0);
        assert!(d.predicted_decision_s() <= 2e-6);
        // 3 stages + replica, 5 devices each + shared bias diode.
        assert!(d.device_count() >= 20, "{} devices", d.device_count());
        d.circuit().validate().unwrap();
    }

    #[test]
    fn finer_resolution_needs_more_stages() {
        let coarse = ComparatorSpec::builder()
            .resolution_mv(50.0)
            .decision_time_us(2.0)
            .load_pf(1.0)
            .build()
            .unwrap();
        let fine = ComparatorSpec::builder()
            .resolution_mv(0.5)
            .decision_time_us(2.0)
            .load_pf(1.0)
            .build()
            .unwrap();
        let p = builtin::cmos_5um();
        let a = design_comparator(&coarse, &p).unwrap();
        let b = design_comparator(&fine, &p).unwrap();
        assert!(b.stages() > a.stages());
    }

    #[test]
    fn absurd_resolution_is_infeasible() {
        let spec = ComparatorSpec::builder()
            .resolution_mv(1e-4)
            .decision_time_us(2.0)
            .load_pf(1.0)
            .build()
            .unwrap();
        assert!(design_comparator(&spec, &builtin::cmos_5um()).is_err());
    }

    /// The headline behaviour: a resolution-sized step flips the output
    /// within the decision budget, in transient simulation.
    #[test]
    fn decides_within_budget_in_simulation() {
        let process = builtin::cmos_5um();
        let spec = spec();
        let d = design_comparator(&spec, &process).unwrap();

        let mut bench = d.circuit().clone();
        let inp = bench.port("inp").unwrap();
        let inn = bench.port("inn").unwrap();
        let out = bench.port("out").unwrap();
        let vdd = bench.port("vdd").unwrap();
        let vss = bench.port("vss").unwrap();
        let gnd = bench.ground();
        bench
            .add_vsource("VDD", vdd, gnd, SourceValue::dc(5.0))
            .unwrap();
        bench
            .add_vsource("VSS", vss, gnd, SourceValue::dc(-5.0))
            .unwrap();
        bench
            .add_vsource("VIP", inp, gnd, SourceValue::dc(0.0))
            .unwrap();
        bench
            .add_vsource("VIN", inn, gnd, SourceValue::dc(0.0))
            .unwrap();
        bench.add_capacitor("CL", out, gnd, spec.load_f()).unwrap();

        // The comparator's decision levels are its settled outputs under a
        // decisive overdrive — measure them first.
        let settled = |vin: f64| -> f64 {
            let mut c = bench.clone();
            c.set_source_dc("VIP", vin).unwrap();
            oasys_sim::dc::solve(&c, &process).unwrap().voltage(out)
        };
        let v_lo = settled(-0.05);
        let v_hi = settled(0.05);
        assert!(v_hi - v_lo > 1.0, "decision levels {v_lo:.2} / {v_hi:.2} V");
        let midpoint = 0.5 * (v_lo + v_hi);

        // One resolution step of overdrive must carry the output across
        // the midpoint within the decision budget.
        let mut stimuli = Stimuli::new();
        stimuli.step("VIP", -spec.resolution_v(), spec.resolution_v(), 20e-9);
        let tspec = TranSpec::new(spec.decision_s() * 1.5, spec.decision_s() / 400.0).unwrap();
        let sol = tran::solve(&bench, &process, &tspec, &stimuli).unwrap();
        let w = sol.waveform(out);
        let crossing = sol
            .times()
            .iter()
            .zip(&w)
            .find(|&(_, &v)| v >= midpoint)
            .map(|(&t, _)| t);
        match crossing {
            Some(t) => assert!(
                t <= spec.decision_s(),
                "crossed the {midpoint:.2} V midpoint at {:.2} µs, budget {:.2} µs",
                t * 1e6,
                spec.decision_s() * 1e6
            ),
            None => panic!(
                "never crossed the midpoint: start {:.2} V, end {:.2} V",
                w[0],
                w.last().unwrap()
            ),
        }
    }

    #[test]
    fn spec_builder_validates() {
        assert!(ComparatorSpec::builder().build().is_err());
        assert!(ComparatorSpec::builder()
            .resolution_mv(-1.0)
            .decision_time_us(1.0)
            .load_pf(1.0)
            .build()
            .is_err());
        let s = spec();
        assert!(s.to_string().contains("5.0 mV"));
    }
}
