//! Shard merging: published shards → one `dataset.jsonl` +
//! `dataset-summary.json`, byte-identical for every shard count.
//!
//! Each published shard is already sorted by global id, and the modulo
//! partition makes shard id sets disjoint — so the merge is a streaming
//! k-way merge on the current head of each shard reader, holding one
//! line per shard in memory. The merged summary sums per-shard
//! aggregates and drops everything shard-shaped (`shard.index`,
//! `shard.of`), so its bytes are also independent of how the run was
//! partitioned. Plan fingerprints must agree across shards: merging
//! shards of two different plans is a hard error, not a garbage file.
//!
//! Integrity: every record line's checksum seal is verified as it
//! streams through ([`sink::parse_record_id`]). A line that fails is
//! *quarantined* — counted per shard, never copied into the merged
//! output — and a merge that quarantined anything aborts before
//! publishing, reporting `records_quarantined` and which shards to
//! re-run ([`crate::dataset::generate`] heals a corrupted published
//! shard by re-running exactly its damaged points).

use super::sink::{self, parse_record_id, write_atomic};
use super::DatasetError;
use oasys_telemetry::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// The merged dataset's record file name.
pub const MERGED_RECORDS: &str = "dataset.jsonl";
/// The merged dataset's summary file name.
pub const MERGED_SUMMARY: &str = "dataset-summary.json";

/// The outcome of a merge.
#[derive(Clone, Debug)]
pub struct MergeReport {
    /// Shards merged.
    pub shards: usize,
    /// Records in the merged dataset.
    pub records: usize,
    /// Records whose design met every verified spec.
    pub passed: usize,
    /// The plan fingerprint shared by every shard.
    pub plan_fingerprint: String,
    /// Corrupt record lines quarantined while streaming. Always `0` on
    /// a published merge — a merge that quarantines anything aborts
    /// with an error instead, naming the shards to re-run.
    pub records_quarantined: usize,
    /// Path of the merged record file.
    pub records_path: PathBuf,
}

/// One shard reader: its next pending line, and the stream behind it.
struct ShardReader {
    next: Option<(usize, String)>,
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    /// Corrupt or unparseable lines skipped (never merged) so far.
    quarantined: usize,
}

impl ShardReader {
    fn open(path: &Path) -> Result<Self, DatasetError> {
        let file = std::fs::File::open(path).map_err(|error| DatasetError::Sink {
            path: path.to_path_buf(),
            error,
        })?;
        let mut reader = Self {
            next: None,
            reader: BufReader::new(file),
            path: path.to_path_buf(),
            quarantined: 0,
        };
        reader.advance()?;
        Ok(reader)
    }

    fn advance(&mut self) -> Result<(), DatasetError> {
        // Lines are read as bytes: corruption can make a line invalid
        // UTF-8, which must quarantine that line, not abort the read.
        let mut buf = Vec::new();
        self.next = loop {
            buf.clear();
            let read =
                self.reader
                    .read_until(b'\n', &mut buf)
                    .map_err(|error| DatasetError::Sink {
                        path: self.path.clone(),
                        error,
                    })?;
            if read == 0 {
                break None;
            }
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            // A line whose encoding, seal, or JSON fails to verify is
            // quarantined: skipped here, surfaced as a hard error
            // before the merge publishes.
            match std::str::from_utf8(&buf).ok().and_then(parse_record_id) {
                Some(id) => {
                    break Some((
                        id,
                        String::from_utf8(std::mem::take(&mut buf)).expect("verified utf-8"),
                    ))
                }
                None => self.quarantined += 1,
            }
        };
        Ok(())
    }
}

/// Merges every published shard in `dir`. The shard count is read from
/// the file names (`shard-<i>-of-<N>.jsonl`); all `N` shards must be
/// present, published, and stamped with the same plan fingerprint.
///
/// # Errors
///
/// [`DatasetError::Merge`] on missing shards, mixed plans, duplicate
/// ids, or malformed records; [`DatasetError::Sink`] on I/O failures.
pub fn merge(dir: &Path) -> Result<MergeReport, DatasetError> {
    let shards = discover_shard_count(dir)?;
    let mut fingerprint: Option<String> = None;
    let mut records_sum = 0usize;
    let mut passed_sum = 0usize;
    let mut total_points = 0usize;
    let mut samples_rejected = 0usize;
    let mut samples_drawn = 0usize;
    for index in 0..shards {
        let summary_path = sink::shard_summary_path(dir, index, shards);
        let text = std::fs::read_to_string(&summary_path).map_err(|error| DatasetError::Merge {
            detail: format!(
                "shard {index} of {shards} is not published ({}: {error})",
                summary_path.display()
            ),
        })?;
        let summary = json::parse(&text).map_err(|e| DatasetError::Merge {
            detail: format!("{}: {e}", summary_path.display()),
        })?;
        let fp = summary
            .get("plan_fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| DatasetError::Merge {
                detail: format!("{}: missing plan_fingerprint", summary_path.display()),
            })?;
        match &fingerprint {
            None => fingerprint = Some(fp.to_owned()),
            Some(expect) if expect != fp => {
                return Err(DatasetError::Merge {
                    detail: format!(
                        "shard {index} was generated from a different plan \
                         ({fp} != {expect}); do not mix runs in one directory"
                    ),
                })
            }
            Some(_) => {}
        }
        let num = |key: &str| summary.get(key).and_then(Json::as_num).unwrap_or(0.0) as usize;
        records_sum += num("records");
        passed_sum += num("passed");
        total_points = total_points.max(num("total_points"));
        samples_rejected = samples_rejected.max(num("samples_rejected"));
        samples_drawn = samples_drawn.max(num("samples_drawn"));
    }
    let plan_fingerprint = fingerprint.ok_or(DatasetError::Empty)?;
    if records_sum != total_points {
        return Err(DatasetError::Merge {
            detail: format!(
                "shards hold {records_sum} records but the plan has {total_points} points"
            ),
        });
    }

    let mut readers = Vec::with_capacity(shards);
    for index in 0..shards {
        readers.push(ShardReader::open(&sink::shard_records_path(
            dir, index, shards,
        ))?);
    }

    let records_path = dir.join(MERGED_RECORDS);
    let tmp = records_path.with_extension(format!("tmp.{}", std::process::id()));
    let mut records = 0usize;
    {
        let file = std::fs::File::create(&tmp).map_err(|error| DatasetError::Sink {
            path: tmp.clone(),
            error,
        })?;
        let mut out = std::io::BufWriter::new(file);
        let mut last_id: Option<usize> = None;
        while let Some((id, which)) = readers
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next.as_ref().map(|(id, _)| (*id, i)))
            .min()
        {
            if last_id == Some(id) {
                return Err(DatasetError::Merge {
                    detail: format!("record id {id} appears in two shards"),
                });
            }
            last_id = Some(id);
            let (_, line) = readers[which].next.take().unwrap_or((0, String::new()));
            out.write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .map_err(|error| DatasetError::Sink {
                    path: tmp.clone(),
                    error,
                })?;
            records += 1;
            readers[which].advance()?;
        }
        out.flush()
            .and_then(|()| out.get_ref().sync_all())
            .map_err(|error| DatasetError::Sink {
                path: tmp.clone(),
                error,
            })?;
    }
    // Integrity gate: a merge that quarantined anything must not
    // publish — the dataset would silently be missing records. Name the
    // damaged shards so a re-run (`oasys dataset`) can heal them.
    let records_quarantined: usize = readers.iter().map(|r| r.quarantined).sum();
    if records_quarantined > 0 {
        let _ = std::fs::remove_file(&tmp);
        let damaged: Vec<String> = readers
            .iter()
            .filter(|r| r.quarantined > 0)
            .map(|r| format!("{} ({} line(s))", r.path.display(), r.quarantined))
            .collect();
        return Err(DatasetError::Merge {
            detail: format!(
                "records_quarantined={records_quarantined}: corrupt record lines in {}; \
                 re-run the affected shards to heal them, then merge again",
                damaged.join(", ")
            ),
        });
    }
    std::fs::rename(&tmp, &records_path).map_err(|error| DatasetError::Sink {
        path: records_path.clone(),
        error,
    })?;

    let summary = format!(
        concat!(
            "{{\"schema\":\"oasys-dataset-summary\",\"v\":1,",
            "\"plan_fingerprint\":\"{}\",\"total_points\":{},",
            "\"samples_rejected\":{},\"samples_drawn\":{},",
            "\"records\":{},\"passed\":{}}}"
        ),
        plan_fingerprint, total_points, samples_rejected, samples_drawn, records, passed_sum,
    );
    let summary_path = dir.join(MERGED_SUMMARY);
    write_atomic(&summary_path, &summary).map_err(|error| DatasetError::Sink {
        path: summary_path,
        error,
    })?;

    Ok(MergeReport {
        shards,
        records,
        passed: passed_sum,
        plan_fingerprint,
        records_quarantined: 0,
        records_path,
    })
}

/// Reads the shard count `N` from the published `shard-*-of-N.jsonl`
/// names in `dir`, requiring every file to agree.
fn discover_shard_count(dir: &Path) -> Result<usize, DatasetError> {
    let entries = std::fs::read_dir(dir).map_err(|error| DatasetError::Sink {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut count: Option<usize> = None;
    for entry in entries {
        let entry = entry.map_err(|error| DatasetError::Sink {
            path: dir.to_path_buf(),
            error,
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(of) = parse_shard_count(name) else {
            continue;
        };
        match count {
            None => count = Some(of),
            Some(expect) if expect != of => {
                return Err(DatasetError::Merge {
                    detail: format!(
                        "mixed shard counts in {} ({expect} and {of}); \
                         do not mix runs in one directory",
                        dir.display()
                    ),
                })
            }
            Some(_) => {}
        }
    }
    count.ok_or(DatasetError::Empty)
}

/// Parses `N` out of `shard-<i>-of-<N>.jsonl` (published records only —
/// partials and summaries are ignored).
fn parse_shard_count(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("shard-")?;
    let rest = rest.strip_suffix(".jsonl")?;
    let (_, of) = rest.split_once("-of-")?;
    of.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::sink::ShardSink;

    fn line(id: usize) -> String {
        format!("{{\"id\":{id},\"outcome\":\"ok\"}}")
    }

    fn summary(fp: &str, records: usize, total: usize) -> String {
        format!(
            "{{\"schema\":\"oasys-dataset-summary\",\"v\":1,\"plan_fingerprint\":\"{fp}\",\
             \"total_points\":{total},\"samples_rejected\":0,\"samples_drawn\":0,\
             \"records\":{records},\"passed\":0,\"shard\":{{\"index\":0,\"of\":1}}}}"
        )
    }

    fn publish(dir: &Path, index: usize, shards: usize, ids: &[usize], fp: &str, total: usize) {
        let mut sink = ShardSink::open(dir, index, shards).unwrap();
        for &id in ids {
            sink.record(id, &line(id)).unwrap();
        }
        sink.finalize(&summary(fp, ids.len(), total)).unwrap();
    }

    #[test]
    fn merges_disjoint_shards_in_id_order() {
        let dir = crate::dataset::test_dir("merge_basic");
        publish(&dir, 0, 2, &[0, 2, 4], "ab", 6);
        publish(&dir, 1, 2, &[1, 3, 5], "ab", 6);
        let report = merge(&dir).unwrap();
        assert_eq!(report.records, 6);
        assert_eq!(report.records_quarantined, 0);
        let merged = std::fs::read_to_string(dir.join(MERGED_RECORDS)).unwrap();
        let expect: String = (0..6)
            .map(|id| format!("{}\n", crate::integrity::seal_line(&line(id))))
            .collect();
        assert_eq!(merged, expect, "merged lines keep their seals");
    }

    #[test]
    fn corrupt_shard_line_aborts_the_merge_with_quarantine_report() {
        let dir = crate::dataset::test_dir("merge_bitrot");
        publish(&dir, 0, 2, &[0, 2], "ab", 4);
        publish(&dir, 1, 2, &[1, 3], "ab", 4);
        // Flip one byte in shard 1's first record.
        let path = sink::shard_records_path(&dir, 1, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[5] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let err = merge(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("records_quarantined=1"), "{msg}");
        assert!(msg.contains("shard-1-of-2"), "{msg}");
        assert!(
            !dir.join(MERGED_RECORDS).exists(),
            "a quarantining merge must not publish"
        );
    }

    #[test]
    fn rejects_mixed_plans_and_missing_shards() {
        let dir = crate::dataset::test_dir("merge_mixed");
        publish(&dir, 0, 2, &[0], "aa", 2);
        publish(&dir, 1, 2, &[1], "bb", 2);
        let err = merge(&dir).unwrap_err();
        assert!(err.to_string().contains("different plan"), "{err}");

        let dir = crate::dataset::test_dir("merge_missing");
        publish(&dir, 0, 2, &[0], "aa", 2);
        let err = merge(&dir).unwrap_err();
        assert!(err.to_string().contains("not published"), "{err}");
    }

    #[test]
    fn rejects_duplicate_ids_across_shards() {
        let dir = crate::dataset::test_dir("merge_dupe");
        publish(&dir, 0, 2, &[0, 1], "aa", 4);
        publish(&dir, 1, 2, &[1, 2], "aa", 4);
        let err = merge(&dir).unwrap_err();
        assert!(err.to_string().contains("two shards"), "{err}");
    }

    #[test]
    fn merged_summary_has_no_shard_fields() {
        let dir = crate::dataset::test_dir("merge_summary");
        publish(&dir, 0, 1, &[0, 1], "cc", 2);
        merge(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join(MERGED_SUMMARY)).unwrap();
        assert!(!text.contains("\"shard\""), "{text}");
        assert!(text.contains("\"plan_fingerprint\":\"cc\""));
    }
}
