//! Osiris-scale dataset generation.
//!
//! `oasys dataset` turns one batch manifest into a *sampled sweep*: a
//! seeded distribution over specifications (`sample.*` directives),
//! crossed with process corners (`corners`, `corner.temps_c`,
//! `corner.supplies`) and per-device Monte-Carlo mismatch instances
//! (`mc.*`), synthesized point by point on the shared worker pool and
//! streamed to versioned JSONL records (schema `oasys-dataset/2`, see
//! `DATASET.md` at the repo root).
//!
//! The pipeline is built from the pieces in this module:
//!
//! 1. [`plan::DatasetPlan::expand`] — manifest → the deterministic
//!    global point list ([`sample`] draws the specs,
//!    `oasys_process::corners` derives the corner technologies).
//! 2. [`plan::DatasetPlan::shard_points`] — `id % shards` partitioning;
//!    every shard count partitions the *same* plan.
//! 3. [`generate`] — runs one shard through the batch engine
//!    ([`runner::DatasetRunner`]) and streams records through the
//!    crash-safe [`sink::ShardSink`].
//! 4. [`merge()`] — k-way merges published shards into `dataset.jsonl` +
//!    `dataset-summary.json`, byte-identical for every shard count.
//!
//! [`schema::validate_record`] is the normative-schema gate used by the
//! tests and `cargo xtask smoke-dataset`.

pub mod merge;
pub mod plan;
pub mod record;
pub mod runner;
pub mod sample;
pub mod schema;
pub mod sink;

pub use merge::merge;
pub use plan::{DatasetPlan, PointMeta};
pub use sink::ShardSink;

use crate::batch::{Batch, BatchOptions, JobRecord, Manifest};
use oasys_telemetry::{json, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An error raised while expanding or generating a dataset.
#[derive(Debug)]
pub enum DatasetError {
    /// The manifest lists no specs, no techs, or expands to no points.
    Empty,
    /// An input file could not be read.
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// A specification (base file or sampled draw) is malformed.
    Spec {
        /// Spec label (path or `sample-NNNNNN`).
        label: String,
        /// What was wrong.
        detail: String,
    },
    /// A technology file is malformed or a corner derivation failed.
    Tech {
        /// Tech label (path).
        label: String,
        /// What was wrong.
        detail: String,
    },
    /// The shard sink or output directory failed.
    Sink {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// A merge-time consistency violation (mixed plans, missing or
    /// overlapping shards).
    Merge {
        /// What was inconsistent.
        detail: String,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "dataset plan is empty (no specs, techs, or points)"),
            Self::Io { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
            Self::Spec { label, detail } => write!(f, "spec {label}: {detail}"),
            Self::Tech { label, detail } => write!(f, "tech {label}: {detail}"),
            Self::Sink { path, error } => {
                write!(f, "dataset sink {}: {error}", path.display())
            }
            Self::Merge { detail } => write!(f, "dataset merge: {detail}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { error, .. } | Self::Sink { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Options for one `oasys dataset` shard run.
#[derive(Clone, Debug)]
pub struct DatasetOptions {
    /// Total shard count (≥ 1).
    pub shards: usize,
    /// This run's shard (`0..shards`).
    pub shard_index: usize,
    /// Batch execution knobs (workers, deadline, retries, verify).
    pub batch: BatchOptions,
}

impl Default for DatasetOptions {
    fn default() -> Self {
        Self {
            shards: 1,
            shard_index: 0,
            batch: BatchOptions::default(),
        }
    }
}

/// The outcome of one shard run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Records on durable record when the shard finished (the whole
    /// shard, counting salvaged records).
    pub records: usize,
    /// Records salvaged from a previous interrupted run.
    pub resumed: usize,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Records whose design met every verified spec.
    pub passed: usize,
    /// Spec draws rejected during sampling (plan-wide, not per shard).
    pub samples_rejected: usize,
    /// The plan fingerprint stamped into the shard summary.
    pub plan_fingerprint: u64,
    /// Sub-block design-cache hits this run.
    pub cache_hits: u64,
    /// Sub-block design-cache misses this run.
    pub cache_misses: u64,
    /// Corrupt record lines quarantined this run — from the partial's
    /// salvage and/or a damaged published shard demoted by
    /// [`sink::heal_published`]. Every quarantined point was re-run.
    pub records_quarantined: usize,
}

/// Expands `manifest` and generates the configured shard into `dir`,
/// streaming each record as it completes. Resumable: an interrupted
/// run's partial file is salvaged and only missing points execute; a
/// published shard returns immediately.
///
/// # Errors
///
/// [`DatasetError`] on malformed inputs or sink I/O failures. Job-level
/// synthesis failures are *not* errors — they become `"failed"` records.
pub fn generate(
    manifest: &Manifest,
    dir: &Path,
    options: &DatasetOptions,
    tel: &Telemetry,
) -> Result<ShardReport, DatasetError> {
    let shards = options.shards.max(1);
    let shard_index = options.shard_index;
    if shard_index >= shards {
        return Err(DatasetError::Merge {
            detail: format!("shard index {shard_index} out of range for {shards} shards"),
        });
    }
    let plan = DatasetPlan::expand(manifest)?;
    tel.add("dataset.samples_rejected", plan.samples_rejected as u64);
    let sink_err = |error: std::io::Error| DatasetError::Sink {
        path: dir.to_path_buf(),
        error,
    };

    let mut healed_quarantined = 0usize;
    if ShardSink::is_complete(dir, shard_index, shards) {
        // Published shards are immutable — but never trusted blindly:
        // re-verify every line's checksum first. A damaged shard is
        // demoted back to a partial of its healthy lines and falls
        // through to the resume path, re-running exactly the
        // quarantined points.
        healed_quarantined = sink::heal_published(dir, shard_index, shards).map_err(sink_err)?;
        if healed_quarantined == 0 {
            let summary_path = sink::shard_summary_path(dir, shard_index, shards);
            let text =
                std::fs::read_to_string(&summary_path).map_err(|error| DatasetError::Sink {
                    path: summary_path,
                    error,
                })?;
            let summary = json::parse(&text).map_err(|e| DatasetError::Merge {
                detail: e.to_string(),
            })?;
            let num =
                |key: &str| summary.get(key).and_then(json::Json::as_num).unwrap_or(0.0) as usize;
            return Ok(ShardReport {
                records: num("records"),
                resumed: num("records"),
                executed: 0,
                passed: num("passed"),
                samples_rejected: plan.samples_rejected,
                plan_fingerprint: plan.fingerprint,
                cache_hits: 0,
                cache_misses: 0,
                records_quarantined: 0,
            });
        }
    }

    let points = plan.shard_points(shard_index, shards);
    let mut sink = ShardSink::open(dir, shard_index, shards).map_err(sink_err)?;
    let records_quarantined = healed_quarantined + sink.quarantined_count();
    if records_quarantined > 0 {
        tel.add("dataset.records_quarantined", records_quarantined as u64);
    }
    let resumed = sink.recorded_count();
    let recorded: std::collections::HashSet<usize> = sink.recorded_ids().into_iter().collect();
    let pending: Vec<&PointMeta> = points
        .iter()
        .copied()
        .filter(|p| !recorded.contains(&p.id))
        .collect();

    let mut executed = 0usize;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    if !pending.is_empty() {
        let jobs: Vec<_> = pending
            .iter()
            .enumerate()
            .map(|(local_id, p)| p.job(local_id))
            .collect();
        let runner = Arc::new(runner::DatasetRunner::new(&plan, &pending, &options.batch));
        let batch = Batch::new(jobs, options.batch.clone());
        // Records stream straight into the shard sink as jobs finish;
        // the full record set is never resident in memory. A sink
        // failure is latched and re-raised after the batch drains.
        let mut sink_error: Option<std::io::Error> = None;
        let report = batch
            .run(&runner, tel, |record: &JobRecord| {
                if sink_error.is_some() {
                    return;
                }
                let point = pending[record.job];
                let line = record::render_record(point, record, &plan);
                match sink.record(point.id, &line) {
                    Ok(()) => tel.incr("dataset.records"),
                    Err(error) => sink_error = Some(error),
                }
            })
            .map_err(|e| DatasetError::Merge {
                detail: e.to_string(),
            })?;
        if let Some(error) = sink_error {
            return Err(sink_err(error));
        }
        executed = report.records().len();
        cache_hits = runner.cache().hits();
        cache_misses = runner.cache().misses();
    }

    // Every point must be on record before the shard publishes.
    if sink.recorded_count() != points.len() {
        return Err(DatasetError::Merge {
            detail: format!(
                "shard {shard_index}/{shards} has {} of {} records; rerun to resume",
                sink.recorded_count(),
                points.len()
            ),
        });
    }

    let passed = count_passed(dir, shard_index, shards).map_err(sink_err)?;
    let records = sink.recorded_count();
    let summary = render_shard_summary(&plan, shard_index, shards, records, passed);
    sink.finalize(&summary).map_err(sink_err)?;
    Ok(ShardReport {
        records,
        resumed,
        executed,
        passed,
        samples_rejected: plan.samples_rejected,
        plan_fingerprint: plan.fingerprint,
        cache_hits,
        cache_misses,
        records_quarantined,
    })
}

/// Counts `"meets_spec": true` records by streaming the partial file
/// line by line (one record resident at a time). A record id written
/// twice resolves to its latest line, matching the sink's index.
fn count_passed(dir: &Path, shard_index: usize, shards: usize) -> std::io::Result<usize> {
    use std::io::BufRead;
    let partial = dir.join(format!(
        "{}.jsonl.partial",
        sink::shard_stem(shard_index, shards)
    ));
    let reader = std::io::BufReader::new(std::fs::File::open(partial)?);
    let mut latest: std::collections::BTreeMap<usize, bool> = std::collections::BTreeMap::new();
    for line in reader.lines() {
        let line = line?;
        let Some(payload) = sink::open_record_line(&line) else {
            continue; // quarantined line: its point re-ran and has a later line
        };
        if let Ok(value) = json::parse(payload) {
            if let Some(id) = value.get("id").and_then(json::Json::as_num) {
                let pass = value
                    .get("ok")
                    .and_then(|ok| ok.get("meets_spec"))
                    .and_then(json::Json::as_bool)
                    .unwrap_or(false);
                latest.insert(id as usize, pass);
            }
        }
    }
    Ok(latest.values().filter(|&&p| p).count())
}

/// Renders a shard summary. Per-shard fields (`shard`, `shards`) are
/// segregated under `"shard"` so the merge can sum the rest without
/// leaking shard-count-dependent values into the merged summary.
fn render_shard_summary(
    plan: &DatasetPlan,
    shard_index: usize,
    shards: usize,
    records: usize,
    passed: usize,
) -> String {
    format!(
        concat!(
            "{{\"schema\":\"oasys-dataset-summary\",\"v\":1,",
            "\"plan_fingerprint\":\"{:016x}\",\"total_points\":{},",
            "\"samples_rejected\":{},\"samples_drawn\":{},",
            "\"records\":{},\"passed\":{},",
            "\"shard\":{{\"index\":{},\"of\":{}}}}}"
        ),
        plan.fingerprint,
        plan.points.len(),
        plan.samples_rejected,
        plan.samples_drawn,
        records,
        passed,
        shard_index,
        shards,
    )
}

#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oasys-dataset-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
