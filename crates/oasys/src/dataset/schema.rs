//! Hand-rolled validator for the `oasys-dataset/2` record schema.
//!
//! This is the executable form of `DATASET.md`: `cargo xtask
//! smoke-dataset` and the integration tests run every generated record
//! through [`validate_record`], so a drift between the spec and the
//! renderer fails a gate instead of silently shipping malformed data.

use oasys_telemetry::json::Json;

/// Validates one parsed dataset record against `oasys-dataset/2`.
/// Version 1 payloads (written before per-line checksums) are
/// structurally identical and remain valid.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_record(record: &Json) -> Result<(), String> {
    let obj = record.as_obj().ok_or("record is not a JSON object")?;
    require_str(record, "schema", Some("oasys-dataset"))?;
    let version = require_num(record, "v")?;
    if version != 1.0 && version != 2.0 {
        return Err(format!("unsupported record version {version}"));
    }
    let id = require_num(record, "id")?;
    if id.fract() != 0.0 || id < 0.0 {
        return Err(format!("\"id\" must be a non-negative integer, got {id}"));
    }

    let spec = obj.get("spec").ok_or("missing \"spec\"")?;
    require_str(spec, "label", None)?;
    let fields = spec
        .get("fields")
        .and_then(Json::as_obj)
        .ok_or("\"spec.fields\" must be an object")?;
    if fields.is_empty() {
        return Err("\"spec.fields\" must not be empty".into());
    }
    for (key, value) in fields {
        if value.as_num().is_none() {
            return Err(format!("spec field \"{key}\" is not a number"));
        }
    }

    let tech = obj.get("tech").ok_or("missing \"tech\"")?;
    require_str(tech, "base", None)?;
    require_str(tech, "label", None)?;
    let corner = tech.get("corner").ok_or("missing \"tech.corner\"")?;
    let speed = require_str(corner, "speed", None)?;
    if !matches!(speed, "slow" | "typ" | "fast") {
        return Err(format!("corner speed \"{speed}\" is not slow|typ|fast"));
    }
    require_num(corner, "temp_c")?;
    let supply = require_num(corner, "supply_scale")?;
    if supply <= 0.0 {
        return Err(format!("supply_scale must be positive, got {supply}"));
    }

    let mc = obj.get("mc").ok_or("missing \"mc\"")?;
    let mc_index = require_num(mc, "index")?;
    if mc_index.fract() != 0.0 || mc_index < 0.0 {
        return Err("\"mc.index\" must be a non-negative integer".into());
    }
    require_hex64(mc, "seed")?;
    require_num(mc, "avt_mv_um")?;
    require_num(mc, "akp_pct_um")?;

    require_hex64(record, "fingerprint")?;

    let outcome = require_str(record, "outcome", None)?;
    match outcome {
        "ok" => {
            let ok = obj
                .get("ok")
                .ok_or("outcome \"ok\" without \"ok\" object")?;
            require_str(ok, "style", None)?;
            let area = require_num(ok, "area_um2")?;
            if area <= 0.0 || area.is_nan() {
                return Err(format!("\"ok.area_um2\" must be positive, got {area}"));
            }
            if let Some(meets) = ok.get("meets_spec") {
                meets
                    .as_bool()
                    .ok_or("\"ok.meets_spec\" must be a boolean")?;
            }
            if let Some(design) = ok.get("design") {
                let netlist = design
                    .get("netlist")
                    .and_then(Json::as_str)
                    .ok_or("\"ok.design.netlist\" must be a string")?;
                if !netlist.to_lowercase().contains(".end") {
                    return Err("netlist is not a terminated SPICE deck".into());
                }
                let predicted = design
                    .get("predicted")
                    .and_then(Json::as_obj)
                    .ok_or("\"ok.design.predicted\" must be an object")?;
                for key in PREDICTED_FIELDS {
                    if !predicted.contains_key(key) {
                        return Err(format!("predicted datasheet missing \"{key}\""));
                    }
                }
                if let Some(measured) = design.get("measured") {
                    let measured = measured
                        .as_obj()
                        .ok_or("\"ok.design.measured\" must be an object")?;
                    for key in measured.keys() {
                        if !MEASURED_FIELDS.contains(&key.as_str()) {
                            return Err(format!("unknown measured field \"{key}\""));
                        }
                    }
                }
            }
        }
        "infeasible" => {}
        "failed" => {
            let failure = obj
                .get("failure")
                .ok_or("outcome \"failed\" without \"failure\" object")?;
            let kind = require_str(failure, "kind", None)?;
            if !matches!(kind, "panic" | "timeout" | "error") {
                return Err(format!(
                    "failure kind \"{kind}\" is not panic|timeout|error"
                ));
            }
            require_str(failure, "message", None)?;
        }
        other => return Err(format!("outcome \"{other}\" is not ok|infeasible|failed")),
    }

    if let Some(trace) = obj.get("trace") {
        let entries = trace.as_arr().ok_or("\"trace\" must be an array")?;
        for entry in entries {
            require_str(entry, "style", None)?;
        }
    }

    for key in obj.keys() {
        if !TOP_LEVEL_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown top-level field \"{key}\""));
        }
    }
    Ok(())
}

/// Every key `oasys-dataset/2` permits at the record's top level.
const TOP_LEVEL_FIELDS: [&str; 11] = [
    "schema",
    "v",
    "id",
    "spec",
    "tech",
    "mc",
    "fingerprint",
    "outcome",
    "ok",
    "failure",
    "trace",
];

/// The predicted-datasheet keys every feasible design must carry.
const PREDICTED_FIELDS: [&str; 10] = [
    "dc_gain_db",
    "unity_gain_hz",
    "phase_margin_deg",
    "slew_v_per_s",
    "swing_neg_v",
    "swing_pos_v",
    "offset_v",
    "power_w",
    "cmrr_db",
    "noise_v_rthz",
];

/// The measured-datasheet keys a record may carry (all optional — the
/// bench omits quantities it could not measure).
const MEASURED_FIELDS: [&str; 10] = [
    "dc_gain_db",
    "unity_gain_hz",
    "phase_margin_deg",
    "slew_v_per_s",
    "swing_symmetric_v",
    "offset_v",
    "power_w",
    "cmrr_db",
    "noise_v_rthz",
    "psrr_db",
];

fn require_str<'a>(value: &'a Json, key: &str, expect: Option<&str>) -> Result<&'a str, String> {
    let s = value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))?;
    if let Some(expect) = expect {
        if s != expect {
            return Err(format!("\"{key}\" must be \"{expect}\", got \"{s}\""));
        }
    }
    Ok(s)
}

fn require_num(value: &Json, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
}

fn require_hex64(value: &Json, key: &str) -> Result<(), String> {
    let s = value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))?;
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("\"{key}\" must be 16 hex digits, got \"{s}\""));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_telemetry::json;

    fn ok_record() -> String {
        concat!(
            "{\"schema\":\"oasys-dataset\",\"v\":1,\"id\":7,",
            "\"spec\":{\"label\":\"sample-000007\",\"fields\":{\"dc_gain_db\":60}},",
            "\"tech\":{\"base\":\"cmos-5um\",\"label\":\"cmos-5um @ slow_85c_100pct\",",
            "\"corner\":{\"speed\":\"slow\",\"temp_c\":85,\"supply_scale\":1}},",
            "\"mc\":{\"index\":0,\"seed\":\"0000000000000001\",\"avt_mv_um\":0,\"akp_pct_um\":0},",
            "\"fingerprint\":\"00000000deadbeef\",",
            "\"outcome\":\"ok\",\"ok\":{\"style\":\"two-stage\",\"area_um2\":1234.5}}"
        )
        .to_owned()
    }

    #[test]
    fn accepts_a_well_formed_record() {
        let record = json::parse(&ok_record()).unwrap();
        validate_record(&record).unwrap();
    }

    #[test]
    fn rejects_wrong_schema_version_and_outcome() {
        for (needle, replacement, expect) in [
            ("\"v\":1", "\"v\":3", "version"),
            ("\"outcome\":\"ok\"", "\"outcome\":\"maybe\"", "outcome"),
            ("\"speed\":\"slow\"", "\"speed\":\"cold\"", "speed"),
            ("\"seed\":\"0000000000000001\"", "\"seed\":\"zz\"", "hex"),
        ] {
            let text = ok_record().replace(needle, replacement);
            let record = json::parse(&text).unwrap();
            let err = validate_record(&record).unwrap_err();
            assert!(err.to_lowercase().contains(expect), "{needle} -> {err}");
        }
    }

    #[test]
    fn rejects_unknown_top_level_fields() {
        let text = ok_record().replace("\"id\":7,", "\"id\":7,\"when\":\"now\",");
        let record = json::parse(&text).unwrap();
        let err = validate_record(&record).unwrap_err();
        assert!(err.contains("when"), "{err}");
    }

    #[test]
    fn failed_records_need_a_failure_object() {
        let text = ok_record().replace(
            "\"outcome\":\"ok\",\"ok\":{\"style\":\"two-stage\",\"area_um2\":1234.5}",
            "\"outcome\":\"failed\"",
        );
        let record = json::parse(&text).unwrap();
        assert!(validate_record(&record).is_err());
    }
}
