//! The streaming shard record sink.
//!
//! A shard streams every finished record to an append-only *partial*
//! file (`shard-<i>-of-<N>.jsonl.partial`), one JSON line at a time
//! through a bounded buffer, flushed per record — the same durability
//! discipline as batch checkpoints, and the shard's *only* checkpoint:
//! on restart the partial's durable prefix is salvaged and only
//! unrecorded points re-run.
//!
//! Every line is *sealed* with a per-line FNV-1a checksum suffix
//! ([`crate::integrity`]) — the `oasys-dataset/2` line format:
//! `<record json>\t<fnv1a64 hex>\n`. Salvage classifies damage per
//! line: a torn final line (no newline — the one kind of damage an
//! append-and-flush crash can inflict) is truncated away; an interior
//! line whose seal fails to verify (bit rot) is *quarantined* — left in
//! place but dropped from the resume index, so exactly that point
//! re-runs and its fresh line supersedes the damaged one. Legacy
//! unsealed (`oasys-dataset/1`) lines that still parse are accepted, so
//! pre-checksum partials resume cleanly.
//!
//! When every point has a line, [`ShardSink::finalize`] publishes the
//! shard atomically: records are re-read from the partial *by offset*
//! in global-id order (the full record set is never resident in
//! memory), written to a temp file, fsynced, then renamed to
//! `shard-<i>-of-<N>.jsonl` alongside an equally atomic
//! `shard-<i>-of-<N>.summary.json`. A crash before the rename leaves
//! the partial to resume from; after it, the shard is complete — and
//! [`heal_published`] re-verifies the published lines on later runs,
//! demoting a silently-corrupted shard back to a partial of its healthy
//! lines so the damaged points re-run instead of being trusted.
//!
//! Fault sites: `dataset.sink.record` tears a record write in half
//! (bytes land, no newline, error reported); `sink.record.corrupt`
//! flips one byte mid-line and *reports success* — silent bit rot,
//! detectable only by the checksum.

use crate::integrity::{self, LineIntegrity};
use oasys_telemetry::json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Write-buffer capacity: bounds sink memory however large the records
/// get (netlists included); every record is flushed through it anyway.
const BUFFER_BYTES: usize = 64 * 1024;

/// File-name stem for one shard of `shards`.
#[must_use]
pub fn shard_stem(shard_index: usize, shards: usize) -> String {
    format!("shard-{shard_index}-of-{shards}")
}

/// Path of a shard's published record file.
#[must_use]
pub fn shard_records_path(dir: &Path, shard_index: usize, shards: usize) -> PathBuf {
    dir.join(format!("{}.jsonl", shard_stem(shard_index, shards)))
}

/// Path of a shard's published summary file.
#[must_use]
pub fn shard_summary_path(dir: &Path, shard_index: usize, shards: usize) -> PathBuf {
    dir.join(format!("{}.summary.json", shard_stem(shard_index, shards)))
}

/// Path of a shard's in-progress partial file.
#[must_use]
pub fn shard_partial_path(dir: &Path, shard_index: usize, shards: usize) -> PathBuf {
    dir.join(format!("{}.jsonl.partial", shard_stem(shard_index, shards)))
}

/// The streaming record sink for one shard.
pub struct ShardSink {
    partial_path: PathBuf,
    records_path: PathBuf,
    summary_path: PathBuf,
    writer: BufWriter<File>,
    /// Global id → (offset, length) of its line in the partial file.
    index: BTreeMap<usize, (u64, u64)>,
    offset: u64,
    quarantined: usize,
}

impl ShardSink {
    /// `true` when this shard has already been published (records +
    /// summary exist) — a re-run may skip it entirely *after*
    /// [`heal_published`] re-verifies the lines.
    #[must_use]
    pub fn is_complete(dir: &Path, shard_index: usize, shards: usize) -> bool {
        shard_records_path(dir, shard_index, shards).is_file()
            && shard_summary_path(dir, shard_index, shards).is_file()
    }

    /// Opens (or resumes) the shard's partial file. An existing partial
    /// is salvaged line by line: each verified record line joins the
    /// resume index; a torn final line is truncated away; a corrupt
    /// interior line is quarantined ([`ShardSink::quarantined_count`])
    /// and its point re-runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating, reading, or repairing the
    /// partial file.
    pub fn open(dir: &Path, shard_index: usize, shards: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let partial_path = shard_partial_path(dir, shard_index, shards);
        let mut index = BTreeMap::new();
        let mut quarantined = 0usize;
        let mut durable = 0u64;
        if partial_path.is_file() {
            // Bytes, not a String: corruption can produce invalid
            // UTF-8, which must quarantine a line, not fail the open.
            let bytes = std::fs::read(&partial_path)?;
            let mut cursor = 0usize;
            for line in bytes.split_inclusive(|&b| b == b'\n') {
                if !line.ends_with(b"\n") {
                    break; // torn tail: no newline made it to disk
                }
                match std::str::from_utf8(line).ok().and_then(parse_record_id) {
                    Some(id) => {
                        index.insert(id, (cursor as u64, line.len() as u64));
                    }
                    // Corrupt interior line: quarantine it. The bytes
                    // stay (append-only discipline) but the point is
                    // not on record, so it re-runs and its fresh line
                    // wins at finalize.
                    None => quarantined += 1,
                }
                cursor += line.len();
                durable = cursor as u64;
            }
            if durable < bytes.len() as u64 {
                let file = OpenOptions::new().write(true).open(&partial_path)?;
                file.set_len(durable)?;
                file.sync_all()?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&partial_path)?;
        Ok(Self {
            partial_path,
            records_path: shard_records_path(dir, shard_index, shards),
            summary_path: shard_summary_path(dir, shard_index, shards),
            writer: BufWriter::with_capacity(BUFFER_BYTES, file),
            index,
            offset: durable,
            quarantined,
        })
    }

    /// Global ids already on durable record (salvaged or written this
    /// run).
    #[must_use]
    pub fn recorded_ids(&self) -> Vec<usize> {
        self.index.keys().copied().collect()
    }

    /// Number of records on durable record.
    #[must_use]
    pub fn recorded_count(&self) -> usize {
        self.index.len()
    }

    /// Corrupt lines quarantined while salvaging the partial on open.
    /// Each quarantined point re-runs this run.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.quarantined
    }

    /// Appends one sealed record line (`line` carries no seal and no
    /// trailing newline) and flushes it to the OS — a crash after
    /// `record` returns cannot lose this record.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the injected `dataset.sink.record`
    /// fault lands half the bytes and then fails, exactly like a
    /// mid-write crash. The `sink.record.corrupt` fault flips one byte
    /// and *succeeds* — silent bit rot for the chaos tests.
    pub fn record(&mut self, id: usize, line: &str) -> std::io::Result<()> {
        let sealed = integrity::seal_line(line);
        if oasys_faults::armed() && oasys_faults::fired("dataset.sink.record") {
            let torn = &sealed[..sealed.len() / 2];
            self.writer.write_all(torn.as_bytes())?;
            self.writer.flush()?;
            return Err(std::io::Error::other("fault injected: torn record write"));
        }
        let mut bytes = sealed.into_bytes();
        if oasys_faults::armed() && oasys_faults::fired("sink.record.corrupt") {
            // Silent corruption: one flipped byte, success reported.
            // XOR 0x01 never fabricates a newline from printable text.
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
        }
        self.writer.write_all(&bytes)?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.index.insert(id, (self.offset, bytes.len() as u64 + 1));
        self.offset += bytes.len() as u64 + 1;
        Ok(())
    }

    /// Publishes the shard: records stream from the partial file in
    /// global-id order into `<stem>.jsonl` (temp file → fsync →
    /// rename), `summary_json` lands as `<stem>.summary.json` the same
    /// way, and the partial is removed. Only one record is in memory at
    /// a time.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the partial file survives, so
    /// the shard resumes rather than restarts.
    pub fn finalize(mut self, summary_json: &str) -> std::io::Result<()> {
        self.writer.flush()?;
        let mut partial = File::open(&self.partial_path)?;
        let tmp = self
            .records_path
            .with_extension(format!("jsonl.tmp.{}", std::process::id()));
        {
            let mut out = BufWriter::with_capacity(BUFFER_BYTES, File::create(&tmp)?);
            let mut line = Vec::new();
            for &(start, len) in self.index.values() {
                partial.seek(SeekFrom::Start(start))?;
                line.resize(len as usize, 0);
                partial.read_exact(&mut line)?;
                if !line.ends_with(b"\n") {
                    line.push(b'\n');
                }
                out.write_all(&line)?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.records_path)?;
        write_atomic(&self.summary_path, summary_json)?;
        std::fs::remove_file(&self.partial_path)?;
        Ok(())
    }
}

/// Re-verifies a *published* shard's record lines. Clean shards return
/// `0` untouched. A shard with corrupt lines is demoted: its healthy
/// lines become a fresh partial (atomic write), then the published
/// records and summary are removed, so the caller resumes the shard and
/// re-runs exactly the damaged points. Returns the number of lines
/// quarantined.
///
/// Crash-safe at every step: the partial lands before the published
/// files go away, and the demotion is idempotent if interrupted.
///
/// # Errors
///
/// Propagates I/O failures reading or rewriting the shard files.
pub fn heal_published(dir: &Path, shard_index: usize, shards: usize) -> std::io::Result<usize> {
    let records_path = shard_records_path(dir, shard_index, shards);
    let bytes = std::fs::read(&records_path)?;
    let mut corrupt = 0usize;
    let mut healthy = Vec::with_capacity(bytes.len());
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        if std::str::from_utf8(line)
            .ok()
            .and_then(parse_record_id)
            .is_some()
        {
            healthy.extend_from_slice(line);
            if !line.ends_with(b"\n") {
                healthy.push(b'\n');
            }
        } else {
            corrupt += 1;
        }
    }
    if corrupt == 0 {
        return Ok(0);
    }
    write_atomic_bytes(&shard_partial_path(dir, shard_index, shards), &healthy)?;
    std::fs::remove_file(shard_summary_path(dir, shard_index, shards))?;
    std::fs::remove_file(&records_path)?;
    Ok(corrupt)
}

/// Writes a whole file atomically: temp file, fsync, rename.
///
/// # Errors
///
/// Propagates I/O failures; a crash mid-write leaves only the temp
/// file, never a half-written target.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    write_atomic_bytes(path, text.as_bytes())
}

/// Byte-level [`write_atomic`] (salvaged record lines are already
/// newline-terminated bytes).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Extracts the `"id"` of a record line, verifying its checksum seal
/// (when present) and that the payload is parseable JSON — the salvage
/// gate. A torn line, a seal that fails to verify, or unparseable JSON
/// all fail here; legacy unsealed lines that parse are accepted.
#[must_use]
pub fn parse_record_id(line: &str) -> Option<usize> {
    let payload = match integrity::open_line(line) {
        LineIntegrity::Sealed(payload) | LineIntegrity::Unsealed(payload) => payload,
        LineIntegrity::Corrupt => return None,
    };
    let value = json::parse(payload.trim_end()).ok()?;
    let id = value.get("id")?.as_num()?;
    if id.fract() != 0.0 || id < 0.0 {
        return None;
    }
    Some(id as usize)
}

/// Strips a line's checksum seal (when present and valid), returning
/// the record payload ready for `json::parse`. Corrupt lines return
/// `None`.
#[must_use]
pub fn open_record_line(line: &str) -> Option<&str> {
    match integrity::open_line(line) {
        LineIntegrity::Sealed(payload) | LineIntegrity::Unsealed(payload) => Some(payload),
        LineIntegrity::Corrupt => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(id: usize) -> String {
        format!("{{\"id\":{id},\"outcome\":\"ok\"}}")
    }

    fn sealed(id: usize) -> String {
        integrity::seal_line(&line(id))
    }

    #[test]
    fn records_stream_and_salvage_survives_reopen() {
        let dir = crate::dataset::test_dir("sink_salvage");
        {
            let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
            sink.record(2, &line(2)).unwrap();
            sink.record(0, &line(0)).unwrap();
            // No finalize: simulate a crash between records.
        }
        let sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(sink.recorded_ids(), vec![0, 2]);
        assert_eq!(sink.quarantined_count(), 0);
    }

    #[test]
    fn partial_lines_are_sealed_on_disk() {
        let dir = crate::dataset::test_dir("sink_sealed");
        let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
        sink.record(0, &line(0)).unwrap();
        drop(sink);
        let text = std::fs::read_to_string(shard_partial_path(&dir, 0, 1)).unwrap();
        assert_eq!(text, format!("{}\n", sealed(0)));
    }

    #[test]
    fn legacy_unsealed_partials_still_resume() {
        let dir = crate::dataset::test_dir("sink_legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            shard_partial_path(&dir, 0, 1),
            format!("{}\n{}\n", line(0), line(2)),
        )
        .unwrap();
        let sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(sink.recorded_ids(), vec![0, 2]);
    }

    #[test]
    fn torn_tail_is_truncated_and_rerun() {
        let dir = crate::dataset::test_dir("sink_torn");
        {
            let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
            sink.record(0, &line(0)).unwrap();
            oasys_faults::set("dataset.sink.record", oasys_faults::FaultSpec::FailOnce);
            let err = sink.record(1, &line(1)).unwrap_err();
            assert!(err.to_string().contains("torn"), "{err}");
            oasys_faults::remove("dataset.sink.record");
        }
        let sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(sink.recorded_ids(), vec![0], "torn record must re-run");
    }

    #[test]
    fn corrupt_interior_line_is_quarantined_not_contagious() {
        let dir = crate::dataset::test_dir("sink_bitrot");
        {
            let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
            sink.record(0, &line(0)).unwrap();
            oasys_faults::set("sink.record.corrupt", oasys_faults::FaultSpec::FailOnce);
            sink.record(1, &line(1)).unwrap(); // silently corrupted
            oasys_faults::remove("sink.record.corrupt");
            sink.record(2, &line(2)).unwrap();
        }
        let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(
            sink.recorded_ids(),
            vec![0, 2],
            "the corrupt line is dropped from the index, neighbors survive"
        );
        assert_eq!(sink.quarantined_count(), 1);
        // The point re-runs; its fresh line wins at finalize.
        sink.record(1, &line(1)).unwrap();
        sink.finalize("{}").unwrap();
        let published = std::fs::read_to_string(shard_records_path(&dir, 0, 1)).unwrap();
        assert_eq!(
            published,
            format!("{}\n{}\n{}\n", sealed(0), sealed(1), sealed(2))
        );
    }

    #[test]
    fn heal_published_demotes_a_corrupted_shard() {
        let dir = crate::dataset::test_dir("sink_heal");
        let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
        for id in 0..3 {
            sink.record(id, &line(id)).unwrap();
        }
        sink.finalize("{\"records\":3}").unwrap();
        assert_eq!(heal_published(&dir, 0, 1).unwrap(), 0, "clean shard");
        assert!(ShardSink::is_complete(&dir, 0, 1));

        // Flip a byte in the middle record of the published file.
        let path = shard_records_path(&dir, 0, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes[second_line + 3] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(heal_published(&dir, 0, 1).unwrap(), 1);
        assert!(!ShardSink::is_complete(&dir, 0, 1), "shard demoted");
        let sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(
            sink.recorded_ids(),
            vec![0, 2],
            "healthy lines resumed; the damaged point re-runs"
        );
    }

    #[test]
    fn finalize_publishes_sorted_records_atomically() {
        let dir = crate::dataset::test_dir("sink_finalize");
        let mut sink = ShardSink::open(&dir, 1, 2).unwrap();
        for id in [5, 1, 3] {
            sink.record(id, &line(id)).unwrap();
        }
        sink.finalize("{\"records\":3}").unwrap();
        let published = std::fs::read_to_string(shard_records_path(&dir, 1, 2)).unwrap();
        assert_eq!(
            published,
            format!("{}\n{}\n{}\n", sealed(1), sealed(3), sealed(5))
        );
        let summary = std::fs::read_to_string(shard_summary_path(&dir, 1, 2)).unwrap();
        assert_eq!(summary, "{\"records\":3}");
        assert!(ShardSink::is_complete(&dir, 1, 2));
        assert!(!dir.join("shard-1-of-2.jsonl.partial").exists());
    }

    #[test]
    fn rewritten_record_takes_the_latest_line() {
        let dir = crate::dataset::test_dir("sink_rewrite");
        let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
        sink.record(0, "{\"id\":0,\"outcome\":\"failed\"}").unwrap();
        sink.record(0, &line(0)).unwrap();
        sink.finalize("{}").unwrap();
        let published = std::fs::read_to_string(shard_records_path(&dir, 0, 1)).unwrap();
        assert_eq!(published, format!("{}\n", sealed(0)));
    }
}
