//! The streaming shard record sink.
//!
//! A shard streams every finished record to an append-only *partial*
//! file (`shard-<i>-of-<N>.jsonl.partial`), one JSON line at a time
//! through a bounded buffer, flushed per record — the same durability
//! discipline as batch checkpoints, and the shard's *only* checkpoint:
//! on restart the partial's durable prefix is salvaged (a torn final
//! line, the one kind of damage an append-and-flush crash can inflict,
//! is truncated away) and only unrecorded points re-run.
//!
//! When every point has a line, [`ShardSink::finalize`] publishes the
//! shard atomically: records are re-read from the partial *by offset*
//! in global-id order (the full record set is never resident in
//! memory), written to a temp file, fsynced, then renamed to
//! `shard-<i>-of-<N>.jsonl` alongside an equally atomic
//! `shard-<i>-of-<N>.summary.json`. A crash before the rename leaves
//! the partial to resume from; after it, the shard is complete and a
//! re-run is a no-op.
//!
//! Fault site: `dataset.sink.record` tears a record write in half
//! (bytes land, no newline, error reported) — the chaos tests drive
//! recovery through it.

use oasys_telemetry::json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Write-buffer capacity: bounds sink memory however large the records
/// get (netlists included); every record is flushed through it anyway.
const BUFFER_BYTES: usize = 64 * 1024;

/// File-name stem for one shard of `shards`.
#[must_use]
pub fn shard_stem(shard_index: usize, shards: usize) -> String {
    format!("shard-{shard_index}-of-{shards}")
}

/// Path of a shard's published record file.
#[must_use]
pub fn shard_records_path(dir: &Path, shard_index: usize, shards: usize) -> PathBuf {
    dir.join(format!("{}.jsonl", shard_stem(shard_index, shards)))
}

/// Path of a shard's published summary file.
#[must_use]
pub fn shard_summary_path(dir: &Path, shard_index: usize, shards: usize) -> PathBuf {
    dir.join(format!("{}.summary.json", shard_stem(shard_index, shards)))
}

/// The streaming record sink for one shard.
pub struct ShardSink {
    partial_path: PathBuf,
    records_path: PathBuf,
    summary_path: PathBuf,
    writer: BufWriter<File>,
    /// Global id → (offset, length) of its line in the partial file.
    index: BTreeMap<usize, (u64, u64)>,
    offset: u64,
}

impl ShardSink {
    /// `true` when this shard has already been published (records +
    /// summary exist) — a re-run may skip it entirely.
    #[must_use]
    pub fn is_complete(dir: &Path, shard_index: usize, shards: usize) -> bool {
        shard_records_path(dir, shard_index, shards).is_file()
            && shard_summary_path(dir, shard_index, shards).is_file()
    }

    /// Opens (or resumes) the shard's partial file. An existing partial
    /// is salvaged line by line: each well-formed record line joins the
    /// resume index; the first malformed or torn line — and everything
    /// after it — is truncated away and will re-run.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating, reading, or repairing the
    /// partial file.
    pub fn open(dir: &Path, shard_index: usize, shards: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let partial_path = dir.join(format!("{}.jsonl.partial", shard_stem(shard_index, shards)));
        let mut index = BTreeMap::new();
        let mut durable = 0u64;
        if partial_path.is_file() {
            let text = std::fs::read_to_string(&partial_path)?;
            let mut cursor = 0usize;
            for line in text.split_inclusive('\n') {
                if !line.ends_with('\n') {
                    break; // torn tail: no newline made it to disk
                }
                let Some(id) = parse_record_id(line) else {
                    break; // corrupt line: drop it and everything after
                };
                index.insert(id, (cursor as u64, line.len() as u64));
                cursor += line.len();
                durable = cursor as u64;
            }
            if durable < text.len() as u64 {
                let file = OpenOptions::new().write(true).open(&partial_path)?;
                file.set_len(durable)?;
                file.sync_all()?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&partial_path)?;
        Ok(Self {
            partial_path,
            records_path: shard_records_path(dir, shard_index, shards),
            summary_path: shard_summary_path(dir, shard_index, shards),
            writer: BufWriter::with_capacity(BUFFER_BYTES, file),
            index,
            offset: durable,
        })
    }

    /// Global ids already on durable record (salvaged or written this
    /// run).
    #[must_use]
    pub fn recorded_ids(&self) -> Vec<usize> {
        self.index.keys().copied().collect()
    }

    /// Number of records on durable record.
    #[must_use]
    pub fn recorded_count(&self) -> usize {
        self.index.len()
    }

    /// Appends one record line (no trailing newline in `line`) and
    /// flushes it to the OS — a crash after `record` returns cannot
    /// lose this record.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the injected `dataset.sink.record`
    /// fault lands half the bytes and then fails, exactly like a
    /// mid-write crash.
    pub fn record(&mut self, id: usize, line: &str) -> std::io::Result<()> {
        if oasys_faults::armed() && oasys_faults::fired("dataset.sink.record") {
            let torn = &line[..line.len() / 2];
            self.writer.write_all(torn.as_bytes())?;
            self.writer.flush()?;
            return Err(std::io::Error::other("fault injected: torn record write"));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.index.insert(id, (self.offset, line.len() as u64 + 1));
        self.offset += line.len() as u64 + 1;
        Ok(())
    }

    /// Publishes the shard: records stream from the partial file in
    /// global-id order into `<stem>.jsonl` (temp file → fsync →
    /// rename), `summary_json` lands as `<stem>.summary.json` the same
    /// way, and the partial is removed. Only one record is in memory at
    /// a time.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the partial file survives, so
    /// the shard resumes rather than restarts.
    pub fn finalize(mut self, summary_json: &str) -> std::io::Result<()> {
        self.writer.flush()?;
        let mut partial = File::open(&self.partial_path)?;
        let tmp = self
            .records_path
            .with_extension(format!("jsonl.tmp.{}", std::process::id()));
        {
            let mut out = BufWriter::with_capacity(BUFFER_BYTES, File::create(&tmp)?);
            let mut line = Vec::new();
            for &(start, len) in self.index.values() {
                partial.seek(SeekFrom::Start(start))?;
                line.resize(len as usize, 0);
                partial.read_exact(&mut line)?;
                if !line.ends_with(b"\n") {
                    line.push(b'\n');
                }
                out.write_all(&line)?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.records_path)?;
        write_atomic(&self.summary_path, summary_json)?;
        std::fs::remove_file(&self.partial_path)?;
        Ok(())
    }
}

/// Writes a whole file atomically: temp file, fsync, rename.
///
/// # Errors
///
/// Propagates I/O failures; a crash mid-write leaves only the temp
/// file, never a half-written target.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Extracts the `"id"` of a record line, validating it is parseable
/// JSON (the salvage gate — a torn or corrupt line fails here).
#[must_use]
pub fn parse_record_id(line: &str) -> Option<usize> {
    let value = json::parse(line.trim_end()).ok()?;
    let id = value.get("id")?.as_num()?;
    if id.fract() != 0.0 || id < 0.0 {
        return None;
    }
    Some(id as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(id: usize) -> String {
        format!("{{\"id\":{id},\"outcome\":\"ok\"}}")
    }

    #[test]
    fn records_stream_and_salvage_survives_reopen() {
        let dir = crate::dataset::test_dir("sink_salvage");
        {
            let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
            sink.record(2, &line(2)).unwrap();
            sink.record(0, &line(0)).unwrap();
            // No finalize: simulate a crash between records.
        }
        let sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(sink.recorded_ids(), vec![0, 2]);
    }

    #[test]
    fn torn_tail_is_truncated_and_rerun() {
        let dir = crate::dataset::test_dir("sink_torn");
        {
            let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
            sink.record(0, &line(0)).unwrap();
            oasys_faults::set("dataset.sink.record", oasys_faults::FaultSpec::FailOnce);
            let err = sink.record(1, &line(1)).unwrap_err();
            assert!(err.to_string().contains("torn"), "{err}");
            oasys_faults::remove("dataset.sink.record");
        }
        let sink = ShardSink::open(&dir, 0, 1).unwrap();
        assert_eq!(sink.recorded_ids(), vec![0], "torn record must re-run");
    }

    #[test]
    fn finalize_publishes_sorted_records_atomically() {
        let dir = crate::dataset::test_dir("sink_finalize");
        let mut sink = ShardSink::open(&dir, 1, 2).unwrap();
        for id in [5, 1, 3] {
            sink.record(id, &line(id)).unwrap();
        }
        sink.finalize("{\"records\":3}").unwrap();
        let published = std::fs::read_to_string(shard_records_path(&dir, 1, 2)).unwrap();
        assert_eq!(
            published,
            format!("{}\n{}\n{}\n", line(1), line(3), line(5))
        );
        let summary = std::fs::read_to_string(shard_summary_path(&dir, 1, 2)).unwrap();
        assert_eq!(summary, "{\"records\":3}");
        assert!(ShardSink::is_complete(&dir, 1, 2));
        assert!(!dir.join("shard-1-of-2.jsonl.partial").exists());
    }

    #[test]
    fn rewritten_record_takes_the_latest_line() {
        let dir = crate::dataset::test_dir("sink_rewrite");
        let mut sink = ShardSink::open(&dir, 0, 1).unwrap();
        sink.record(0, "{\"id\":0,\"outcome\":\"failed\"}").unwrap();
        sink.record(0, &line(0)).unwrap();
        sink.finalize("{}").unwrap();
        let published = std::fs::read_to_string(shard_records_path(&dir, 0, 1)).unwrap();
        assert_eq!(published, format!("{}\n", line(0)));
    }
}
