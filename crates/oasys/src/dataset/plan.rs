//! Dataset plan expansion: manifest → the deterministic global point
//! list.
//!
//! The sampled job space is the nested product, in fixed order:
//!
//! ```text
//! for spec sample s:                  (sample.count draws, or literal specs)
//!   for tech t:                       (manifest order)
//!     for speed c, temp T, supply V:  (corners, corner.temps_c, corner.supplies)
//!       for mc m:                     (mc.samples; m = 0 is the nominal instance)
//!         point                       (global id = running position)
//! ```
//!
//! Everything downstream — shard partitioning (`id % shards`), record
//! ordering, Monte-Carlo seeds, fingerprints — derives from this single
//! enumeration, which depends only on the manifest text and input
//! files. That is the root of the merge determinism guarantee: any
//! shard count partitions the *same* point list.

use super::sample::{point_seed, sample_specs};
use super::DatasetError;
use crate::batch::{Job, Manifest};
use oasys_process::{corners, techfile, Corner};
use std::path::PathBuf;

/// One dataset point: the full provenance of one record.
#[derive(Clone, Debug)]
pub struct PointMeta {
    /// Global point id (position in the plan enumeration).
    pub id: usize,
    /// Spec label (`sample-NNNNNN` or the literal spec path).
    pub spec_label: String,
    /// Canonical spec text.
    pub spec_text: String,
    /// Spec field values, canonical order.
    pub spec_fields: Vec<(String, f64)>,
    /// Base technology name (from the tech file, not the path).
    pub tech_base: String,
    /// The corner this point runs at.
    pub corner: Corner,
    /// Derived process name (`<base> @ <corner label>`, or the base
    /// name at the nominal corner).
    pub tech_label: String,
    /// Corner-derived technology text.
    pub tech_text: String,
    /// Monte-Carlo instance index (0 = nominal, no mismatch draws).
    pub mc_index: usize,
    /// Per-point seed: mismatch draws for instances ≥ 1, and the
    /// fingerprint salt for every instance.
    pub mc_seed: u64,
    /// Salted job fingerprint (checkpoint/record identity).
    pub fingerprint: u64,
}

impl PointMeta {
    /// The batch job for this point, under a shard-local id (the batch
    /// indexes records `0..jobs.len()`; the dataset record keeps the
    /// global [`PointMeta::id`]).
    #[must_use]
    pub fn job(&self, local_id: usize) -> Job {
        Job::from_texts(
            local_id,
            self.spec_label.clone(),
            self.spec_text.clone(),
            self.tech_label.clone(),
            self.tech_text.clone(),
        )
        .with_salt(self.mc_seed)
    }
}

/// The expanded, deterministic dataset plan.
#[derive(Clone, Debug)]
pub struct DatasetPlan {
    /// Every point, ordered by global id.
    pub points: Vec<PointMeta>,
    /// Spec draws rejected during sampling.
    pub samples_rejected: usize,
    /// Spec draws attempted (accepted + rejected; 0 rejected without
    /// `sample.count`).
    pub samples_drawn: usize,
    /// Pelgrom `A_vt`, mV·µm (0 disables threshold mismatch).
    pub avt_mv_um: f64,
    /// Pelgrom `A_kp`, %·µm (0 disables transconductance mismatch).
    pub akp_pct_um: f64,
    /// Fingerprint of the whole plan (folds every point fingerprint),
    /// stamped into shard summaries so a merge cannot mix shards of
    /// different plans.
    pub fingerprint: u64,
}

impl DatasetPlan {
    /// Expands a manifest into the global point list. Reads the spec
    /// and tech files, draws the sampled specs, and derives every
    /// requested corner of every technology.
    ///
    /// # Errors
    ///
    /// [`DatasetError`] when an input file is unreadable or malformed,
    /// or a corner derivation leaves the valid parameter range.
    pub fn expand(manifest: &Manifest) -> Result<Self, DatasetError> {
        if manifest.specs().is_empty() || manifest.techs().is_empty() {
            return Err(DatasetError::Empty);
        }
        let sampling = manifest.sampling();
        let read = |path: &PathBuf| {
            std::fs::read_to_string(path).map_err(|error| DatasetError::Io {
                path: path.clone(),
                error,
            })
        };
        let bases: Vec<(String, String)> = manifest
            .specs()
            .iter()
            .map(|p| Ok((p.display().to_string(), read(p)?)))
            .collect::<Result<_, DatasetError>>()?;
        let (samples, samples_rejected) = sample_specs(&bases, sampling)?;
        let samples_drawn = sampling.count.unwrap_or(0).max(samples.len());

        // One corner derivation per (tech, corner) pair, shared across
        // all spec samples: (corner, derived label, derived tech text).
        type CornerVariant = (Corner, String, String);
        let mut tech_variants: Vec<(String, Vec<CornerVariant>)> = Vec::new();
        for path in manifest.techs() {
            let text = read(path)?;
            let base = techfile::parse(&text).map_err(|e| DatasetError::Tech {
                label: path.display().to_string(),
                detail: e.to_string(),
            })?;
            let mut variants = Vec::new();
            for &speed in &sampling.corners {
                for &temp_c in &sampling.temps_c {
                    for &supply_scale in &sampling.supplies {
                        let corner = Corner {
                            speed,
                            temp_c,
                            supply_scale,
                        };
                        let derived =
                            corners::derive(&base, &corner).map_err(|e| DatasetError::Tech {
                                label: path.display().to_string(),
                                detail: format!("corner {corner}: {e}"),
                            })?;
                        variants.push((
                            corner,
                            derived.name().to_owned(),
                            techfile::write(&derived),
                        ));
                    }
                }
            }
            tech_variants.push((base.name().to_owned(), variants));
        }

        let mut points = Vec::new();
        let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
        for sample in &samples {
            for (tech_base, variants) in &tech_variants {
                for (corner, tech_label, tech_text) in variants {
                    for mc_index in 0..sampling.mc_samples {
                        let id = points.len();
                        let mc_seed = point_seed(sampling.seed, id);
                        let job_fp =
                            Job::from_texts(id, "", sample.text.clone(), "", tech_text.clone())
                                .with_salt(mc_seed)
                                .fingerprint();
                        fingerprint ^= job_fp.rotate_left((id % 63) as u32);
                        fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
                        points.push(PointMeta {
                            id,
                            spec_label: sample.label.clone(),
                            spec_text: sample.text.clone(),
                            spec_fields: sample.fields.clone(),
                            tech_base: tech_base.clone(),
                            corner: *corner,
                            tech_label: tech_label.clone(),
                            tech_text: tech_text.clone(),
                            mc_index,
                            mc_seed,
                            fingerprint: job_fp,
                        });
                    }
                }
            }
        }
        if points.is_empty() {
            return Err(DatasetError::Empty);
        }
        let fingerprint = fingerprint ^ points.len() as u64;
        Ok(Self {
            points,
            samples_rejected,
            samples_drawn,
            avt_mv_um: sampling.mc_avt_mv_um,
            akp_pct_um: sampling.mc_akp_pct_um,
            fingerprint,
        })
    }

    /// The points of one shard: global ids congruent to `shard_index`
    /// modulo `shards`. Every shard count partitions the same plan, so
    /// the union over shards is always the full point list.
    #[must_use]
    pub fn shard_points(&self, shard_index: usize, shards: usize) -> Vec<&PointMeta> {
        self.points
            .iter()
            .filter(|p| p.id % shards.max(1) == shard_index)
            .collect()
    }

    /// The Pelgrom mismatch sample for one point (`None` for nominal
    /// instances or when both coefficients are zero).
    #[must_use]
    pub fn mismatch_for(&self, point: &PointMeta) -> Option<oasys_sim::mismatch::Mismatch> {
        if point.mc_index == 0 || (self.avt_mv_um == 0.0 && self.akp_pct_um == 0.0) {
            return None;
        }
        Some(oasys_sim::mismatch::Mismatch {
            avt_v_um: self.avt_mv_um * 1e-3,
            akp_frac_um: self.akp_pct_um * 1e-2,
            seed: point.mc_seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasys_process::CornerSpeed;

    fn write_inputs(dir: &std::path::Path) -> (PathBuf, PathBuf) {
        let spec = dir.join("s.txt");
        std::fs::write(
            &spec,
            "dc_gain_db = 60\nunity_gain_mhz = 0.5\nphase_margin_deg = 45\nload_pf = 5\n",
        )
        .unwrap();
        let tech = dir.join("t.tech");
        std::fs::write(
            &tech,
            oasys_process::techfile::write(&oasys_process::builtin::cmos_5um()),
        )
        .unwrap();
        (spec, tech)
    }

    fn manifest(dir: &std::path::Path, directives: &str) -> Manifest {
        let (spec, tech) = write_inputs(dir);
        Manifest::parse(&format!(
            "spec = {}\ntech = {}\n{directives}",
            spec.display(),
            tech.display()
        ))
        .unwrap()
    }

    #[test]
    fn expansion_is_deterministic() {
        let dir = crate::dataset::test_dir("plan_deterministic");
        let m = manifest(
            &dir,
            "sample.count = 4\nsample.dc_gain_db = 55..70\ncorners = slow,fast\nmc.samples = 2\nmc.avt_mv_um = 10\n",
        );
        let a = DatasetPlan::expand(&m).unwrap();
        let b = DatasetPlan::expand(&m).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.points.len(), 4 * 2 * 2);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.spec_text, y.spec_text);
            assert_eq!(x.tech_text, y.tech_text);
        }
    }

    #[test]
    fn shards_partition_the_plan() {
        let dir = crate::dataset::test_dir("plan_partition");
        let m = manifest(&dir, "sample.count = 5\nmc.samples = 2\n");
        let plan = DatasetPlan::expand(&m).unwrap();
        for shards in 1..=4 {
            let mut seen = vec![false; plan.points.len()];
            for index in 0..shards {
                for p in plan.shard_points(index, shards) {
                    assert!(!seen[p.id], "point {} in two shards", p.id);
                    seen[p.id] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "shards={shards} missed a point");
        }
    }

    #[test]
    fn corner_points_carry_derived_tech() {
        let dir = crate::dataset::test_dir("plan_corners");
        let m = manifest(&dir, "corners = slow\ncorner.temps_c = 85\n");
        let plan = DatasetPlan::expand(&m).unwrap();
        assert_eq!(plan.points.len(), 1);
        let p = &plan.points[0];
        assert_eq!(p.corner.speed, CornerSpeed::Slow);
        assert!(p.tech_label.contains("slow_85c_100pct"), "{}", p.tech_label);
        assert!(p.tech_text.contains("slow_85c_100pct"));
        oasys_process::techfile::parse(&p.tech_text).unwrap();
    }

    #[test]
    fn mc_siblings_differ_only_in_seed_and_fingerprint() {
        let dir = crate::dataset::test_dir("plan_mc");
        let m = manifest(&dir, "mc.samples = 3\nmc.avt_mv_um = 15\n");
        let plan = DatasetPlan::expand(&m).unwrap();
        assert_eq!(plan.points.len(), 3);
        let (a, b) = (&plan.points[0], &plan.points[1]);
        assert_eq!(a.spec_text, b.spec_text);
        assert_eq!(a.tech_text, b.tech_text);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert!(plan.mismatch_for(a).is_none(), "index 0 is nominal");
        let mm = plan.mismatch_for(b).unwrap();
        assert_eq!(mm.seed, b.mc_seed);
        assert!((mm.avt_v_um - 15e-3).abs() < 1e-12);
    }
}
