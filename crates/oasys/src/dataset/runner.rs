//! The dataset [`JobRunner`]: full synthesis per point, Monte-Carlo
//! mismatch scoped around verification, and a detail payload (netlist +
//! datasheet) riding each feasible record.
//!
//! Synthesis itself always runs on the *nominal* device models — the
//! paper's design equations size a circuit for the process, not for one
//! mismatch draw. The draw perturbs what the fabricated instance would
//! measure, so it binds only around [`verify_with`]: the simulator sees
//! the perturbed devices, the plan does not. The shared, bounded,
//! tech-fingerprint-namespaced [`MemoCache`] therefore stays valid
//! across Monte-Carlo siblings — they share every sub-block design and
//! differ only in measurement.

use super::plan::{DatasetPlan, PointMeta};
use crate::batch::BatchOptions;
use crate::batch::{fingerprint, Job, JobFailure, JobRunner, JobSuccess, StyleEntry};
use crate::datasheet::Datasheet;
use crate::synth::synthesize_with_cache;
use crate::verify::{verify_with, Measured};
use crate::SearchOptions;
use oasys_faults::Deadline;
use oasys_plan::MemoCache;
use oasys_sim::mismatch::Mismatch;
use oasys_telemetry::{json, Telemetry};
use std::sync::Arc;

/// Runs dataset points: spec/tech parsing, cached style search, and
/// verification under the point's Monte-Carlo mismatch draw.
pub struct DatasetRunner {
    search: SearchOptions,
    verify: bool,
    cache: Arc<MemoCache>,
    /// Per local-job mismatch draw (`None` = nominal instance), indexed
    /// by the shard-local job id.
    mismatches: Vec<Option<Mismatch>>,
}

impl DatasetRunner {
    /// A runner for one shard's pending points. `pending[i]` must be
    /// the point behind local job id `i`.
    #[must_use]
    pub fn new(plan: &DatasetPlan, pending: &[&PointMeta], options: &BatchOptions) -> Self {
        Self {
            search: options.search().clone(),
            verify: options.verify(),
            cache: Arc::new(MemoCache::bounded(crate::batch::DEFAULT_CACHE_ENTRIES)),
            mismatches: pending.iter().map(|p| plan.mismatch_for(p)).collect(),
        }
    }

    /// The shared sub-block design cache (for hit-rate reporting).
    #[must_use]
    pub fn cache(&self) -> &MemoCache {
        &self.cache
    }
}

impl JobRunner for DatasetRunner {
    fn run(
        &self,
        job: &Job,
        tel: &Telemetry,
        deadline: &Deadline,
    ) -> Result<JobSuccess, JobFailure> {
        let spec = crate::specfile::parse(job.spec_text())
            .map_err(|e| JobFailure::permanent(format!("spec {}: {e}", job.spec_label())))?;
        let process = oasys_process::techfile::parse(job.tech_text())
            .map_err(|e| JobFailure::permanent(format!("tech {}: {e}", job.tech_label())))?;
        let search = self
            .search
            .clone()
            .with_deadline(deadline.clone())
            .with_cache_namespace(format!("{:016x}", fingerprint("", job.tech_text())));
        match synthesize_with_cache(&spec, &process, &search, tel, &self.cache) {
            Ok(synthesis) => {
                let styles = synthesis
                    .outcomes()
                    .iter()
                    .map(|outcome| StyleEntry {
                        style: outcome.style().to_string(),
                        area_um2: outcome.design().map(|d| d.area().total_um2()),
                        devices: outcome
                            .design()
                            .map(crate::styles::OpAmpDesign::device_count),
                        notes: outcome
                            .design()
                            .map(|d| d.notes().to_vec())
                            .unwrap_or_default(),
                        reason: outcome.rejection(),
                    })
                    .collect();
                let design = synthesis.selected();
                let mut success =
                    JobSuccess::feasible(design.style().to_string(), design.area().total_um2())
                        .with_styles(styles);
                let netlist = oasys_netlist::spice::to_spice(design.circuit(), &process);
                let mut measured = None;
                if self.verify {
                    // The Monte-Carlo draw binds here — and only here.
                    let mismatch = self
                        .mismatches
                        .get(job.id())
                        .copied()
                        .flatten()
                        .unwrap_or_else(Mismatch::disabled);
                    let verification = oasys_sim::mismatch::scoped(mismatch, || {
                        verify_with(design, &process, spec.load().farads(), tel)
                    })
                    .map_err(|e| JobFailure::permanent(format!("verification failed: {e}")))?;
                    let sheet = Datasheet::new(
                        format!("{} × {}", job.spec_label(), job.tech_label()),
                        &spec,
                        design.predicted(),
                        Some(&verification.measured),
                    );
                    success = success.with_meets_spec(sheet.all_measured_pass());
                    measured = Some(verification.measured);
                }
                let detail = render_detail(&netlist, design.predicted(), measured.as_ref());
                Ok(success.with_detail(detail))
            }
            Err(e) => {
                if let Err(exceeded) = deadline.check() {
                    return Err(JobFailure::timed_out(format!(
                        "synthesis of {} × {} aborted: {exceeded}",
                        job.spec_label(),
                        job.tech_label()
                    )));
                }
                let styles = e
                    .rejections()
                    .iter()
                    .map(|(style, reason)| StyleEntry {
                        style: style.to_string(),
                        area_um2: None,
                        devices: None,
                        notes: Vec::new(),
                        reason: Some(reason.clone()),
                    })
                    .collect();
                Ok(JobSuccess::infeasible().with_styles(styles))
            }
        }
    }
}

/// Renders the per-record detail payload: the winning design's SPICE
/// deck and its datasheet (predicted always; measured when verified).
fn render_detail(
    netlist: &str,
    predicted: &crate::datasheet::Predicted,
    measured: Option<&Measured>,
) -> String {
    let mut out = format!("{{\"netlist\":{}", json::string(netlist));
    out.push_str(&format!(
        concat!(
            ",\"predicted\":{{\"dc_gain_db\":{},\"unity_gain_hz\":{},",
            "\"phase_margin_deg\":{},\"slew_v_per_s\":{},\"swing_neg_v\":{},",
            "\"swing_pos_v\":{},\"offset_v\":{},\"power_w\":{},",
            "\"cmrr_db\":{},\"noise_v_rthz\":{}}}"
        ),
        json::number(predicted.dc_gain_db),
        json::number(predicted.unity_gain_hz),
        json::number(predicted.phase_margin_deg),
        json::number(predicted.slew_v_per_s),
        json::number(predicted.swing_neg_v),
        json::number(predicted.swing_pos_v),
        json::number(predicted.offset_v),
        json::number(predicted.power_w),
        json::number(predicted.cmrr_db),
        json::number(predicted.noise_v_rthz),
    ));
    if let Some(m) = measured {
        out.push_str(",\"measured\":{");
        let mut first = true;
        let mut field = |key: &str, value: Option<f64>| {
            if let Some(v) = value {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{key}\":{}", json::number(v)));
            }
        };
        field("dc_gain_db", Some(m.dc_gain_db));
        field("unity_gain_hz", m.unity_gain_hz);
        field("phase_margin_deg", m.phase_margin_deg);
        field("slew_v_per_s", m.slew_v_per_s);
        field("swing_symmetric_v", m.swing_symmetric_v);
        field("offset_v", m.offset_v);
        field("power_w", Some(m.power_w));
        field("cmrr_db", m.cmrr_db);
        field("noise_v_rthz", m.noise_v_rthz);
        field("psrr_db", m.psrr_db);
        out.push('}');
    }
    out.push('}');
    out
}
