//! Seeded specification sampling.
//!
//! A dataset manifest's `sample.*` directives describe a distribution
//! over op-amp specifications: each draw starts from one of the
//! manifest's literal `spec` entries (round-robin) and overrides every
//! ranged field with a uniform draw. Draws are keyed *per (seed, draw
//! index, field)* through a SplitMix64 finalizer, so any single draw
//! can be reproduced without replaying the stream, and the sampled spec
//! space is identical however the job space is later sharded.

use crate::batch::{Sampling, SAMPLABLE_SPEC_FIELDS};
use crate::dataset::DatasetError;

/// One accepted specification draw: a canonical rendering plus the
/// parsed field values (for dataset records).
#[derive(Clone, Debug)]
pub struct SpecSample {
    /// Record label: the base label for literal specs, `sample-NNNNNN`
    /// for draws.
    pub label: String,
    /// Canonical spec-file text (fields in [`SAMPLABLE_SPEC_FIELDS`]
    /// order).
    pub text: String,
    /// The field values, in canonical order.
    pub fields: Vec<(String, f64)>,
}

/// SplitMix64 finalizer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a string.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A uniform draw in `[0, 1)` keyed on `(seed, draw index, field)` —
/// pure, order-independent.
fn unit_draw(seed: u64, index: usize, field: &str) -> f64 {
    let key = mix64(mix64(seed ^ mix64(index as u64)) ^ fnv1a(field));
    ((key >> 11) as f64) / (1u64 << 53) as f64
}

/// The per-point seed (Monte-Carlo mismatch + fingerprint salt) of a
/// dataset point, keyed on the manifest seed and the point's global id.
#[must_use]
pub fn point_seed(manifest_seed: u64, point_id: usize) -> u64 {
    // Never zero: zero is `Job::with_salt`'s "no salt" sentinel.
    mix64(manifest_seed ^ mix64(point_id as u64)) | 1
}

/// Parses a spec file's `key = value` lines into `(field, value)` pairs
/// in canonical field order (the dialect of
/// [`crate::specfile::parse`], which has already validated semantics by
/// the time records are rendered — this keeps only the raw numbers).
pub fn parse_spec_fields(label: &str, text: &str) -> Result<Vec<(String, f64)>, DatasetError> {
    let mut by_key: Vec<(String, f64)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |detail: String| DatasetError::Spec {
            label: label.to_owned(),
            detail: format!("line {}: {detail}", idx + 1),
        };
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim().to_lowercase();
        if !SAMPLABLE_SPEC_FIELDS.contains(&key.as_str()) {
            return Err(bad(format!("unknown spec field `{key}`")));
        }
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| bad(format!("`{key}` is not a number")))?;
        if by_key.iter().any(|(k, _)| *k == key) {
            return Err(bad(format!("duplicate spec field `{key}`")));
        }
        by_key.push((key, value));
    }
    let mut fields = Vec::with_capacity(by_key.len());
    for &canonical in &SAMPLABLE_SPEC_FIELDS {
        if let Some((k, v)) = by_key.iter().find(|(k, _)| k == canonical) {
            fields.push((k.clone(), *v));
        }
    }
    Ok(fields)
}

/// Renders fields back to canonical spec-file text.
#[must_use]
pub fn render_spec(label: &str, fields: &[(String, f64)]) -> String {
    let mut out = format!("# {label}\n");
    for (key, value) in fields {
        out.push_str(&format!("{key} = {value}\n"));
    }
    out
}

/// Expands the manifest's spec inputs into the sampled specification
/// list. Without `sample.count` the literal specs pass through
/// unchanged (re-rendered canonically); with it, `count` seeded draws
/// are attempted and draws whose override combination fails spec
/// validation are rejected (counted, not fatal — the caller reports the
/// rejected fraction).
///
/// # Errors
///
/// [`DatasetError::Spec`] when a *base* spec is malformed — a manifest
/// typo fails fast, before any work starts.
pub fn sample_specs(
    bases: &[(String, String)],
    sampling: &Sampling,
) -> Result<(Vec<SpecSample>, usize), DatasetError> {
    let mut parsed_bases = Vec::with_capacity(bases.len());
    for (label, text) in bases {
        // Fail fast on base specs that do not even parse semantically.
        crate::specfile::parse(text).map_err(|e| DatasetError::Spec {
            label: label.clone(),
            detail: e.to_string(),
        })?;
        parsed_bases.push((label.clone(), parse_spec_fields(label, text)?));
    }
    let Some(count) = sampling.count else {
        let samples = parsed_bases
            .into_iter()
            .map(|(label, fields)| {
                let text = render_spec(&label, &fields);
                SpecSample {
                    label,
                    text,
                    fields,
                }
            })
            .collect();
        return Ok((samples, 0));
    };
    let mut samples = Vec::with_capacity(count);
    let mut rejected = 0usize;
    for draw in 0..count {
        let (_, base_fields) = &parsed_bases[draw % parsed_bases.len()];
        let mut fields = base_fields.clone();
        for (ranged, lo, hi) in &sampling.ranges {
            let value = lo + (hi - lo) * unit_draw(sampling.seed, draw, ranged);
            match fields.iter_mut().find(|(k, _)| k == ranged) {
                Some((_, slot)) => *slot = value,
                None => fields.push((ranged.clone(), value)),
            }
        }
        // Ranged fields not in the base must still land in canonical
        // order for a deterministic rendering.
        fields.sort_by_key(|(k, _)| {
            SAMPLABLE_SPEC_FIELDS
                .iter()
                .position(|c| c == k)
                .unwrap_or(SAMPLABLE_SPEC_FIELDS.len())
        });
        let label = format!("sample-{draw:06}");
        let text = render_spec(&label, &fields);
        if crate::specfile::parse(&text).is_err() {
            rejected += 1;
            continue;
        }
        samples.push(SpecSample {
            label,
            text,
            fields,
        });
    }
    Ok((samples, rejected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Manifest;

    const BASE: &str =
        "dc_gain_db = 60\nunity_gain_mhz = 0.5\nphase_margin_deg = 45\nload_pf = 5\n";

    fn sampling(text: &str) -> Sampling {
        Manifest::parse(text).unwrap().sampling().clone()
    }

    #[test]
    fn literal_specs_pass_through_canonically() {
        let bases = vec![("a.txt".to_owned(), BASE.to_owned())];
        let (samples, rejected) = sample_specs(&bases, &Sampling::default()).unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label, "a.txt");
        assert!(samples[0].text.contains("dc_gain_db = 60"));
        crate::specfile::parse(&samples[0].text).unwrap();
    }

    #[test]
    fn draws_are_seeded_and_reproducible() {
        let bases = vec![("a".to_owned(), BASE.to_owned())];
        let s = sampling("sample.count = 20\nsample.seed = 9\nsample.dc_gain_db = 55..80\n");
        let (first, _) = sample_specs(&bases, &s).unwrap();
        let (second, _) = sample_specs(&bases, &s).unwrap();
        assert_eq!(first.len(), 20);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.text, b.text);
        }
        // A different seed draws a different spec space.
        let other = sampling("sample.count = 20\nsample.seed = 10\nsample.dc_gain_db = 55..80\n");
        let (third, _) = sample_specs(&bases, &other).unwrap();
        assert!(first.iter().zip(&third).any(|(a, b)| a.text != b.text));
    }

    #[test]
    fn draws_stay_inside_their_ranges() {
        let bases = vec![("a".to_owned(), BASE.to_owned())];
        let s = sampling("sample.count = 50\nsample.dc_gain_db = 55..80\nsample.load_pf = 2..20\n");
        let (samples, rejected) = sample_specs(&bases, &s).unwrap();
        assert_eq!(rejected, 0);
        for sample in &samples {
            let gain = sample
                .fields
                .iter()
                .find(|(k, _)| k == "dc_gain_db")
                .unwrap()
                .1;
            assert!((55.0..80.0).contains(&gain), "{gain}");
            let load = sample
                .fields
                .iter()
                .find(|(k, _)| k == "load_pf")
                .unwrap()
                .1;
            assert!((2.0..20.0).contains(&load), "{load}");
        }
    }

    #[test]
    fn invalid_draws_are_rejected_not_fatal() {
        let bases = vec![("a".to_owned(), BASE.to_owned())];
        // Phase margin must stay below 90°; a range straddling it
        // rejects some draws.
        let s = sampling("sample.count = 40\nsample.phase_margin_deg = 80..100\n");
        let (samples, rejected) = sample_specs(&bases, &s).unwrap();
        assert!(rejected > 0, "expected some rejected draws");
        assert_eq!(samples.len() + rejected, 40);
    }

    #[test]
    fn malformed_base_specs_fail_fast() {
        let bases = vec![("bad".to_owned(), "dc_gain_db = 60\n".to_owned())];
        let err = sample_specs(&bases, &Sampling::default()).unwrap_err();
        assert!(err.to_string().contains("bad"), "{err}");
    }

    #[test]
    fn point_seed_is_stable_and_never_zero() {
        assert_eq!(point_seed(1, 0), point_seed(1, 0));
        assert_ne!(point_seed(1, 0), point_seed(1, 1));
        assert_ne!(point_seed(1, 0), point_seed(2, 0));
        for id in 0..100 {
            assert_ne!(point_seed(0, id), 0);
        }
    }
}
