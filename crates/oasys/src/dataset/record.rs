//! Dataset record rendering: one JSONL line per point, schema
//! `oasys-dataset/2` (normatively specified in `DATASET.md` at the repo
//! root). The `v:2` payload is structurally identical to `v:1`; the
//! version bump marks that the *line* carrying it is sealed with a
//! per-line FNV-1a checksum by the shard sink ([`crate::integrity`]).
//!
//! A record's bytes are a pure function of the point and the runner's
//! answer — no timestamps, durations, attempt counts, or shard
//! coordinates. That exclusion is what makes a two-shard run merge
//! byte-identically with a one-shard run: everything a record says would
//! be said identically by any shard that executed it.

use super::plan::{DatasetPlan, PointMeta};
use crate::batch::CheckpointOutcome;
use crate::batch::{JobRecord, JobStatus};
use oasys_telemetry::json;

/// Renders one dataset record (no trailing newline).
#[must_use]
pub fn render_record(point: &PointMeta, record: &JobRecord, plan: &DatasetPlan) -> String {
    let mut out = format!(
        "{{\"schema\":\"oasys-dataset\",\"v\":2,\"id\":{},",
        point.id
    );
    out.push_str(&format!(
        "\"spec\":{{\"label\":{},\"fields\":{{",
        json::string(&point.spec_label)
    ));
    for (i, (key, value)) in point.spec_fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{}", json::number(*value)));
    }
    out.push_str("}},");
    out.push_str(&format!(
        concat!(
            "\"tech\":{{\"base\":{},\"label\":{},",
            "\"corner\":{{\"speed\":\"{}\",\"temp_c\":{},\"supply_scale\":{}}}}},"
        ),
        json::string(&point.tech_base),
        json::string(&point.tech_label),
        point.corner.speed.name(),
        json::number(point.corner.temp_c),
        json::number(point.corner.supply_scale),
    ));
    out.push_str(&format!(
        "\"mc\":{{\"index\":{},\"seed\":\"{:016x}\",\"avt_mv_um\":{},\"akp_pct_um\":{}}},",
        point.mc_index,
        point.mc_seed,
        json::number(plan.avt_mv_um),
        json::number(plan.akp_pct_um),
    ));
    out.push_str(&format!("\"fingerprint\":\"{:016x}\",", point.fingerprint));
    match effective_status(&record.status) {
        Effective::Ok { style, area_um2 } => {
            out.push_str("\"outcome\":\"ok\",\"ok\":{");
            out.push_str(&format!(
                "\"style\":{},\"area_um2\":{}",
                json::string(style),
                json::number(area_um2)
            ));
            if let Some(meets) = record.meets_spec {
                out.push_str(&format!(",\"meets_spec\":{meets}"));
            }
            if let Some(detail) = &record.detail {
                // The runner payload is already a rendered JSON object
                // carrying the netlist and datasheet.
                out.push_str(&format!(",\"design\":{detail}"));
            }
            out.push('}');
        }
        Effective::Infeasible => out.push_str("\"outcome\":\"infeasible\""),
        Effective::Failed { kind, message } => out.push_str(&format!(
            "\"outcome\":\"failed\",\"failure\":{{\"kind\":{},\"message\":{}}}",
            json::string(kind),
            json::string(message)
        )),
    }
    if !record.styles.is_empty() {
        out.push_str(",\"trace\":[");
        for (i, entry) in record.styles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"style\":{}", json::string(&entry.style)));
            if let Some(area) = entry.area_um2 {
                out.push_str(&format!(",\"area_um2\":{}", json::number(area)));
            }
            if let Some(reason) = &entry.reason {
                out.push_str(&format!(",\"rejected\":{}", json::string(reason)));
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// A record's effective outcome (skipped jobs resolve to their prior
/// checkpoint outcome — dataset shards never attach a batch checkpoint,
/// but the mapping stays total).
enum Effective<'a> {
    Ok { style: &'a str, area_um2: f64 },
    Infeasible,
    Failed { kind: &'a str, message: &'a str },
}

fn effective_status(status: &JobStatus) -> Effective<'_> {
    match status {
        JobStatus::Ok { style, area_um2 } => Effective::Ok {
            style,
            area_um2: *area_um2,
        },
        JobStatus::Infeasible => Effective::Infeasible,
        JobStatus::Failed { kind, message } => Effective::Failed {
            kind: kind_word(*kind),
            message,
        },
        JobStatus::Skipped { prior } => match prior {
            CheckpointOutcome::Ok { style, area_um2 } => Effective::Ok {
                style,
                area_um2: *area_um2,
            },
            CheckpointOutcome::Infeasible => Effective::Infeasible,
            CheckpointOutcome::Failed => Effective::Failed {
                kind: "error",
                message: "failed in a prior run",
            },
        },
    }
}

fn kind_word(kind: crate::batch::FailureKind) -> &'static str {
    match kind {
        crate::batch::FailureKind::Panic => "panic",
        crate::batch::FailureKind::Timeout => "timeout",
        crate::batch::FailureKind::Error => "error",
    }
}
